"""E16 — tracer overhead on the packed DFS hot path.

The observability acceptance gate: with tracing disabled (``trace=None``,
the production default) the public packed DFS entry point must stay
within 5% of the raw kernel floor at the headline 100k/k=10 workload.
Enabled tracing dispatches to the separate traced kernels and is timed
for the record, but is not gated — forensics is allowed to cost.
"""

import gc
import time

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.core import knn_dfs as _knn_dfs
from repro.core.stats import SearchStats
from repro.datasets.queries import query_points_uniform
from repro.datasets.synthetic import uniform_points
from repro.obs.trace import Trace
from repro.packed.kernels import (
    _dfs_2d_fast,
    _heap_to_neighbors,
    packed_nearest_dfs,
)
from repro.packed.layout import PackedTree
from repro.storage.pager import PageModel

HEADLINE_N = 100_000
HEADLINE_K = 10
HEADLINE_QUERIES = 100
HEADLINE_PAGE_SIZE = 4096


@pytest.fixture(scope="module")
def headline_packed():
    points = uniform_points(HEADLINE_N, seed=160)
    tree = build_tree(
        points_as_items(points),
        page_model=PageModel(page_size=HEADLINE_PAGE_SIZE),
    )
    return PackedTree.from_tree(tree)


@pytest.fixture(scope="module")
def headline_queries():
    return query_points_uniform(HEADLINE_QUERIES, seed=161)


def test_e16_disabled_benchmark(benchmark, headline_packed, headline_queries):
    """Time the untraced public entry point over the headline batch."""

    def run():
        return [
            packed_nearest_dfs(headline_packed, q, k=HEADLINE_K)
            for q in headline_queries
        ]

    results = benchmark(run)
    assert len(results) == len(headline_queries)


def test_e16_traced_benchmark(benchmark, headline_packed, headline_queries):
    """Time the traced kernels (fresh Trace per query) for the record."""

    def run():
        return [
            packed_nearest_dfs(headline_packed, q, k=HEADLINE_K, trace=Trace())
            for q in headline_queries
        ]

    results = benchmark(run)
    assert len(results) == len(headline_queries)


def test_e16_disabled_overhead_100k(headline_packed, headline_queries):
    """The acceptance gate: disabled tracing stays near the kernel floor.

    Floor and public runs are interleaved so CPU noise lands on both
    sides equally.  The strict <5% budget is enforced by
    ``python -m repro.bench obs`` in a clean process; inside a pytest
    session (allocator and caches already churned by other benchmarks)
    the same 1.1x flake-tolerant bound as CI applies.  Traced results
    must also match untraced exactly — instrumentation that changes the
    answer is worse than none.
    """
    slack = _knn_dfs._PRUNE_SLACK
    for q in headline_queries[:8]:
        plain_nb, plain_stats = packed_nearest_dfs(
            headline_packed, q, k=HEADLINE_K
        )
        traced_nb, traced_stats = packed_nearest_dfs(
            headline_packed, q, k=HEADLINE_K, trace=Trace()
        )
        assert [nb.payload for nb in plain_nb] == [
            nb.payload for nb in traced_nb
        ]
        assert plain_stats == traced_stats

    floor_times = []
    public_times = []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(9):
            start = time.perf_counter()
            for q in headline_queries:
                heap = _dfs_2d_fast(
                    headline_packed, q[0], q[1], HEADLINE_K, 1.0, slack,
                    None, SearchStats(),
                )
                _heap_to_neighbors(headline_packed, heap)
            floor_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            for q in headline_queries:
                packed_nearest_dfs(headline_packed, q, k=HEADLINE_K)
            public_times.append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    # Best-of, like the E16 experiment and `repro.bench obs`: the
    # minimum is the noise-robust batch-latency estimator (anything
    # above it is scheduler/GC interference, which lands on one side
    # of an interleaved pair at random and would flake a median).
    floor_ms = min(floor_times) * 1e3 / HEADLINE_QUERIES
    public_ms = min(public_times) * 1e3 / HEADLINE_QUERIES
    overhead = public_ms / floor_ms
    print(
        f"\nE16 headline: kernel floor {floor_ms:.4f} ms/q, "
        f"public trace=None {public_ms:.4f} ms/q, ratio {overhead:.3f}x"
    )
    assert overhead <= 1.1, (
        f"disabled-tracer overhead {overhead:.3f}x exceeds the "
        f"flake-tolerant 1.1x bound "
        f"(floor {floor_ms:.4f} ms/q vs public {public_ms:.4f} ms/q)"
    )


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E16").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    ratios = [float(v) for v in table.column("vs kernel")]
    # Row order: kernel only (1.0 by construction), public trace=None
    # (noise-level at quick scale), public traced (pays for events).
    assert ratios[0] == pytest.approx(1.0)
    assert ratios[1] < 1.5  # generous: tiny batches are noisy
    assert ratios[2] > ratios[1] * 0.5  # sanity: parsed the right column
