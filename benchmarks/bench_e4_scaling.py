"""E4 — scaling with dataset size (paper Fig. "size scaling")."""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items, run_query_batch
from repro.datasets import uniform_points
from repro.datasets.queries import query_points_uniform


@pytest.fixture(scope="module", params=[1024, 8192, 32768])
def sized_tree(request):
    n = request.param
    return n, build_tree(points_as_items(uniform_points(n, seed=104)))


def test_e4_scaling_benchmark(benchmark, sized_tree):
    n, tree = sized_tree
    queries = query_points_uniform(16, seed=105)
    result = benchmark(run_query_batch, tree, queries, k=10)
    assert result.avg_pages >= 1


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E4").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    pages = [float(v) for v in table.column("k=1 pages")]
    sizes = [float(v.replace(",", "")) for v in table.column("n")]
    # Sub-linear growth: 16x data must cost far less than 16x pages.
    assert pages[-1] / pages[0] < (sizes[-1] / sizes[0]) / 2
