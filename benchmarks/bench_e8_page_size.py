"""E8 — page size ablation (branching factor vs pages per query)."""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items, run_query_batch
from repro.datasets import uniform_points
from repro.datasets.queries import query_points_uniform
from repro.storage.pager import PageModel


@pytest.mark.parametrize("page_size", [512, 1024, 4096])
def test_e8_page_size_benchmark(benchmark, page_size):
    items = points_as_items(uniform_points(8192, seed=108))
    tree = build_tree(items, page_model=PageModel(page_size=page_size))
    queries = query_points_uniform(16, seed=109)
    result = benchmark(run_query_batch, tree, queries, k=4)
    assert result.avg_pages >= tree.height - 1


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E8").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    pages = [float(v) for v in table.column("pages")]
    assert pages[-1] <= pages[0]
