"""E13 — queries against the on-disk tree (physical page reads)."""

import pytest

from repro import nearest
from repro.datasets import uniform_points
from repro.datasets.queries import query_points_uniform
from repro.bench.experiments import get_experiment
from repro.rtree.disk import DiskRTree, build_disk_index


@pytest.fixture(scope="module")
def disk_tree_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("e13") / "tree.rnn"
    points = uniform_points(16384, seed=113)
    with build_disk_index([(p, i) for i, p in enumerate(points)], path):
        pass
    return path


@pytest.mark.parametrize("cache_nodes", [1, 32, 512])
def test_e13_disk_query_benchmark(benchmark, disk_tree_path, cache_nodes):
    queries = query_points_uniform(16, seed=114)
    with DiskRTree(disk_tree_path, cache_nodes=cache_nodes) as disk:
        def run():
            return [nearest(disk, q, k=4) for q in queries]

        results = benchmark(run)
        assert all(len(r) == 4 for r in results)


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E13").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    reads = [float(v.replace(",", "")) for v in table.column("file reads/q")]
    assert reads == sorted(reads, reverse=True)
