"""E1 — MINDIST vs MINMAXDIST ABL ordering (paper Fig. "ordering").

Timing benchmark: the DFS query under each ordering.  Regeneration: the E1
tables (pages accessed vs dataset size for both orderings).
"""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import run_query_batch


@pytest.mark.parametrize("ordering", ["mindist", "minmaxdist"])
def test_e1_query_benchmark(benchmark, uniform_tree, query_batch, ordering):
    result = benchmark(
        run_query_batch, uniform_tree, query_batch, k=1, ordering=ordering
    )
    assert result.avg_pages > 0


def test_regenerate_table(quick_scale, capsys):
    for table in get_experiment("E1").run(quick_scale):
        with capsys.disabled():
            print("\n" + table.render())
        # The paper's claim: MINDIST ordering never loses.
        mindist = [float(v) for v in table.column("mindist pages")]
        minmaxdist = [float(v) for v in table.column("minmaxdist pages")]
        assert all(a <= b + 1e-9 for a, b in zip(mindist, minmaxdist))
