"""Timing benchmarks for the query extensions (not paper figures).

Covers the surface the paper's figures don't: within-radius, farthest,
aggregate NN, joins, L_p search and the disk tree — so a performance
regression anywhere in the library shows up in ``--benchmark-only`` runs.
"""

import pytest

from repro import (
    aggregate_nearest,
    farthest_best_first,
    intersection_join,
    knn_join,
    nearest_dfs_lp,
    within_distance,
)
from repro.bench.harness import build_tree
from repro.datasets.synthetic import uniform_rects


def test_within_distance_benchmark(benchmark, uniform_tree):
    result = benchmark(within_distance, uniform_tree, (500.0, 500.0), 50.0)
    assert result


def test_farthest_benchmark(benchmark, uniform_tree):
    neighbors, _ = benchmark(
        farthest_best_first, uniform_tree, (500.0, 500.0), 3
    )
    assert len(neighbors) == 3


def test_aggregate_benchmark(benchmark, uniform_tree):
    group = [(200.0, 200.0), (800.0, 300.0), (500.0, 900.0)]
    neighbors, _ = benchmark(aggregate_nearest, uniform_tree, group, 2, "sum")
    assert len(neighbors) == 2


@pytest.mark.parametrize("p", [1.0, float("inf")])
def test_lp_search_benchmark(benchmark, uniform_tree, p):
    neighbors, _ = benchmark(
        nearest_dfs_lp, uniform_tree, (500.0, 500.0), 4, p
    )
    assert len(neighbors) == 4


@pytest.fixture(scope="module")
def rect_trees():
    left = build_tree(
        [(r, i) for i, r in enumerate(uniform_rects(2000, seed=191))]
    )
    right = build_tree(
        [(r, i) for i, r in enumerate(uniform_rects(2000, seed=192))]
    )
    return left, right


def test_intersection_join_benchmark(benchmark, rect_trees):
    left, right = rect_trees
    pairs = benchmark(lambda: list(intersection_join(left, right)))
    assert pairs


def test_knn_join_benchmark(benchmark, rect_trees):
    left, right = rect_trees

    def run():
        small = build_tree(
            [(r, i) for i, r in enumerate(uniform_rects(200, seed=193))]
        )
        return knn_join(small, right, k=2)

    results, _ = benchmark(run)
    assert len(results) == 200


def test_disk_tree_query_benchmark(benchmark, tmp_path_factory):
    from repro import nearest
    from repro.datasets import uniform_points
    from repro.rtree.disk import DiskRTree, build_disk_index

    path = tmp_path_factory.mktemp("bench") / "tree.rnn"
    points = uniform_points(16384, seed=194)
    with build_disk_index(
        [(p, i) for i, p in enumerate(points)], path
    ) as warmup:
        pass

    with DiskRTree(path, cache_nodes=64) as disk:
        def run():
            return [
                nearest(disk, (float(x), 500.0), k=4).distances()[0]
                for x in range(0, 1000, 100)
            ]

        distances = benchmark(run)
        assert len(distances) == 10
