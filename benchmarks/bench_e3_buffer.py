"""E3 — effect of an LRU buffer on disk reads (paper Fig. "buffering")."""

import pytest

from repro.bench.experiments import get_experiment, segment_distance_sq
from repro.bench.harness import run_query_batch
from repro.storage.buffer import LruBufferPool


@pytest.mark.parametrize("capacity", [0, 16, 128])
def test_e3_buffered_batch_benchmark(benchmark, road_tree, query_batch, capacity):
    def run():
        pool = LruBufferPool(capacity)
        return run_query_batch(
            road_tree,
            query_batch,
            k=4,
            shared_tracker=pool,
            object_distance_sq=segment_distance_sq,
        )

    result = benchmark(run)
    if capacity == 0:
        assert result.buffer_hit_ratio == 0.0
    else:
        assert result.buffer_hit_ratio > 0.0


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E3").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    reads = [float(v.replace(",", "")) for v in table.column("disk reads")]
    assert reads == sorted(reads, reverse=True)
