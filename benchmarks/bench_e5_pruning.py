"""E5 — pruning strategy ablation (paper Sec. 4, promoted to a table)."""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import run_query_batch
from repro.core.pruning import PruningConfig

CONFIGS = {
    "all": PruningConfig.all(),
    "p3-only": PruningConfig.only_p3(),
    "none": PruningConfig.none(),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_e5_pruning_benchmark(benchmark, uniform_tree, query_batch, name):
    result = benchmark(
        run_query_batch,
        uniform_tree,
        query_batch[:8],  # the 'none' row walks the whole tree per query
        k=1,
        pruning=CONFIGS[name],
    )
    if name == "none":
        assert result.avg_pages == uniform_tree.node_count


def test_regenerate_table(quick_scale, capsys):
    for table in get_experiment("E5").run(quick_scale):
        with capsys.disabled():
            print("\n" + table.render())
        pages = [float(v.replace(",", "")) for v in table.column("pages")]
        assert pages[-1] > pages[0]  # exhaustive worst, full pruning best
