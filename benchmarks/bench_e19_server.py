"""E19 — front-door micro-batch coalescing over real sockets.

The serving gate for the asyncio HTTP front door: every answer the
server emits must be certifiable against the linear-scan oracle, the
client and server ledgers must reconcile (no lost or invented
requests), and pooling singleton ``/query`` arrivals into <= 1 ms
micro-batch windows through :meth:`ShardedQueryEngine.query_batch`
must beat per-request dispatch on aggregate QPS.  The speedup
assertion itself lives in ``python -m repro.bench server`` (CI pins a
flake-proof 1.2x; the committed ``BENCH_e19_server.json`` baseline
shows ~1.7x at 10k connections against the tentpole's 1.5x gate) —
here a small soak is timed for the trend and only soundness and
ledger reconciliation are asserted, because shared runners time-share
the server, the shard worker and the client fleet on few cores.
"""

import glob
import os

import pytest

from repro.baselines.linear_scan import linear_scan_items
from repro.bench.experiments import get_experiment
from repro.bench.harness import points_as_items
from repro.datasets.queries import query_points_uniform
from repro.datasets.synthetic import uniform_points
from repro.server.soak import run_soak
from repro.service.options import EngineOptions
from repro.shard import ShardedQueryEngine

HEADLINE_N = 8_192
HEADLINE_K = 10
HEADLINE_QUERIES = 32
HEADLINE_CONNECTIONS = 100
HEADLINE_REQUESTS = 3


@pytest.fixture(scope="module")
def headline_items():
    return points_as_items(uniform_points(HEADLINE_N, seed=190))


@pytest.fixture(scope="module")
def headline_queries():
    return query_points_uniform(HEADLINE_QUERIES, seed=191)


@pytest.fixture(scope="module")
def headline_exact(headline_items, headline_queries):
    return [
        linear_scan_items(headline_items, q, k=HEADLINE_K)
        for q in headline_queries
    ]


def _soak(items, queries, exact, coalesce):
    # run_soak's drain closes the engine, so every soak gets a fresh one.
    return run_soak(
        ShardedQueryEngine(
            items=items,
            shards=1,
            options=EngineOptions(workers=1, cache_size=0),
        ),
        connections=HEADLINE_CONNECTIONS,
        requests_per_connection=HEADLINE_REQUESTS,
        points=queries,
        exact=exact,
        k=HEADLINE_K,
        coalesce=coalesce,
        fleet_processes=0,
    )


def test_e19_direct_benchmark(
    benchmark, headline_items, headline_queries, headline_exact
):
    """Time the per-request dispatch path (the uncoalesced baseline)."""
    report = benchmark.pedantic(
        _soak,
        args=(headline_items, headline_queries, headline_exact, False),
        rounds=1,
        iterations=1,
    )
    assert report.passed, report.violations


def test_e19_coalesced_benchmark(
    benchmark, headline_items, headline_queries, headline_exact
):
    """Time the micro-batch coalescing path over the same engine."""
    report = benchmark.pedantic(
        _soak,
        args=(headline_items, headline_queries, headline_exact, True),
        rounds=1,
        iterations=1,
    )
    assert report.passed, report.violations
    assert report.coalesced_responses > 0


def test_e19_every_answer_certified(
    headline_items, headline_queries, headline_exact
):
    """Both modes serve every request, certify every 200, reconcile."""
    total = HEADLINE_CONNECTIONS * HEADLINE_REQUESTS
    for coalesce in (False, True):
        report = _soak(
            headline_items, headline_queries, headline_exact, coalesce
        )
        assert report.passed, report.violations
        assert report.ok == total
        assert report.certified == total
        assert report.errors == 0


def test_e19_no_segment_leak(
    headline_items, headline_queries, headline_exact
):
    """The soak's drain closes the engine: nothing left under /dev/shm."""
    _soak(headline_items, headline_queries, headline_exact, True)
    if os.path.isdir("/dev/shm"):
        assert glob.glob("/dev/shm/repro-shard-*") == []


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E19").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    assert table.column("mode") == ["direct", "coalesced"]
    qps = [float(str(v).replace(",", "")) for v in table.column("qps")]
    assert all(v > 0.0 for v in qps)
    # The direct row is its own baseline by construction.
    speedups = [float(v) for v in table.column("speedup")]
    assert speedups[0] == pytest.approx(1.0)
    # Soundness gates unconditionally (a violation raises inside run());
    # certification totals must cover every request in both modes.
    certified = table.column("certified")
    assert all("/" in str(c) for c in certified)
    for cell in certified:
        got, want = str(cell).split("/")
        assert got == want
