"""E14 — the serving layer: concurrent, cached batch execution."""

import time

import pytest

from repro import QueryConfig, QueryEngine, nearest
from repro.bench.experiments import get_experiment
from repro.datasets import gaussian_clusters
from repro.datasets.queries import query_points_clustered_sessions


@pytest.fixture(scope="module")
def clustered_tree():
    from repro.bench.harness import build_tree, points_as_items

    return build_tree(points_as_items(gaussian_clusters(16384, seed=141)))


@pytest.fixture(scope="module")
def session_queries():
    data = gaussian_clusters(16384, seed=141)
    return query_points_clustered_sessions(
        10000, data, distinct=500, seed=142
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_e14_engine_benchmark(benchmark, clustered_tree, session_queries, workers):
    config = QueryConfig(k=4)

    def run():
        with QueryEngine(
            clustered_tree, config=config, workers=workers
        ) as engine:
            return engine.query_batch(session_queries)

    results = benchmark(run)
    assert len(results) == len(session_queries)


def test_e14_engine_beats_sequential(clustered_tree, session_queries):
    """The acceptance gate: 10k clustered queries, 4 workers, cache on —
    the engine must beat a bare sequential `nearest` loop wall-clock,
    returning identical results."""
    config = QueryConfig(k=4)

    start = time.perf_counter()
    sequential = [
        nearest(clustered_tree, q, config=config) for q in session_queries
    ]
    sequential_s = time.perf_counter() - start

    with QueryEngine(clustered_tree, config=config, workers=4) as engine:
        start = time.perf_counter()
        served = engine.query_batch(session_queries)
        engine_s = time.perf_counter() - start
        stats = engine.stats()

    for a, b in zip(served, sequential):
        assert a.distances() == b.distances()
        assert a.payloads() == b.payloads()
    assert stats.cache_hits > 0
    assert engine_s < sequential_s, (
        f"engine {engine_s:.2f}s not faster than sequential {sequential_s:.2f}s"
    )


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E14").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    hit_rates = [float(v) for v in table.column("hit rate")]
    # The session-clustered engine rows must show real cache traffic.
    assert max(hit_rates) > 0.5
