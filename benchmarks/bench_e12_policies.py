"""E12 — buffer replacement policies vs Belady's optimal."""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import run_query_batch
from repro.storage.replay import TraceRecorder, replay


@pytest.fixture(scope="module")
def trace(uniform_tree, query_batch):
    recorder = TraceRecorder()
    run_query_batch(uniform_tree, query_batch, k=4, shared_tracker=recorder)
    return recorder.trace


@pytest.mark.parametrize("policy", ["fifo", "lru", "optimal"])
def test_e12_replay_benchmark(benchmark, trace, policy):
    result = benchmark(replay, trace, 32, policy)
    assert result.accesses == len(trace)


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E12").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    lru = [float(v) for v in table.column("LRU misses/q")]
    opt = [float(v) for v in table.column("OPT misses/q")]
    assert all(o <= l + 1e-9 for l, o in zip(lru, opt))
