"""E20 — multi-query batched traversal over the packed slab.

The batch kernel amortizes the paper's best-first search across a
window of concurrent queries: one traversal visits each node once per
window and computes its MINDIST against every live query in a single
strided pass.  The acceptance gate lives in ``python -m repro.bench
batch`` (CI pins a flake-proof 1.3x on the numpy leg; the committed
``BENCH_e20_batch.json`` baseline shows >2x at n=10^6 on 8 KiB
pages) — here the timing benchmarks measure the solo loop and the
batched kernel over the same window stream, and parity is asserted
bit-for-bit before any number is trusted.
"""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.datasets.queries import query_points_uniform
from repro.datasets.synthetic import uniform_points
from repro.packed.batch import NUMPY_AVAILABLE, packed_nearest_batch
from repro.packed.kernels import packed_nearest_best_first
from repro.packed.layout import PackedTree
from repro.storage.pager import PageModel

HEADLINE_N = 50_000
HEADLINE_K = 10
HEADLINE_QUERIES = 64
HEADLINE_WINDOW = 16
HEADLINE_PAGE_SIZE = 8192


@pytest.fixture(scope="module")
def headline_packed():
    points = uniform_points(HEADLINE_N, seed=200)
    tree = build_tree(
        points_as_items(points),
        page_model=PageModel(page_size=HEADLINE_PAGE_SIZE),
    )
    return PackedTree.from_tree(tree)


@pytest.fixture(scope="module")
def headline_windows():
    queries = query_points_uniform(HEADLINE_QUERIES, seed=201)
    return [
        queries[i:i + HEADLINE_WINDOW]
        for i in range(0, len(queries), HEADLINE_WINDOW)
    ]


def test_e20_solo_benchmark(benchmark, headline_packed, headline_windows):
    """Time the per-query best-first loop (the uncoalesced baseline)."""

    def run():
        return [
            packed_nearest_best_first(headline_packed, q, k=HEADLINE_K)
            for window in headline_windows
            for q in window
        ]

    results = benchmark(run)
    assert len(results) == HEADLINE_QUERIES


def test_e20_batched_benchmark(benchmark, headline_packed, headline_windows):
    """Time the batched kernel over the same window stream."""

    def run():
        out = []
        for window in headline_windows:
            out.extend(
                packed_nearest_batch(headline_packed, window, k=HEADLINE_K)
            )
        return out

    results = benchmark(run)
    assert len(results) == HEADLINE_QUERIES


def test_e20_bit_parity(headline_packed, headline_windows):
    """Both batch paths match the solo kernel bit-for-bit, stats included."""
    modes = [False] + ([True] if NUMPY_AVAILABLE else [])
    for window in headline_windows:
        solos = [
            packed_nearest_best_first(headline_packed, q, k=HEADLINE_K)
            for q in window
        ]
        for vectorize in modes:
            batched = packed_nearest_batch(
                headline_packed, window, k=HEADLINE_K, vectorize=vectorize
            )
            for (solo_n, solo_stats), (batch_n, batch_stats) in zip(
                solos, batched
            ):
                assert [n.payload for n in batch_n] == [
                    n.payload for n in solo_n
                ]
                assert [n.distance_squared for n in batch_n] == [
                    n.distance_squared for n in solo_n
                ]
                assert batch_stats == solo_stats


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E20").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    windows = set(table.column("window"))
    assert windows == {"8", "16", "32"}
    paths = set(table.column("path"))
    expected = {"python"} | ({"numpy"} if NUMPY_AVAILABLE else set())
    assert paths == expected
    # Parity is certified inside run() before any timing; a violation
    # raises.  The speedups just need to be positive finite ratios.
    assert all(float(v) > 0.0 for v in table.column("speedup"))
