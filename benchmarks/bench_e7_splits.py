"""E7 — index construction ablation (split strategies and bulk loading)."""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.datasets import uniform_points

BUILD_N = 2048


@pytest.fixture(scope="module")
def build_items():
    return points_as_items(uniform_points(BUILD_N, seed=106))


@pytest.mark.parametrize("split", ["linear", "quadratic", "rstar"])
def test_e7_dynamic_build_benchmark(benchmark, build_items, split):
    tree = benchmark(build_tree, build_items, method="insert", split=split)
    assert len(tree) == BUILD_N


def test_e7_bulk_build_benchmark(benchmark, build_items):
    tree = benchmark(build_tree, build_items, method="bulk")
    assert len(tree) == BUILD_N


def test_regenerate_table(quick_scale, capsys):
    for table in get_experiment("E7").run(quick_scale):
        with capsys.disabled():
            print("\n" + table.render())
        variants = table.column("variant")
        builds = [float(v.replace(",", "")) for v in table.column("build s")]
        by_name = dict(zip(variants, builds))
        dynamic = [
            build for name, build in by_name.items() if "split" in name
        ]
        # Every bulk loader beats every dynamic build by a wide margin.
        for name in ("STR bulk load", "Hilbert bulk load", "Morton bulk load"):
            assert by_name[name] < min(dynamic) / 5
