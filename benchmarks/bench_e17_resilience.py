"""E17 — budget-check overhead and the overload-resilience soak.

The robustness acceptance gate: with no budget attached (the production
default) the public packed DFS entry point must stay within 5% of the
raw kernel floor at the headline 100k/k=10 workload — cancellability
must be free for queries that do not ask for it.  Budgeted queries
dispatch to the separate budgeted kernels and pay a clock charge per
node visit; they are timed for the record but not gated.  The seeded
chaos soak must PASS: every certified answer sound, accounting
conserved, workers drained.
"""

import gc
import time

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.chaos import ChaosConfig, run_soak
from repro.core import knn_dfs as _knn_dfs
from repro.core.budget import Budget
from repro.core.stats import SearchStats
from repro.datasets.queries import query_points_uniform
from repro.datasets.synthetic import uniform_points
from repro.packed.kernels import (
    _dfs_2d_fast,
    _heap_to_neighbors,
    packed_nearest_dfs,
)
from repro.packed.layout import PackedTree
from repro.storage.pager import PageModel

HEADLINE_N = 100_000
HEADLINE_K = 10
HEADLINE_QUERIES = 100
HEADLINE_PAGE_SIZE = 4096

LOOSE = Budget(max_pages=1_000_000_000)


@pytest.fixture(scope="module")
def headline_packed():
    points = uniform_points(HEADLINE_N, seed=170)
    tree = build_tree(
        points_as_items(points),
        page_model=PageModel(page_size=HEADLINE_PAGE_SIZE),
    )
    return PackedTree.from_tree(tree)


@pytest.fixture(scope="module")
def headline_queries():
    return query_points_uniform(HEADLINE_QUERIES, seed=171)


def test_e17_unbudgeted_benchmark(benchmark, headline_packed, headline_queries):
    """Time the budget=None public entry point over the headline batch."""

    def run():
        return [
            packed_nearest_dfs(headline_packed, q, k=HEADLINE_K)
            for q in headline_queries
        ]

    results = benchmark(run)
    assert len(results) == len(headline_queries)


def test_e17_budgeted_benchmark(benchmark, headline_packed, headline_queries):
    """Time the budgeted kernels (loose page budget) for the record."""

    def run():
        return [
            packed_nearest_dfs(headline_packed, q, k=HEADLINE_K, budget=LOOSE)
            for q in headline_queries
        ]

    results = benchmark(run)
    assert len(results) == len(headline_queries)


def test_e17_unbudgeted_overhead_100k(headline_packed, headline_queries):
    """The acceptance gate: no budget means no budget cost.

    Floor and public runs are interleaved so CPU noise lands on both
    sides equally.  The strict <5% budget is enforced by
    ``python -m repro.bench resilience`` in a clean process; inside a
    pytest session the same 1.1x flake-tolerant bound as CI applies.
    A loose budget must also not change the answer — the budgeted
    kernels truncate state, never results, when nothing is exhausted.
    """
    slack = _knn_dfs._PRUNE_SLACK
    for q in headline_queries[:8]:
        plain_nb, plain_stats = packed_nearest_dfs(
            headline_packed, q, k=HEADLINE_K
        )
        capped_nb, capped_stats = packed_nearest_dfs(
            headline_packed, q, k=HEADLINE_K, budget=LOOSE
        )
        assert [nb.payload for nb in plain_nb] == [
            nb.payload for nb in capped_nb
        ]
        assert not capped_stats.truncated
        assert capped_stats.nodes_accessed == plain_stats.nodes_accessed

    floor_times = []
    public_times = []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(9):
            start = time.perf_counter()
            for q in headline_queries:
                heap = _dfs_2d_fast(
                    headline_packed, q[0], q[1], HEADLINE_K, 1.0, slack,
                    None, SearchStats(),
                )
                _heap_to_neighbors(headline_packed, heap)
            floor_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            for q in headline_queries:
                packed_nearest_dfs(headline_packed, q, k=HEADLINE_K)
            public_times.append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    floor_ms = min(floor_times) * 1e3 / HEADLINE_QUERIES
    public_ms = min(public_times) * 1e3 / HEADLINE_QUERIES
    overhead = public_ms / floor_ms
    print(
        f"\nE17 headline: kernel floor {floor_ms:.4f} ms/q, "
        f"public budget=None {public_ms:.4f} ms/q, ratio {overhead:.3f}x"
    )
    assert overhead <= 1.1, (
        f"unbudgeted overhead {overhead:.3f}x exceeds the "
        f"flake-tolerant 1.1x bound "
        f"(floor {floor_ms:.4f} ms/q vs public {public_ms:.4f} ms/q)"
    )


def test_e17_soak_passes():
    """A short seeded soak must certify, conserve and drain."""
    report = run_soak(ChaosConfig(seed=17, queries=600))
    assert report.passed, report.render()
    assert report.oracle_checked == report.served
    assert report.served > 0 and report.shed > 0


def test_regenerate_table(quick_scale, capsys):
    overhead, soak = get_experiment("E17").run(quick_scale)
    with capsys.disabled():
        print("\n" + overhead.render())
        print("\n" + soak.render())
    ratios = [float(v) for v in overhead.column("vs kernel")]
    # Row order: kernel only (1.0 by construction), public budget=None
    # (noise-level at quick scale), public with a loose budget (pays a
    # clock charge per node visit).
    assert ratios[0] == pytest.approx(1.0)
    assert ratios[1] < 1.5  # generous: tiny batches are noisy
    assert ratios[2] > ratios[1] * 0.5  # sanity: parsed the right column
    counters = dict(zip(soak.column("counter"), soak.column("value")))
    assert counters["passed"] == "1"
    assert counters["invariant violations"] == "0"
