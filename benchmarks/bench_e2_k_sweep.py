"""E2 — pages accessed vs number of neighbors k (paper Fig. "k sweep")."""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import run_query_batch


@pytest.mark.parametrize("k", [1, 4, 8, 16])
def test_e2_query_benchmark(benchmark, uniform_tree, query_batch, k):
    result = benchmark(run_query_batch, uniform_tree, query_batch, k=k)
    assert len(query_batch) == result.queries


def test_regenerate_table(quick_scale, capsys):
    for table in get_experiment("E2").run(quick_scale):
        with capsys.disabled():
            print("\n" + table.render())
        pages = [float(v) for v in table.column("DFS pages")]
        # Pages grow (weakly) with k.
        assert pages[0] <= pages[-1] + 1e-9
