"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_eN_*.py`` file wraps one experiment from DESIGN.md's index:
the ``test_*_benchmark`` functions measure the hot path with
pytest-benchmark, and each file's ``test_regenerate_table`` reproduces the
corresponding paper figure/table at quick scale (skipped under
``--benchmark-only``, where only timings run).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import Scale
from repro.bench.harness import build_tree, points_as_items
from repro.datasets import road_segments, uniform_points
from repro.datasets.queries import query_points_uniform

#: Dataset size used by the timing benchmarks (large enough for a height-3
#: tree at fanout 28, small enough to keep the whole suite under a minute).
BENCH_N = 16384
BENCH_QUERIES = 32


@pytest.fixture(scope="session")
def quick_scale() -> Scale:
    return Scale.by_name("quick")


@pytest.fixture(scope="session")
def uniform_tree():
    return build_tree(points_as_items(uniform_points(BENCH_N, seed=101)))


@pytest.fixture(scope="session")
def road_tree():
    segments = road_segments(BENCH_N, seed=102)
    return build_tree([(s.mbr(), s) for s in segments])


@pytest.fixture(scope="session")
def query_batch():
    return query_points_uniform(BENCH_QUERIES, seed=103)
