"""E9 — approximate search trade-off ((1+eps)-approximate k-NN)."""

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import run_query_batch
from repro.core.query import nearest


@pytest.mark.parametrize("epsilon", [0.0, 0.25, 1.0])
def test_e9_approximate_benchmark(benchmark, uniform_tree, query_batch, epsilon):
    def run():
        return [
            nearest(uniform_tree, q, k=4, algorithm="best-first", epsilon=epsilon)
            for q in query_batch
        ]

    results = benchmark(run)
    assert all(len(r) == 4 for r in results)


def test_epsilon_zero_matches_exact(uniform_tree, query_batch):
    for q in query_batch[:5]:
        exact = run_query_batch(uniform_tree, [q], k=4)
        approx = nearest(uniform_tree, q, k=4, epsilon=0.0)
        assert approx.stats.nodes_accessed == pytest.approx(exact.avg_pages)


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E9").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    max_errors = [float(v) for v in table.column("max error")]
    guarantees = [float(v) for v in table.column("guarantee")]
    for err, guarantee in zip(max_errors, guarantees):
        assert err <= guarantee + 1e-9
