"""E21 — request-span tracing overhead on the serving front door.

The observability gate for the span tracer (:mod:`repro.obs.spans`):
arming the sampler without sampling (``ServerConfig(spans=True,
span_sample=0.0)``, the production default) must not tax the serving
path.  The overhead assertion itself lives in ``python -m repro.bench
spans`` (CI pins a flake-proof 1.1x; the committed
``BENCH_e21_obs_spans.json`` baseline shows the armed-idle mode within
noise of the ``spans=False`` floor against the tentpole's 1.05x gate)
— here small soaks are timed for the trend and only soundness and
ledger reconciliation are asserted, because shared runners time-share
the server, the engine pool and the client fleet on few cores.  This
is the same discipline E16 applies to the per-event kernel tracer,
lifted to the request-span layer.
"""

import pytest

from repro.baselines.linear_scan import linear_scan_items
from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.datasets.queries import query_points_uniform
from repro.datasets.synthetic import uniform_points
from repro.server.soak import run_soak
from repro.service.engine import QueryEngine
from repro.service.options import EngineOptions

HEADLINE_N = 8_192
HEADLINE_K = 10
HEADLINE_QUERIES = 32
HEADLINE_CONNECTIONS = 100
HEADLINE_REQUESTS = 3


@pytest.fixture(scope="module")
def headline_items():
    return points_as_items(uniform_points(HEADLINE_N, seed=210))


@pytest.fixture(scope="module")
def headline_tree(headline_items):
    return build_tree(headline_items)


@pytest.fixture(scope="module")
def headline_queries():
    return query_points_uniform(HEADLINE_QUERIES, seed=211)


@pytest.fixture(scope="module")
def headline_exact(headline_items, headline_queries):
    return [
        linear_scan_items(headline_items, q, k=HEADLINE_K)
        for q in headline_queries
    ]


def _soak(tree, queries, exact, spans, sample):
    # run_soak's drain closes the engine, so every soak gets a fresh one
    # around the shared tree.
    return run_soak(
        QueryEngine(tree, options=EngineOptions(workers=2, cache_size=0)),
        connections=HEADLINE_CONNECTIONS,
        requests_per_connection=HEADLINE_REQUESTS,
        points=queries,
        exact=exact,
        k=HEADLINE_K,
        coalesce=False,
        spans=spans,
        span_sample=sample,
        span_seed=0,
        fleet_processes=0,
    )


def test_e21_floor_benchmark(
    benchmark, headline_tree, headline_queries, headline_exact
):
    """Time the pre-span serving path (ServerConfig(spans=False))."""
    report = benchmark.pedantic(
        _soak,
        args=(headline_tree, headline_queries, headline_exact, False, 0.0),
        rounds=1,
        iterations=1,
    )
    assert report.passed, report.violations


def test_e21_armed_benchmark(
    benchmark, headline_tree, headline_queries, headline_exact
):
    """Time the armed-but-idle path (the production default)."""
    report = benchmark.pedantic(
        _soak,
        args=(headline_tree, headline_queries, headline_exact, True, 0.0),
        rounds=1,
        iterations=1,
    )
    assert report.passed, report.violations


def test_e21_full_sampling_benchmark(
    benchmark, headline_tree, headline_queries, headline_exact
):
    """Time every-request span recording (the forensics price)."""
    report = benchmark.pedantic(
        _soak,
        args=(headline_tree, headline_queries, headline_exact, True, 1.0),
        rounds=1,
        iterations=1,
    )
    assert report.passed, report.violations


def test_e21_every_answer_certified(
    headline_tree, headline_queries, headline_exact
):
    """All three modes serve every request, certify every 200."""
    total = HEADLINE_CONNECTIONS * HEADLINE_REQUESTS
    for spans, sample in ((False, 0.0), (True, 0.0), (True, 1.0)):
        report = _soak(
            headline_tree, headline_queries, headline_exact, spans, sample
        )
        assert report.passed, report.violations
        assert report.ok == total
        assert report.certified == total
        assert report.errors == 0


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E21").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    assert table.column("mode") == [
        "off",
        "armed 0.0",
        "sampled 0.125",
        "full 1.0",
    ]
    qps = [float(str(v).replace(",", "")) for v in table.column("qps")]
    assert all(v > 0.0 for v in qps)
    # The off row is its own baseline by construction.
    ratios = [float(v) for v in table.column("vs off")]
    assert ratios[0] == pytest.approx(1.0)
    # Soundness gates unconditionally (a violation raises inside run());
    # certification totals must cover every request in every mode.
    for cell in table.column("certified"):
        got, want = str(cell).split("/")
        assert got == want
