"""E18 — sharded multi-process scaling vs the thread engine.

The serving-architecture gate: the multi-process
:class:`~repro.shard.ShardedQueryEngine` must answer bit-for-bit like
the GIL-bound thread :class:`~repro.service.QueryEngine` (payloads *and*
distances — the cross-process merge reuses the kernels' tie discipline),
must leak no shared-memory segments after ``close()``, and — on hosts
with the cores to show it — must out-scale the thread pool.  The
scaling assertion itself lives in ``python -m repro.bench shard`` and
is core-aware; here timings are recorded for the trend and only parity
and the leak contract are asserted, because CI runners and containers
pin as few as one CPU.
"""

import glob
import os

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.datasets.queries import query_points_uniform
from repro.datasets.synthetic import uniform_points
from repro.service.engine import QueryEngine
from repro.service.options import EngineOptions
from repro.shard import ShardedQueryEngine

HEADLINE_N = 20_000
HEADLINE_K = 10
HEADLINE_QUERIES = 64
HEADLINE_SHARDS = 2


@pytest.fixture(scope="module")
def headline_items():
    return points_as_items(uniform_points(HEADLINE_N, seed=180))


@pytest.fixture(scope="module")
def headline_queries():
    return query_points_uniform(HEADLINE_QUERIES, seed=181)


@pytest.fixture(scope="module")
def thread_engine(headline_items):
    tree = build_tree(headline_items)
    with QueryEngine(
        tree,
        options=EngineOptions(
            workers=HEADLINE_SHARDS, cache_size=0, packed=True
        ),
    ) as engine:
        yield engine


@pytest.fixture(scope="module")
def sharded_engine(headline_items):
    engine = ShardedQueryEngine(
        items=headline_items,
        shards=HEADLINE_SHARDS,
        options=EngineOptions(workers=1, cache_size=0),
    )
    yield engine
    engine.close()


def _drain(engine, queries):
    for fut in [engine.submit(q, k=HEADLINE_K) for q in queries]:
        fut.result()


def test_e18_thread_benchmark(benchmark, thread_engine, headline_queries):
    """Time the thread pool's batch throughput (the GIL-bound baseline)."""
    benchmark(_drain, thread_engine, headline_queries)


def test_e18_sharded_benchmark(benchmark, sharded_engine, headline_queries):
    """Time the 2-process scatter-gather batch throughput."""
    benchmark(_drain, sharded_engine, headline_queries)


def test_e18_parity(thread_engine, sharded_engine, headline_queries):
    """Every cross-process answer matches the thread engine bit-for-bit."""
    for q in headline_queries:
        expect = thread_engine.query(q, k=HEADLINE_K)
        got = sharded_engine.query(q, k=HEADLINE_K)
        assert [(nb.payload, nb.distance) for nb in got.neighbors] == [
            (nb.payload, nb.distance) for nb in expect.neighbors
        ]


def test_e18_no_segment_leak(headline_items):
    """The leak contract: close() leaves nothing under /dev/shm."""
    engine = ShardedQueryEngine(
        items=headline_items[:2000],
        shards=HEADLINE_SHARDS,
        options=EngineOptions(workers=1, cache_size=0),
    )
    prefix = engine.name_prefix
    if os.path.isdir("/dev/shm"):
        assert glob.glob(f"/dev/shm/{prefix}*"), "engine published no slabs?"
    engine.close()
    if os.path.isdir("/dev/shm"):
        assert glob.glob(f"/dev/shm/{prefix}*") == []


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E18").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    engines = table.column("engine")
    assert engines == ["thread"] * 3 + ["sharded"] * 3
    # Each family's width-1 row is its own baseline by construction.
    own = [float(v) for v in table.column("vs own x1")]
    assert own[0] == pytest.approx(1.0)
    assert own[3] == pytest.approx(1.0)
    qps = [float(str(q).replace(",", "")) for q in table.column("qps")]
    assert all(v > 0.0 for v in qps)
