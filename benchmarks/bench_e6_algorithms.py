"""E6 — algorithm comparison (paper evaluation tables)."""

import pytest

from repro.baselines.kdtree import KdTree
from repro.baselines.linear_scan import linear_scan_items
from repro.bench.experiments import get_experiment
from repro.bench.harness import run_query_batch
from repro.datasets import uniform_points


@pytest.mark.parametrize("algorithm", ["dfs", "best-first"])
def test_e6_rtree_benchmark(benchmark, uniform_tree, query_batch, algorithm):
    result = benchmark(
        run_query_batch, uniform_tree, query_batch, k=4, algorithm=algorithm
    )
    assert result.avg_pages > 0


def test_e6_kdtree_benchmark(benchmark, query_batch):
    points = uniform_points(16384, seed=101)
    tree = KdTree([(p, i) for i, p in enumerate(points)])

    def run():
        return [tree.nearest(q, k=4) for q in query_batch]

    results = benchmark(run)
    assert len(results) == len(query_batch)


def test_e6_linear_scan_benchmark(benchmark, query_batch):
    from repro.geometry.rect import Rect

    points = uniform_points(4096, seed=101)  # smaller: linear scan is O(n)
    items = [(Rect.from_point(p), i) for i, p in enumerate(points)]

    def run():
        return [linear_scan_items(items, q, k=4) for q in query_batch[:8]]

    results = benchmark(run)
    assert len(results) == 8


def test_regenerate_table(quick_scale, capsys):
    for table in get_experiment("E6").run(quick_scale):
        with capsys.disabled():
            print("\n" + table.render())
        # Deterministic shape check: pages touched, not wall-clock.
        rows = dict(zip(table.column("algorithm"), table.column("pages/nodes")))
        dfs_pages = float(rows["R-tree DFS (paper)"].replace(",", ""))
        scanned = float(rows["linear scan"].replace(",", ""))
        assert dfs_pages < scanned / 10
