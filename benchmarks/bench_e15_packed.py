"""E15 — packed struct-of-arrays kernel vs the object-graph kernel.

The headline workload (and the acceptance gate for the packed subsystem):
100k uniform points indexed at the common 4 KiB OS page size, k=10.  The
packed kernel must answer the identical query stream at least 3x faster
than ``nearest_dfs`` — returning byte-identical results and statistics.
"""

import statistics
import time

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.core.knn_dfs import nearest_dfs
from repro.datasets.queries import query_points_uniform
from repro.datasets.synthetic import uniform_points
from repro.packed.layout import PackedTree
from repro.packed.kernels import packed_nearest_dfs
from repro.storage.pager import PageModel

HEADLINE_N = 100_000
HEADLINE_K = 10
HEADLINE_QUERIES = 100
HEADLINE_PAGE_SIZE = 4096


@pytest.fixture(scope="module")
def headline_tree():
    points = uniform_points(HEADLINE_N, seed=150)
    return build_tree(
        points_as_items(points),
        page_model=PageModel(page_size=HEADLINE_PAGE_SIZE),
    )


@pytest.fixture(scope="module")
def headline_packed(headline_tree):
    return PackedTree.from_tree(headline_tree)


@pytest.fixture(scope="module")
def headline_queries():
    return query_points_uniform(HEADLINE_QUERIES, seed=151)


def test_e15_packed_benchmark(benchmark, headline_packed, headline_queries):
    """Time the packed DFS kernel over the headline query batch."""

    def run():
        return [
            packed_nearest_dfs(headline_packed, q, k=HEADLINE_K)
            for q in headline_queries
        ]

    results = benchmark(run)
    assert len(results) == len(headline_queries)


def test_e15_object_benchmark(benchmark, headline_tree, headline_queries):
    """The object-kernel comparison point for the same batch."""

    def run():
        return [
            nearest_dfs(headline_tree, q, k=HEADLINE_K)
            for q in headline_queries
        ]

    results = benchmark(run)
    assert len(results) == len(headline_queries)


def test_e15_packed_speedup_100k(
    headline_tree, headline_packed, headline_queries
):
    """The acceptance gate: >= 3x median-latency speedup at 100k/k=10.

    Object and packed batch runs are interleaved so CPU noise lands on
    both sides equally; the asserted ratio compares the median per-rep
    batch latency of each kernel.  Parity (results + full SearchStats) is
    checked on every query first — a fast wrong kernel must fail here,
    not pass on speed.
    """
    for q in headline_queries:
        obj_nb, obj_stats = nearest_dfs(headline_tree, q, k=HEADLINE_K)
        pk_nb, pk_stats = packed_nearest_dfs(headline_packed, q, k=HEADLINE_K)
        assert [nb.payload for nb in obj_nb] == [nb.payload for nb in pk_nb]
        assert [nb.distance for nb in obj_nb] == [nb.distance for nb in pk_nb]
        assert obj_stats == pk_stats

    object_times = []
    packed_times = []
    for _ in range(9):
        start = time.perf_counter()
        for q in headline_queries:
            nearest_dfs(headline_tree, q, k=HEADLINE_K)
        object_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for q in headline_queries:
            packed_nearest_dfs(headline_packed, q, k=HEADLINE_K)
        packed_times.append(time.perf_counter() - start)

    object_ms = statistics.median(object_times) * 1e3 / HEADLINE_QUERIES
    packed_ms = statistics.median(packed_times) * 1e3 / HEADLINE_QUERIES
    speedup = object_ms / packed_ms
    print(
        f"\nE15 headline: object {object_ms:.4f} ms/q, "
        f"packed {packed_ms:.4f} ms/q, speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"packed kernel {speedup:.2f}x over nearest_dfs, expected >= 3x "
        f"(object {object_ms:.4f} ms/q vs packed {packed_ms:.4f} ms/q)"
    )


def test_regenerate_table(quick_scale, capsys):
    table, micro = get_experiment("E15").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
        print("\n" + micro.render())
    speedups = [float(v) for v in table.column("speedup")]
    # Even at quick scale the packed kernel must clearly win on both
    # page sizes; the 3x headline claim is the 100k test above.
    assert all(s > 1.2 for s in speedups)
    ns_per_call = [float(v.replace(",", "")) for v in micro.column("ns/call")]
    assert all(0.0 < ns < 100_000 for ns in ns_per_call)
