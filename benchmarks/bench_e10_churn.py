"""E10 — index degradation under update churn."""

import random

import pytest

from repro.bench.experiments import get_experiment
from repro.bench.harness import build_tree, points_as_items
from repro.datasets import uniform_points
from repro.geometry.rect import Rect

CHURN_N = 2048


@pytest.fixture(scope="module")
def packed_tree_items():
    points = uniform_points(CHURN_N, seed=110)
    return points_as_items(points)


def test_e10_churn_round_benchmark(benchmark, packed_tree_items):
    """Time one churn round (25% deletes + reinserts) on a packed tree."""

    def churn():
        tree = build_tree(packed_tree_items, method="bulk")
        rng = random.Random(111)
        victims = rng.sample(range(CHURN_N), k=CHURN_N // 4)
        for victim in victims:
            rect, payload = packed_tree_items[victim]
            assert tree.delete(rect, payload=payload)
        for i, victim in enumerate(victims):
            point = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.insert(Rect.from_point(point), payload=CHURN_N + i)
        return tree

    tree = benchmark(churn)
    assert len(tree) == CHURN_N


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E10").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    fills = [float(v) for v in table.column("avg fill")]
    # Churn dilutes fill; the rebuild restores the packed level.
    assert fills[1] < fills[0]
    assert fills[-1] == pytest.approx(fills[0], rel=0.05)
