"""E11 — window query selectivity (Guttman-style range queries)."""

import math

import pytest

from repro.bench.experiments import get_experiment
from repro.datasets.queries import query_points_uniform
from repro.geometry.rect import Rect


@pytest.mark.parametrize("selectivity", [0.0001, 0.01, 0.1])
def test_e11_window_benchmark(benchmark, uniform_tree, selectivity):
    side = math.sqrt(selectivity * 1000.0 * 1000.0)
    centers = query_points_uniform(16, seed=112)
    windows = [
        Rect(
            (c[0] - side / 2, c[1] - side / 2),
            (c[0] + side / 2, c[1] + side / 2),
        )
        for c in centers
    ]

    def run():
        return [uniform_tree.search(w) for w in windows]

    results = benchmark(run)
    assert len(results) == len(windows)


def test_regenerate_table(quick_scale, capsys):
    (table,) = get_experiment("E11").run(quick_scale)
    with capsys.disabled():
        print("\n" + table.render())
    pages = [float(v.replace(",", "")) for v in table.column("pages (packed)")]
    assert pages == sorted(pages)
