"""The packed path through the serving layer and batch API."""

import pytest

from repro import (
    QueryConfig,
    QueryEngine,
    RTree,
    nearest_batch,
)
from repro.baselines.kdtree import KdTree
from repro.errors import InvalidParameterError

pytestmark = [pytest.mark.packed, pytest.mark.service]


def _tree(n=600):
    tree = RTree(max_entries=8)
    for i in range(n):
        tree.insert(
            (float((i * 7) % 101), float((i * 13) % 97)), payload=i
        )
    return tree


def _queries(n=40):
    return [
        (float((i * 3) % 100) + 0.5, float((i * 11) % 90) + 0.25)
        for i in range(n)
    ]


class TestEnginePacked:
    def test_results_identical_to_object_path(self):
        tree = _tree()
        queries = _queries()
        config = QueryConfig(k=5)
        with QueryEngine(tree, config=config, workers=1, packed=True) as pk, \
                QueryEngine(tree, config=config, workers=1) as obj:
            for a, b in zip(pk.query_batch(queries), obj.query_batch(queries)):
                assert a.payloads() == b.payloads()
                assert a.distances() == b.distances()
                assert a.stats == b.stats

    def test_rebuild_on_epoch_bump(self):
        tree = _tree()
        with QueryEngine(tree, workers=1, packed=True) as engine:
            engine.query((50.0, 50.0), k=1)
            before = tree.packed()
            assert before.epoch == tree.epoch
            # A mediated mutation bumps the epoch; the next query must
            # recompile and see the new point.
            engine.insert((50.25, 50.25), payload=777_777)
            result = engine.query((50.25, 50.25), k=1)
            assert result.payloads() == [777_777]
            after = tree.packed()
            assert after is not before
            assert after.epoch == tree.epoch
            assert len(after) == len(tree)

    def test_best_first_config_routes_packed(self):
        tree = _tree()
        config = QueryConfig(k=3, algorithm="best-first")
        with QueryEngine(tree, config=config, workers=1, packed=True) as pk, \
                QueryEngine(tree, config=config, workers=1) as obj:
            for q in _queries(10):
                a, b = pk.query(q), obj.query(q)
                assert a.payloads() == b.payloads()
                assert a.stats == b.stats

    def test_object_distance_hook_falls_back(self):
        tree = _tree()

        def hook(query, payload, rect):
            dx = query[0] - rect.lo[0]
            dy = query[1] - rect.lo[1]
            return dx * dx + dy * dy

        config = QueryConfig(k=3, object_distance_sq=hook)
        with QueryEngine(tree, config=config, workers=1, packed=True) as pk, \
                QueryEngine(tree, config=config, workers=1) as obj:
            for q in _queries(10):
                a, b = pk.query(q), obj.query(q)
                assert a.payloads() == b.payloads()
                assert a.stats == b.stats

    def test_cache_serves_packed_results(self):
        tree = _tree()
        with QueryEngine(tree, workers=1, packed=True) as engine:
            first = engine.query((10.0, 10.0), k=2)
            second = engine.query((10.0, 10.0), k=2)
            assert second is first  # served from the result cache
            assert engine.stats().cache_hits == 1

    def test_multiworker_packed_batch(self):
        tree = _tree()
        queries = _queries(60)
        config = QueryConfig(k=4)
        with QueryEngine(
            tree, config=config, workers=4, packed=True
        ) as pk, QueryEngine(tree, config=config, workers=1) as obj:
            for a, b in zip(pk.query_batch(queries), obj.query_batch(queries)):
                assert a.payloads() == b.payloads()
                assert a.stats == b.stats

    def test_packed_requires_compilable_tree(self):
        points = [(float(i), float(i)) for i in range(10)]
        kdtree = KdTree([(p, i) for i, p in enumerate(points)])
        with pytest.raises(InvalidParameterError):
            QueryEngine(kdtree, packed=True)


class TestBatchPacked:
    def test_nearest_batch_parity(self):
        tree = _tree()
        queries = _queries()
        pk_results, pk_stats, pk_reads = nearest_batch(
            tree, queries, k=3, packed=True
        )
        obj_results, obj_stats, obj_reads = nearest_batch(tree, queries, k=3)
        assert [r.payloads() for r in pk_results] == [
            r.payloads() for r in obj_results
        ]
        assert pk_stats == obj_stats
        assert pk_reads == obj_reads

    def test_nearest_batch_packed_with_hook_falls_back(self):
        tree = _tree()

        def hook(query, payload, rect):
            dx = query[0] - rect.lo[0]
            dy = query[1] - rect.lo[1]
            return dx * dx + dy * dy

        pk_results, _, _ = nearest_batch(
            tree, _queries(10), k=2, packed=True, object_distance_sq=hook
        )
        obj_results, _, _ = nearest_batch(
            tree, _queries(10), k=2, object_distance_sq=hook
        )
        assert [r.payloads() for r in pk_results] == [
            r.payloads() for r in obj_results
        ]
