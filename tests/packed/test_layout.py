"""PackedTree compile: slab structure, invariants, introspection."""

import pytest

from repro import PackedTree, RTree, bulk_load
from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.packed.layout import (
    NODE_INTERNAL,
    NODE_LEAF_POINTS,
    NODE_LEAF_RECT,
)

pytestmark = pytest.mark.packed


def _point_tree(n=200, dimension=2, max_entries=8):
    tree = RTree(max_entries=max_entries)
    for i in range(n):
        p = tuple(float((i * (7 + axis * 6)) % 101) for axis in range(dimension))
        tree.insert(p, payload=i)
    return tree


class TestCompile:
    def test_counts_and_metadata(self):
        tree = _point_tree(200)
        packed = PackedTree.from_tree(tree)
        assert len(packed) == len(tree) == packed.size
        assert packed.dimension == tree.dimension
        assert packed.epoch == tree.epoch
        assert packed.node_count == tree.node_count
        # Leaf entries = items; internal entries = child links = nodes - 1.
        assert packed.entry_count == len(tree) + packed.node_count - 1
        assert packed.nbytes() > 0
        assert "PackedTree" in repr(packed)

    def test_root_is_node_zero_and_starts_monotone(self):
        packed = PackedTree.from_tree(_point_tree(300))
        assert len(packed.starts) == packed.node_count + 1
        assert packed.starts[0] == 0
        assert packed.starts[-1] == packed.entry_count
        assert all(
            packed.starts[i] < packed.starts[i + 1]
            for i in range(packed.node_count)
        )

    def test_internal_refs_ascend_in_entry_order(self):
        # Load-bearing for the fast kernel's plain tuple sort: within an
        # internal node, child refs must ascend in entry order so ref
        # tie-breaks reproduce the object kernel's stable sort.
        packed = PackedTree.from_tree(_point_tree(500))
        for ni in range(packed.node_count):
            if packed.kinds[ni] != NODE_INTERNAL:
                continue
            refs = packed.refs[packed.starts[ni]:packed.starts[ni + 1]]
            assert list(refs) == sorted(refs)

    def test_items_round_trip(self):
        tree = _point_tree(150)
        packed = PackedTree.from_tree(tree)
        original = sorted(
            (r.lo, r.hi, p) for r, p in tree.items()
        )
        compiled = sorted(
            (r.lo, r.hi, p) for r, p in packed.items()
        )
        assert compiled == original

    def test_leaf_rects_are_source_objects(self):
        tree = _point_tree(60)
        packed = PackedTree.from_tree(tree)
        by_payload = {p: r for r, p in tree.items()}
        for rect, payload in packed.items():
            assert rect == by_payload[payload]
        # The rects list holds identical objects, not reconstructions.
        assert all(
            packed.rects[i] is by_payload[packed.payloads[i]]
            for i in range(len(packed.payloads))
        )

    def test_point_leaves_marked(self):
        packed = PackedTree.from_tree(_point_tree(100))
        leaf_kinds = {
            packed.kinds[ni]
            for ni in range(packed.node_count)
            if packed.kinds[ni] != NODE_INTERNAL
        }
        assert leaf_kinds == {NODE_LEAF_POINTS}

    def test_rect_leaves_marked(self):
        tree = RTree(max_entries=8)
        for i in range(40):
            x = float(i % 10) * 10
            y = float(i // 10) * 10
            tree.insert(Rect((x, y), (x + 3.0, y + 5.0)), payload=i)
        packed = PackedTree.from_tree(tree)
        leaf_kinds = {
            packed.kinds[ni]
            for ni in range(packed.node_count)
            if packed.kinds[ni] != NODE_INTERNAL
        }
        assert leaf_kinds == {NODE_LEAF_RECT}

    def test_2d_mirrors_match_coords(self):
        packed = PackedTree.from_tree(_point_tree(120))
        assert list(packed.xlo) == list(packed.coords[0::4])
        assert list(packed.ylo) == list(packed.coords[1::4])
        assert list(packed.xhi) == list(packed.coords[2::4])
        assert list(packed.yhi) == list(packed.coords[3::4])

    def test_3d_tree_has_no_mirrors(self):
        packed = PackedTree.from_tree(_point_tree(80, dimension=3))
        assert packed.dimension == 3
        assert packed.xlo is None and packed.yhi is None
        assert packed.entry_count * 6 == len(packed.coords)

    def test_empty_tree(self):
        packed = PackedTree.from_tree(RTree())
        assert len(packed) == 0
        assert packed.node_count == 0
        assert packed.entry_count == 0

    def test_bulk_loaded_tree(self):
        items = [((float(i % 31), float(i % 17)), i) for i in range(400)]
        tree = bulk_load(items, max_entries=16)
        packed = PackedTree.from_tree(tree)
        assert len(packed) == 400
        assert sorted(p for _, p in packed.items()) == list(range(400))


class TestValidateAgainst:
    def test_passes_on_source(self):
        tree = _point_tree(50)
        packed = PackedTree.from_tree(tree)
        packed.validate_against(tree)

    def test_detects_size_drift(self):
        tree = _point_tree(50)
        packed = PackedTree.from_tree(tree)
        tree.insert((999.0, 999.0), payload=999)
        with pytest.raises(InvalidParameterError):
            packed.validate_against(tree)


class TestEpochCache:
    def test_packed_cached_per_epoch(self):
        tree = _point_tree(100)
        first = tree.packed()
        assert tree.packed() is first
        tree.insert((55.5, 44.5), payload=1000)
        second = tree.packed()
        assert second is not first
        assert second.epoch == tree.epoch
        assert len(second) == len(tree)

    def test_snapshot_packed_flag(self):
        tree = _point_tree(30)
        plain = tree.snapshot()
        assert plain.packed is None
        carried = tree.snapshot(packed=True)
        assert carried.packed is tree.packed()
        assert carried.is_current
