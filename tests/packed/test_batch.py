"""The multi-query batch kernel must reproduce the solo kernel bit-for-bit.

Every parity case asserts full equality against a per-query
:func:`packed_nearest_best_first` replay: payload order, exact squared
distances, rect identity, and the complete :class:`SearchStats`
dataclass — on both the vectorized path (when numpy is importable) and
the pure-python fallback, which is the canonical reference.  The
workloads come from :mod:`repro.audit.workloads`, whose grid-snapped
points make exact ties plentiful: a batched kernel that breaks ties in
any order other than the solo kernel's diverges here first.
"""

import pytest

from repro.audit.backends import build_memory_tree
from repro.audit.workloads import make_workload
from repro.core.budget import Budget
from repro.core.config import QueryConfig
from repro.core.pruning import PruningConfig
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.packed import batch as batch_module
from repro.packed.batch import (
    NUMPY_AVAILABLE,
    packed_nearest_batch,
    run_packed_batch,
)
from repro.packed.kernels import (
    packed_nearest_best_first,
    run_packed_query,
)
from repro.packed.layout import PackedTree
from repro.rtree.tree import RTree

pytestmark = pytest.mark.packed

#: Both execution paths when numpy is importable; just the reference
#: fallback otherwise (the no-numpy CI leg still runs the whole file).
MODES = [False] + ([True] if NUMPY_AVAILABLE else [])


def _build(workload):
    tree = build_memory_tree(workload.points, workload.max_entries)
    return PackedTree.from_tree(tree)


def _assert_identical(batch_out, solo_out):
    b_neighbors, b_stats = batch_out
    s_neighbors, s_stats = solo_out
    assert [nb.payload for nb in b_neighbors] == [
        nb.payload for nb in s_neighbors
    ]
    assert [nb.distance_squared for nb in b_neighbors] == [
        nb.distance_squared for nb in s_neighbors
    ]
    assert [nb.distance for nb in b_neighbors] == [
        nb.distance for nb in s_neighbors
    ]
    # Same rect *objects*, not just equal rects.
    assert all(
        a.rect is b.rect for a, b in zip(b_neighbors, s_neighbors)
    )
    assert b_stats == s_stats


@pytest.mark.parametrize("distribution", ["uniform", "clustered"])
@pytest.mark.parametrize("case_index", range(6))
@pytest.mark.parametrize("vectorize", MODES)
def test_batch_parity_on_audit_workloads(distribution, case_index, vectorize):
    workload = make_workload(1995, case_index, distribution)
    ptree = _build(workload)
    queries = workload.queries
    for k in workload.ks:
        for epsilon in (0.0, workload.epsilon):
            solo = [
                packed_nearest_best_first(ptree, q, k=k, epsilon=epsilon)
                for q in queries
            ]
            batched = packed_nearest_batch(
                ptree, queries, k=k, epsilon=epsilon, vectorize=vectorize
            )
            assert len(batched) == len(queries)
            for pair in zip(batched, solo):
                _assert_identical(*pair)


@pytest.mark.parametrize("vectorize", MODES)
@pytest.mark.parametrize("window", [1, 2, 5])
def test_window_size_never_changes_answers(vectorize, window):
    workload = make_workload(1995, 0, "uniform")
    ptree = _build(workload)
    queries = (workload.queries * 3)[:7]  # duplicates share a window
    solo = [packed_nearest_best_first(ptree, q, k=3) for q in queries]
    cursor = 0
    for start in range(0, len(queries), window):
        chunk = queries[start : start + window]
        for pair in zip(
            packed_nearest_batch(ptree, chunk, k=3, vectorize=vectorize),
            solo[cursor : cursor + len(chunk)],
        ):
            _assert_identical(*pair)
        cursor += len(chunk)


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")
def test_vectorized_and_fallback_paths_agree():
    workload = make_workload(2600, 3, "clustered")
    ptree = _build(workload)
    for epsilon in (0.0, 0.5):
        fast = packed_nearest_batch(
            ptree, workload.queries, k=4, epsilon=epsilon, vectorize=True
        )
        slow = packed_nearest_batch(
            ptree, workload.queries, k=4, epsilon=epsilon, vectorize=False
        )
        for pair in zip(fast, slow):
            _assert_identical(*pair)


@pytest.mark.parametrize("vectorize", MODES)
def test_shared_tracker_records_the_same_access_multiset(vectorize):
    workload = make_workload(7, 1, "uniform")
    ptree = _build(workload)
    queries = workload.queries[:4]

    class Recording:
        def __init__(self):
            self.events = []

        def access(self, node_id, is_leaf):
            self.events.append((node_id, is_leaf))

    solo_tracker = Recording()
    for q in queries:
        packed_nearest_best_first(ptree, q, k=2, tracker=solo_tracker)
    batch_tracker = Recording()
    packed_nearest_batch(
        ptree, queries, k=2, tracker=batch_tracker, vectorize=vectorize
    )
    # Rounds interleave queries, so order differs — the multiset must not.
    assert sorted(batch_tracker.events) == sorted(solo_tracker.events)


# ----------------------------------------------------------------------
# Edge cases and validation
# ----------------------------------------------------------------------
def test_empty_window_returns_empty_list():
    workload = make_workload(1995, 0, "uniform")
    assert packed_nearest_batch(_build(workload), [], k=2) == []


def test_empty_tree_answers_every_query_with_nothing():
    ptree = PackedTree.from_tree(RTree())
    out = packed_nearest_batch(ptree, [(0.0, 0.0), (1.0, 2.0)], k=3)
    assert len(out) == 2
    for neighbors, stats in out:
        assert neighbors == []
        assert stats.nodes_accessed == 0


def test_k_exceeding_size_returns_all():
    workload = make_workload(1995, 2, "uniform")
    ptree = _build(workload)
    n = ptree.size
    for (neighbors, _), q in zip(
        packed_nearest_batch(ptree, workload.queries, k=n + 5),
        workload.queries,
    ):
        solo_neighbors, _ = packed_nearest_best_first(ptree, q, k=n + 5)
        assert len(neighbors) == n
        assert [nb.payload for nb in neighbors] == [
            nb.payload for nb in solo_neighbors
        ]


def test_validation_matches_solo_kernel():
    workload = make_workload(1995, 0, "uniform")
    ptree = _build(workload)
    with pytest.raises(InvalidParameterError):
        packed_nearest_batch(ptree, [(0.0, 0.0)], k=0)
    with pytest.raises(InvalidParameterError):
        packed_nearest_batch(ptree, [(0.0, 0.0)], k=1, epsilon=-0.1)
    with pytest.raises(DimensionMismatchError):
        packed_nearest_batch(ptree, [(0.0, 0.0, 0.0)], k=1)


def test_vectorize_true_without_numpy_raises(monkeypatch):
    workload = make_workload(1995, 0, "uniform")
    ptree = _build(workload)
    monkeypatch.setattr(batch_module, "_np", None)
    with pytest.raises(InvalidParameterError, match="repro\\[fast\\]"):
        packed_nearest_batch(ptree, [(0.0, 0.0)], k=1, vectorize=True)


# ----------------------------------------------------------------------
# Config-window dispatch
# ----------------------------------------------------------------------
def _flat(result):
    return (
        [nb.payload for nb in result.neighbors],
        [nb.distance_squared for nb in result.neighbors],
        result.stats,
    )


@pytest.mark.parametrize(
    "cfg",
    [
        QueryConfig(k=3, algorithm="best-first"),
        QueryConfig(k=3, algorithm="best-first", epsilon=0.5),
        QueryConfig(k=3),  # dfs: solo-loop fallback
        QueryConfig(k=3, ordering="minmaxdist"),
        QueryConfig(k=3, pruning=PruningConfig.none()),
        QueryConfig(k=3, pruning=PruningConfig.only_p3()),
        QueryConfig(
            k=3, algorithm="best-first", budget=Budget(max_pages=4)
        ),  # budgets truncate per-query: solo-loop fallback
    ],
    ids=[
        "best-first",
        "best-first-eps",
        "dfs",
        "dfs-minmaxdist",
        "dfs-noprune",
        "dfs-p3only",
        "budgeted",
    ],
)
def test_run_packed_batch_matches_per_query_dispatch(cfg):
    workload = make_workload(1995, 4, "clustered")
    ptree = _build(workload)
    batched = run_packed_batch(ptree, workload.queries, cfg)
    for result, q in zip(batched, workload.queries):
        assert _flat(result) == _flat(run_packed_query(ptree, q, cfg))


def test_run_packed_batch_rejects_object_distance_configs():
    workload = make_workload(1995, 0, "uniform")
    ptree = _build(workload)
    cfg = QueryConfig(k=1, object_distance_sq=lambda q, payload, rect: 0.0)
    with pytest.raises(InvalidParameterError):
        run_packed_batch(ptree, workload.queries, cfg)
