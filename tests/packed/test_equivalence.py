"""Packed kernels must reproduce the object kernels bit-for-bit.

Every case asserts full equality: payload order, exact distances, rect
identity, and the complete :class:`SearchStats` dataclass (node counts,
objects examined, branch entries, every pruning counter).  The workloads
come from :mod:`repro.audit.workloads`, which deliberately generates grid
ties, duplicate points, on-face queries, 2-D and 3-D data, and mixed
fanouts/splits — the cases where a subtly wrong kernel diverges first.
"""

import pytest

from repro.audit.backends import build_memory_tree
from repro.audit.workloads import make_workload
from repro.core.knn_best_first import nearest_best_first
from repro.core.knn_dfs import nearest_dfs
from repro.core.pruning import PruningConfig
from repro.geometry.rect import Rect
from repro.packed.kernels import (
    packed_nearest_best_first,
    packed_nearest_dfs,
)
from repro.packed.layout import PackedTree
from repro.rtree.tree import RTree
from repro.storage.tracker import CountingTracker

pytestmark = pytest.mark.packed

PRUNING_CONFIGS = [
    PruningConfig.all(),
    PruningConfig.none(),
    PruningConfig.only_p3(),
]


def _assert_identical(packed_out, object_out):
    pk_neighbors, pk_stats = packed_out
    obj_neighbors, obj_stats = object_out
    assert [nb.payload for nb in pk_neighbors] == [
        nb.payload for nb in obj_neighbors
    ]
    assert [nb.distance_squared for nb in pk_neighbors] == [
        nb.distance_squared for nb in obj_neighbors
    ]
    assert [nb.distance for nb in pk_neighbors] == [
        nb.distance for nb in obj_neighbors
    ]
    # Same rect *objects*, not just equal rects.
    assert all(
        a.rect is b.rect for a, b in zip(pk_neighbors, obj_neighbors)
    )
    assert pk_stats == obj_stats


@pytest.mark.parametrize("distribution", ["uniform", "clustered"])
@pytest.mark.parametrize("case_index", range(6))
def test_dfs_equivalence_on_audit_workloads(distribution, case_index):
    workload = make_workload(1995, case_index, distribution)
    tree = build_memory_tree(
        workload.points,
        max_entries=workload.max_entries,
        split=workload.split,
        use_bulk_load=workload.use_bulk_load,
    )
    packed = PackedTree.from_tree(tree)
    for query in workload.queries:
        for k in workload.ks:
            for ordering in ("mindist", "minmaxdist"):
                for pruning in PRUNING_CONFIGS:
                    _assert_identical(
                        packed_nearest_dfs(
                            packed, query, k=k,
                            ordering=ordering, pruning=pruning,
                        ),
                        nearest_dfs(
                            tree, query, k=k,
                            ordering=ordering, pruning=pruning,
                        ),
                    )


@pytest.mark.parametrize("case_index", range(6))
def test_best_first_equivalence_on_audit_workloads(case_index):
    workload = make_workload(2600, case_index, "uniform")
    tree = build_memory_tree(
        workload.points,
        max_entries=workload.max_entries,
        split=workload.split,
        use_bulk_load=workload.use_bulk_load,
    )
    packed = PackedTree.from_tree(tree)
    for query in workload.queries:
        for k in workload.ks:
            _assert_identical(
                packed_nearest_best_first(packed, query, k=k),
                nearest_best_first(tree, query, k=k),
            )


@pytest.mark.parametrize("epsilon", [0.0, 0.05, 0.25, 1.0])
def test_epsilon_band_equivalence(epsilon):
    workload = make_workload(7, 3, "clustered")
    tree = build_memory_tree(workload.points)
    packed = PackedTree.from_tree(tree)
    for query in workload.queries:
        _assert_identical(
            packed_nearest_dfs(packed, query, k=4, epsilon=epsilon),
            nearest_dfs(tree, query, k=4, epsilon=epsilon),
        )
        _assert_identical(
            packed_nearest_best_first(packed, query, k=4, epsilon=epsilon),
            nearest_best_first(tree, query, k=4, epsilon=epsilon),
        )


def test_rect_data_equivalence():
    """Non-point leaves: overlapping, nested and degenerate rectangles."""
    tree = RTree(max_entries=6)
    rects = []
    for i in range(120):
        x = float((i * 13) % 90)
        y = float((i * 29) % 70)
        if i % 3 == 0:
            rect = Rect((x, y), (x, y))  # degenerate (a point)
        elif i % 3 == 1:
            rect = Rect((x, y), (x + 10.0, y + 4.0))
        else:
            rect = Rect((x - 5.0, y - 5.0), (x + 5.0, y + 5.0))
        rects.append(rect)
        tree.insert(rect, payload=i)
    packed = PackedTree.from_tree(tree)
    queries = [
        (0.0, 0.0), (45.0, 35.0), (89.0, 69.0), (13.0, 29.0), (-20.0, 100.0),
    ]
    for query in queries:
        for k in (1, 5, 200):
            for ordering in ("mindist", "minmaxdist"):
                _assert_identical(
                    packed_nearest_dfs(packed, query, k=k, ordering=ordering),
                    nearest_dfs(tree, query, k=k, ordering=ordering),
                )
            _assert_identical(
                packed_nearest_best_first(packed, query, k=k),
                nearest_best_first(tree, query, k=k),
            )


def test_tracker_parity():
    """Page-access streams (ids and leaf flags) must match exactly."""

    class RecordingTracker(CountingTracker):
        def __init__(self):
            super().__init__()
            self.trace = []

        def access(self, node_id, is_leaf):
            self.trace.append((node_id, is_leaf))
            return super().access(node_id, is_leaf)

    workload = make_workload(42, 1, "uniform")
    tree = build_memory_tree(workload.points)
    packed = PackedTree.from_tree(tree)
    for query in workload.queries:
        obj_tracker = RecordingTracker()
        pk_tracker = RecordingTracker()
        nearest_dfs(tree, query, k=3, tracker=obj_tracker)
        packed_nearest_dfs(packed, query, k=3, tracker=pk_tracker)
        assert pk_tracker.trace == obj_tracker.trace
        obj_tracker = RecordingTracker()
        pk_tracker = RecordingTracker()
        nearest_best_first(tree, query, k=3, tracker=obj_tracker)
        packed_nearest_best_first(packed, query, k=3, tracker=pk_tracker)
        assert pk_tracker.trace == obj_tracker.trace


def test_validation_errors_match_object_kernels():
    tree = build_memory_tree(make_workload(1, 0, "uniform").points)
    packed = PackedTree.from_tree(tree)
    from repro.errors import DimensionMismatchError, InvalidParameterError

    with pytest.raises(InvalidParameterError):
        packed_nearest_dfs(packed, (1.0, 2.0), k=0)
    with pytest.raises(InvalidParameterError):
        packed_nearest_dfs(packed, (1.0, 2.0), k=1, ordering="nope")
    with pytest.raises(InvalidParameterError):
        packed_nearest_dfs(packed, (1.0, 2.0), k=1, epsilon=-0.5)
    wrong_dim = (1.0,) * (packed.dimension + 1)
    with pytest.raises(DimensionMismatchError):
        packed_nearest_dfs(packed, wrong_dim, k=1)
    with pytest.raises(DimensionMismatchError):
        packed_nearest_best_first(packed, wrong_dim, k=1)


def test_empty_tree_returns_empty():
    packed = PackedTree.from_tree(RTree())
    neighbors, stats = packed_nearest_dfs(packed, (1.0, 2.0), k=5)
    assert neighbors == [] and stats.nodes_accessed == 0
    neighbors, stats = packed_nearest_best_first(packed, (1.0, 2.0), k=5)
    assert neighbors == [] and stats.nodes_accessed == 0
