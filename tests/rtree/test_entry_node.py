"""Unit tests for Entry and Node primitives."""

import pytest

from repro.errors import TreeInvariantError
from repro.geometry.rect import Rect
from repro.rtree.entry import Entry
from repro.rtree.node import Node


class TestEntry:
    def test_leaf_entry(self):
        e = Entry(Rect((0, 0), (1, 1)), payload="x")
        assert e.is_leaf_entry
        assert e.child is None
        assert "payload='x'" in repr(e)

    def test_internal_entry(self):
        child = Node(node_id=7, level=0)
        e = Entry(Rect((0, 0), (1, 1)), child=child)
        assert not e.is_leaf_entry
        assert "node 7" in repr(e)


class TestNode:
    def test_leaf_flag(self):
        assert Node(0, level=0).is_leaf
        assert not Node(0, level=1).is_leaf

    def test_mbr_unions_entries(self):
        node = Node(0, level=0)
        node.entries = [
            Entry(Rect((0, 0), (1, 1)), payload=1),
            Entry(Rect((3, -2), (4, 0)), payload=2),
        ]
        assert node.mbr() == Rect((0, -2), (4, 1))

    def test_mbr_of_empty_node_raises(self):
        with pytest.raises(TreeInvariantError):
            Node(0, level=0).mbr()

    def test_children_of_leaf_is_empty(self):
        node = Node(0, level=0)
        node.entries = [Entry(Rect((0, 0), (1, 1)), payload=1)]
        assert node.children() == []

    def test_children_of_internal(self):
        a, b = Node(1, level=0), Node(2, level=0)
        node = Node(0, level=1)
        node.entries = [
            Entry(Rect((0, 0), (1, 1)), child=a),
            Entry(Rect((2, 2), (3, 3)), child=b),
        ]
        assert node.children() == [a, b]

    def test_entry_count(self):
        node = Node(0, level=0)
        assert node.entry_count() == 0
        node.entries.append(Entry(Rect((0, 0), (1, 1)), payload=1))
        assert node.entry_count() == 1

    def test_repr(self):
        assert "leaf" in repr(Node(3, level=0))
        assert "internal" in repr(Node(3, level=2))
