"""Unit and integration tests for the disk-backed R-tree."""

import pytest

from repro import (
    RTree,
    bulk_load,
    linear_scan_items,
    nearest,
    within_distance,
)
from repro.core.farthest import farthest_best_first
from repro.core.knn_best_first import nearest_incremental
from repro.datasets import uniform_points
from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.rtree.disk import DiskRTree, write_tree
from repro.storage.pagefile import PageFileError
from tests.conftest import assert_same_distances


@pytest.fixture(scope="module")
def points():
    return uniform_points(3000, seed=71)


@pytest.fixture(scope="module")
def memory_tree(points):
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=28)


@pytest.fixture
def disk_path(tmp_path, memory_tree):
    path = tmp_path / "tree.rnn"
    write_tree(memory_tree, path, page_size=4096)
    return path


def oracle(points, q, k):
    items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
    return linear_scan_items(items, q, k=k)


class TestWriteTree:
    def test_empty_tree_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            write_tree(RTree(), tmp_path / "x.rnn")

    def test_non_int_payload_rejected(self, tmp_path):
        tree = RTree()
        tree.insert((0.0, 0.0), payload="name")
        with pytest.raises(InvalidParameterError):
            write_tree(tree, tmp_path / "x.rnn")

    def test_negative_payload_rejected(self, tmp_path):
        tree = RTree()
        tree.insert((0.0, 0.0), payload=-1)
        with pytest.raises(InvalidParameterError):
            write_tree(tree, tmp_path / "x.rnn")

    def test_fanout_must_fit_page(self, tmp_path):
        tree = RTree(max_entries=100)
        tree.insert((0.0, 0.0), payload=0)
        with pytest.raises(InvalidParameterError):
            write_tree(tree, tmp_path / "x.rnn", page_size=256)

    def test_file_has_one_page_per_node_plus_header(
        self, disk_path, memory_tree
    ):
        import os

        pages = os.path.getsize(disk_path) // 4096
        assert pages == memory_tree.node_count + 1


class TestOpen:
    def test_not_a_tree_file(self, tmp_path):
        junk = tmp_path / "junk.rnn"
        junk.write_bytes(b"\x00" * 8192)
        with pytest.raises(PageFileError):
            DiskRTree(junk, page_size=4096)

    def test_wrong_page_size(self, disk_path):
        with pytest.raises(PageFileError):
            DiskRTree(disk_path, page_size=8192)

    def test_metadata_matches_source(self, disk_path, memory_tree):
        with DiskRTree(disk_path) as disk:
            assert len(disk) == len(memory_tree)
            assert disk.height == memory_tree.height
            assert disk.node_count == memory_tree.node_count
            assert disk.dimension == memory_tree.dimension
            assert disk.max_entries == memory_tree.max_entries

    def test_bad_cache_size(self, disk_path):
        with pytest.raises(InvalidParameterError):
            DiskRTree(disk_path, cache_nodes=0)


class TestQueries:
    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_knn_matches_oracle(self, disk_path, points, k):
        with DiskRTree(disk_path) as disk:
            for q in [(0.0, 0.0), (500.0, 500.0), (77.0, 913.0)]:
                for algorithm in ("dfs", "best-first"):
                    got = nearest(disk, q, k=k, algorithm=algorithm)
                    assert_same_distances(got.neighbors, oracle(points, q, k))

    def test_incremental_and_within(self, disk_path, points):
        with DiskRTree(disk_path) as disk:
            q = (250.0, 250.0)
            stream = nearest_incremental(disk, q)
            first = [next(stream) for _ in range(4)]
            assert_same_distances(first, oracle(points, q, 4))
            w = within_distance(disk, q, 25.0)
            assert all(n.distance <= 25.0 for n in w)

    def test_farthest(self, disk_path, points):
        from repro.geometry.point import euclidean

        with DiskRTree(disk_path) as disk:
            got, _ = farthest_best_first(disk, (500.0, 500.0), k=3)
            expected = sorted(
                (euclidean((500.0, 500.0), p) for p in points), reverse=True
            )[:3]
            assert [n.distance for n in got] == pytest.approx(expected)

    def test_items_roundtrip(self, disk_path, points):
        with DiskRTree(disk_path) as disk:
            payloads = sorted(payload for _, payload in disk.items())
            assert payloads == list(range(len(points)))

    def test_window_query(self, disk_path, points):
        window = Rect((100.0, 100.0), (200.0, 200.0))
        with DiskRTree(disk_path) as disk:
            got = sorted(p for _, p in disk.search(window))
        expected = sorted(
            i for i, p in enumerate(points) if window.contains_point(p)
        )
        assert got == expected


class TestPhysicalIO:
    def test_query_reads_few_pages(self, disk_path, memory_tree):
        with DiskRTree(disk_path, cache_nodes=4) as disk:
            nearest(disk, (500.0, 500.0), k=1)
            assert 0 < disk.file_reads <= memory_tree.height * 6

    def test_cache_absorbs_repeat_queries(self, disk_path):
        with DiskRTree(disk_path, cache_nodes=512) as disk:
            nearest(disk, (500.0, 500.0), k=3)
            after_first = disk.file_reads
            for _ in range(5):
                nearest(disk, (500.0, 500.0), k=3)
            assert disk.file_reads == after_first

    def test_tiny_cache_rereads(self, disk_path):
        with DiskRTree(disk_path, cache_nodes=1) as disk:
            for x in range(0, 1000, 100):
                nearest(disk, (float(x), 500.0), k=2)
            small_cache_reads = disk.file_reads
        with DiskRTree(disk_path, cache_nodes=512) as disk:
            for x in range(0, 1000, 100):
                nearest(disk, (float(x), 500.0), k=2)
            big_cache_reads = disk.file_reads
        assert big_cache_reads < small_cache_reads

    def test_logical_accesses_match_memory_tree(
        self, disk_path, memory_tree
    ):
        # The traversal (and hence the paper's logical page counts) is
        # identical on disk and in memory; only physical I/O differs.
        q = (321.0, 654.0)
        mem = nearest(memory_tree, q, k=4)
        with DiskRTree(disk_path) as disk:
            dsk = nearest(disk, q, k=4)
        assert dsk.stats.nodes_accessed == mem.stats.nodes_accessed
        assert dsk.distances() == pytest.approx(mem.distances())
