"""Unit tests for the tree quality metrics."""

import pytest

from repro import RTree, bulk_load
from repro.datasets import uniform_points
from repro.errors import EmptyIndexError
from repro.rtree.quality import measure_quality
from tests.conftest import build_point_tree


def items(n, seed=61):
    return [(p, i) for i, p in enumerate(uniform_points(n, seed=seed))]


class TestMeasureQuality:
    def test_empty_tree_rejected(self):
        with pytest.raises(EmptyIndexError):
            measure_quality(RTree())

    def test_single_leaf_tree(self):
        tree = RTree(max_entries=8)
        tree.insert((1.0, 1.0), payload=0)
        tree.insert((2.0, 2.0), payload=1)
        quality = measure_quality(tree)
        assert quality.height == 1
        assert quality.node_count == 1
        assert quality.level(0).nodes == 1
        assert quality.level(0).entries == 2

    def test_levels_cover_whole_tree(self, medium_points):
        tree = build_point_tree(medium_points)
        quality = measure_quality(tree)
        assert len(quality.levels) == tree.height
        assert sum(lq.nodes for lq in quality.levels) == tree.node_count
        assert quality.level(0).entries == len(tree)

    def test_fill_in_unit_range(self, medium_points):
        tree = build_point_tree(medium_points)
        quality = measure_quality(tree)
        for lq in quality.levels:
            assert 0.0 < lq.average_fill <= 1.0
        assert 0.0 < quality.average_fill <= 1.0

    def test_point_leaves_have_zero_overlap_area(self, medium_points):
        # Degenerate (point) leaf rects can touch but never share area.
        tree = build_point_tree(medium_points)
        assert measure_quality(tree).level(0).overlap_area == 0.0

    def test_leaf_overlap_factor_accessor(self, medium_points):
        from tests.conftest import build_point_tree

        tree = build_point_tree(medium_points)
        quality = measure_quality(tree)
        assert quality.leaf_overlap_factor == quality.level(0).overlap_factor
        assert quality.leaf_overlap_factor >= 0.0

    def test_bulk_fill_beats_dynamic_fill(self):
        data = items(2000)
        packed = bulk_load(data, max_entries=8)
        dynamic = RTree(max_entries=8)
        for rect, payload in data:
            dynamic.insert(rect, payload)
        assert (
            measure_quality(packed).average_fill
            > measure_quality(dynamic).average_fill
        )

    def test_rstar_overlap_not_worse_than_linear(self):
        data = items(1500, seed=62)
        by_split = {}
        for split in ("linear", "rstar"):
            tree = RTree(max_entries=8, split=split)
            for rect, payload in data:
                tree.insert(rect, payload)
            # Overlap among level-1 nodes' entries (the leaf MBRs) is what
            # the NN search pays for.
            by_split[split] = measure_quality(tree).level(1).overlap_factor
        assert by_split["rstar"] <= by_split["linear"]

    def test_quality_explains_query_cost(self):
        # The E7 ranking: the linear-split tree has more sibling overlap
        # than the quadratic-split tree on the same data.
        data = items(1500, seed=63)
        overlap = {}
        for split in ("linear", "quadratic"):
            tree = RTree(max_entries=8, split=split)
            for rect, payload in data:
                tree.insert(rect, payload)
            overlap[split] = measure_quality(tree).level(1).overlap_factor
        assert overlap["quadratic"] < overlap["linear"]
