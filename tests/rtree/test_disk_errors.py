"""Error-path tests for the disk R-tree: corrupt files must fail loudly."""

import struct

import pytest

from repro import bulk_load
from repro.datasets import uniform_points
from repro.rtree.disk import DiskRTree, disk_fanout, write_tree
from repro.errors import InvalidParameterError
from repro.storage.pagefile import PageFileError


@pytest.fixture
def tree_file(tmp_path):
    points = uniform_points(300, seed=161)
    tree = bulk_load([(p, i) for i, p in enumerate(points)], max_entries=16)
    path = tmp_path / "tree.rnn"
    write_tree(tree, path, page_size=1024)
    return path


class TestCorruption:
    def test_truncated_file(self, tree_file):
        data = tree_file.read_bytes()
        tree_file.write_bytes(data[: len(data) - 100])
        with pytest.raises(PageFileError):
            DiskRTree(tree_file, page_size=1024)

    def test_flipped_magic(self, tree_file):
        data = bytearray(tree_file.read_bytes())
        data[0] ^= 0xFF
        tree_file.write_bytes(bytes(data))
        with pytest.raises(PageFileError):
            DiskRTree(tree_file, page_size=1024)

    def test_header_claims_wrong_page_size(self, tree_file):
        data = bytearray(tree_file.read_bytes())
        # Overwrite the page_size field (offset 4, u32 little-endian).
        struct.pack_into("<I", data, 4, 2048)
        tree_file.write_bytes(bytes(data))
        with pytest.raises(PageFileError):
            DiskRTree(tree_file, page_size=1024)

    def test_out_of_range_child_pointer(self, tree_file):
        with DiskRTree(tree_file, page_size=1024) as disk:
            root_page = disk.root.node_id
        data = bytearray(tree_file.read_bytes())
        # Corrupt the root's first entry ref (node header 4 bytes + 4
        # coord doubles) to point past the file.
        offset = root_page * 1024 + 4 + 32
        struct.pack_into("<Q", data, offset, 10_000)
        tree_file.write_bytes(bytes(data))
        with DiskRTree(tree_file, page_size=1024) as disk:
            with pytest.raises(PageFileError):
                list(disk.items())


class TestLifecycleErrors:
    def test_double_close_is_idempotent(self, tree_file):
        disk = DiskRTree(tree_file, page_size=1024)
        disk.close()
        disk.close()  # must not raise

    def test_use_after_close_raises(self, tree_file):
        disk = DiskRTree(tree_file, page_size=1024)
        disk.close()
        with pytest.raises(PageFileError):
            list(disk.items())

    def test_context_manager_closes_on_exception(self, tree_file):
        with pytest.raises(RuntimeError):
            with DiskRTree(tree_file, page_size=1024) as disk:
                raise RuntimeError("boom")
        with pytest.raises(PageFileError):
            list(disk.items())

    def test_failed_open_does_not_leak_file_handle(self, tmp_path):
        junk = tmp_path / "junk.rnn"
        junk.write_bytes(b"\x00" * 2048)
        with pytest.raises(PageFileError):
            DiskRTree(junk, page_size=1024)
        # The header page file must have been closed on the error path:
        # on POSIX an unlink+recreate then reopen would still work, but
        # the cheap observable here is that nothing holds the path open.
        junk.unlink()

    def test_wrong_page_size_error_is_clear(self, tmp_path):
        from repro import bulk_load
        from repro.datasets import uniform_points

        points = uniform_points(300, seed=7)
        tree = bulk_load(
            [(p, i) for i, p in enumerate(points)], max_entries=16
        )
        path = tmp_path / "v2.rnn"
        write_tree(tree, path, page_size=1024)  # RNN2
        with pytest.raises(PageFileError) as info:
            DiskRTree(path, page_size=2048)
        message = str(info.value)
        assert "1024" in message or "not a multiple" in message

    def test_path_or_page_file_required(self):
        with pytest.raises(InvalidParameterError):
            DiskRTree()


class TestDiskFanout:
    def test_reasonable_values(self):
        assert disk_fanout(4096, 2) == 102
        assert disk_fanout(1024, 2) == 25

    def test_higher_dimension_fewer_entries(self):
        assert disk_fanout(4096, 3) < disk_fanout(4096, 2)

    def test_too_small_page_rejected(self):
        with pytest.raises(InvalidParameterError):
            disk_fanout(64, 8)

    def test_roundtrip_at_exact_fanout(self, tmp_path):
        fanout = disk_fanout(1024, 2)
        points = uniform_points(fanout * 3, seed=162)
        tree = bulk_load(
            [(p, i) for i, p in enumerate(points)], max_entries=fanout
        )
        path = tmp_path / "exact.rnn"
        write_tree(tree, path, page_size=1024)
        with DiskRTree(path, page_size=1024) as disk:
            assert len(disk) == fanout * 3
