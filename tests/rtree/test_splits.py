"""Unit tests for the three node split strategies."""

import random

import pytest

from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.rtree.entry import Entry
from repro.rtree.splits import (
    LinearSplit,
    QuadraticSplit,
    RStarSplit,
    SplitStrategy,
    resolve_split_strategy,
)

ALL_STRATEGIES = [LinearSplit(), QuadraticSplit(), RStarSplit()]


def make_entries(rects):
    return [Entry(r, payload=i) for i, r in enumerate(rects)]


def random_entries(n, seed=0, dim=2):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        lo = [rng.uniform(0, 100) for _ in range(dim)]
        hi = [c + rng.uniform(0, 10) for c in lo]
        rects.append(Rect(lo, hi))
    return make_entries(rects)


class TestResolve:
    def test_by_name(self):
        assert isinstance(resolve_split_strategy("linear"), LinearSplit)
        assert isinstance(resolve_split_strategy("quadratic"), QuadraticSplit)
        assert isinstance(resolve_split_strategy("rstar"), RStarSplit)

    def test_instance_passthrough(self):
        strategy = QuadraticSplit()
        assert resolve_split_strategy(strategy) is strategy

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            resolve_split_strategy("bogus")


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
class TestSplitContract:
    """Invariants every split strategy must satisfy."""

    def test_partitions_all_entries(self, strategy):
        entries = random_entries(9, seed=1)
        a, b = strategy.split(entries, min_entries=3)
        assert len(a) + len(b) == len(entries)
        ids = sorted(e.payload for e in a + b)
        assert ids == list(range(9))

    def test_respects_min_entries(self, strategy):
        for seed in range(5):
            entries = random_entries(11, seed=seed)
            a, b = strategy.split(entries, min_entries=4)
            assert len(a) >= 4
            assert len(b) >= 4

    def test_does_not_mutate_input(self, strategy):
        entries = random_entries(8, seed=2)
        snapshot = list(entries)
        strategy.split(entries, min_entries=3)
        assert entries == snapshot

    def test_identical_rects_still_split(self, strategy):
        entries = make_entries([Rect((5, 5), (6, 6))] * 10)
        a, b = strategy.split(entries, min_entries=4)
        assert len(a) >= 4 and len(b) >= 4

    def test_collinear_degenerate_rects(self, strategy):
        entries = make_entries(
            [Rect((float(i), 0.0), (float(i), 0.0)) for i in range(9)]
        )
        a, b = strategy.split(entries, min_entries=3)
        assert len(a) + len(b) == 9
        assert len(a) >= 3 and len(b) >= 3

    def test_rejects_tiny_input(self, strategy):
        entries = random_entries(3, seed=3)
        with pytest.raises(InvalidParameterError):
            strategy.split(entries, min_entries=2)

    def test_rejects_bad_min_entries(self, strategy):
        entries = random_entries(8, seed=4)
        with pytest.raises(InvalidParameterError):
            strategy.split(entries, min_entries=0)

    def test_one_dimensional(self, strategy):
        entries = random_entries(8, seed=5, dim=1)
        a, b = strategy.split(entries, min_entries=3)
        assert len(a) + len(b) == 8

    def test_three_dimensional(self, strategy):
        entries = random_entries(10, seed=6, dim=3)
        a, b = strategy.split(entries, min_entries=4)
        assert len(a) + len(b) == 10


class TestSplitQuality:
    def test_separated_clusters_split_cleanly(self):
        # Two well-separated clusters should be separated by every strategy.
        left = [Rect((i, 0.0), (i + 0.5, 0.5)) for i in range(5)]
        right = [Rect((i + 1000.0, 0.0), (i + 1000.5, 0.5)) for i in range(5)]
        entries = make_entries(left + right)
        for strategy in ALL_STRATEGIES:
            a, b = strategy.split(entries, min_entries=3)
            groups = {frozenset(e.payload for e in a), frozenset(e.payload for e in b)}
            assert groups == {frozenset(range(5)), frozenset(range(5, 10))}, (
                strategy.name
            )

    def test_rstar_minimizes_overlap_on_grid(self):
        # A 4x4 grid splits into two non-overlapping halves under R*.
        rects = [
            Rect((x, y), (x + 0.9, y + 0.9))
            for x in range(4)
            for y in range(4)
        ]
        a, b = RStarSplit().split(make_entries(rects), min_entries=6)
        mbr_a = Rect.union_all(e.rect for e in a)
        mbr_b = Rect.union_all(e.rect for e in b)
        assert mbr_a.overlap_area(mbr_b) == 0.0

    def test_base_class_split_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SplitStrategy().split(random_entries(6), min_entries=2)
