"""Property-based disk R-tree tests: arbitrary data round-trips exactly."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import RTree, linear_scan, nearest
from repro.rtree.disk import DiskRTree, disk_fanout, write_tree
from tests.conftest import assert_same_distances

coord = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(point2d, min_size=1, max_size=200),
    point2d,
    st.integers(1, 6),
    st.sampled_from([256, 1024, 4096]),
    st.integers(1, 8),
)
def test_disk_roundtrip_property(
    tmp_path_factory, points, query, k, page_size, cache_nodes
):
    tree = RTree(max_entries=min(8, disk_fanout(page_size, 2)))
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    path = tmp_path_factory.mktemp("prop") / "t.rnn"
    write_tree(tree, path, page_size=page_size)
    with DiskRTree(path, page_size=page_size, cache_nodes=cache_nodes) as disk:
        assert len(disk) == len(points)
        got = nearest(disk, query, k=k)
        assert_same_distances(
            got.neighbors, linear_scan(tree, query, k=k), tolerance=1e-6
        )
        # Every payload id must survive the round trip.
        assert sorted(payload for _, payload in disk.items()) == list(
            range(len(points))
        )


@settings(max_examples=15, deadline=None)
@given(st.lists(point2d, min_size=1, max_size=150))
def test_disk_traversal_identical_to_memory(tmp_path_factory, points):
    from repro import CountingTracker

    tree = RTree(max_entries=6)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    path = tmp_path_factory.mktemp("prop2") / "t.rnn"
    write_tree(tree, path, page_size=1024)
    with DiskRTree(path, page_size=1024) as disk:
        mem_tracker, disk_tracker = CountingTracker(), CountingTracker()
        nearest(tree, (0.0, 0.0), k=3, tracker=mem_tracker)
        nearest(disk, (0.0, 0.0), k=3, tracker=disk_tracker)
        # Same logical page count; page *ids* differ (page numbering vs
        # node numbering) but the traversal size must match exactly.
        assert mem_tracker.stats.total == disk_tracker.stats.total
