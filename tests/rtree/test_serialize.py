"""Unit tests for JSON persistence of R-trees."""

import json

import pytest

from repro import (
    CountingTracker,
    RTree,
    load_tree,
    nearest,
    save_tree,
    validate_tree,
)
from repro.errors import InvalidParameterError
from repro.rtree.serialize import tree_from_dict, tree_to_dict
from tests.conftest import build_point_tree


class TestRoundTrip:
    def test_empty_tree(self):
        restored = tree_from_dict(tree_to_dict(RTree()))
        assert len(restored) == 0
        validate_tree(restored)

    def test_structure_preserved_exactly(self, small_points):
        tree = build_point_tree(small_points, max_entries=5)
        restored = tree_from_dict(tree_to_dict(tree))
        validate_tree(restored)
        assert len(restored) == len(tree)
        assert restored.height == tree.height
        assert restored.node_count == tree.node_count
        assert restored.max_entries == tree.max_entries
        assert restored.min_entries == tree.min_entries
        assert restored.split_strategy.name == tree.split_strategy.name

    def test_page_accesses_identical_after_roundtrip(self, small_points):
        # Serialization must preserve experiment reproducibility: identical
        # node ids, identical traversal, identical page counts.
        tree = build_point_tree(small_points, max_entries=5)
        restored = tree_from_dict(tree_to_dict(tree))
        for q in [(0.0, 0.0), (500.0, 500.0), (900.0, 100.0)]:
            t1, t2 = CountingTracker(), CountingTracker()
            r1 = nearest(tree, q, k=3, tracker=t1)
            r2 = nearest(restored, q, k=3, tracker=t2)
            assert r1.distances() == pytest.approx(r2.distances())
            assert t1.stats.per_page == t2.stats.per_page

    def test_updates_work_after_restore(self, small_points):
        tree = build_point_tree(small_points, max_entries=5)
        restored = tree_from_dict(tree_to_dict(tree))
        restored.insert((123.0, 456.0), payload="new")
        assert restored.delete(small_points[0], payload=0)
        validate_tree(restored)

    def test_file_roundtrip(self, tmp_path, small_points):
        tree = build_point_tree(small_points)
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        restored = load_tree(path)
        validate_tree(restored)
        assert len(restored) == len(tree)

    def test_serialized_form_is_plain_json(self, tmp_path, small_points):
        tree = build_point_tree(small_points)
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["format_version"] == 1
        assert data["size"] == len(tree)

    def test_unknown_version_rejected(self):
        data = tree_to_dict(RTree())
        data["format_version"] = 99
        with pytest.raises(InvalidParameterError):
            tree_from_dict(data)
