"""Deep-path tests for R-tree internals: the branches hypothesis rarely
reaches get pinned explicitly here."""

import random

from repro import RTree, Rect, linear_scan, validate_tree
from repro.core.knn_dfs import nearest_dfs
from repro.rtree.validate import tree_depth_of_leaves
from tests.conftest import assert_same_distances


class TestForcedReinsert:
    def test_reinserted_entries_are_not_lost(self):
        tree = RTree(max_entries=4, min_entries=2, forced_reinsert=True)
        points = [(float(i % 17), float(i % 13)) for i in range(200)]
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        validate_tree(tree)
        assert sorted(payload for _, payload in tree.items()) == list(
            range(200)
        )

    def test_reinsert_triggers_at_multiple_levels(self):
        # Enough inserts to overflow internal nodes too.
        tree = RTree(max_entries=3, min_entries=1, forced_reinsert=True)
        rng = random.Random(181)
        for i in range(300):
            tree.insert((rng.uniform(0, 100), rng.uniform(0, 100)), payload=i)
        validate_tree(tree)
        assert tree.height >= 4

    def test_queries_correct_with_reinsertion(self):
        tree = RTree(max_entries=4, forced_reinsert=True)
        rng = random.Random(182)
        for i in range(250):
            tree.insert((rng.uniform(0, 50), rng.uniform(0, 50)), payload=i)
        for q in [(0.0, 0.0), (25.0, 25.0)]:
            got, _ = nearest_dfs(tree, q, k=4)
            assert_same_distances(got, linear_scan(tree, q, k=4))

    def test_reinsert_vs_plain_same_contents(self):
        rng = random.Random(183)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(150)]
        plain = RTree(max_entries=4)
        reins = RTree(max_entries=4, forced_reinsert=True)
        for i, p in enumerate(points):
            plain.insert(p, payload=i)
            reins.insert(p, payload=i)
        assert sorted(p for _, p in plain.items()) == sorted(
            p for _, p in reins.items()
        )
        validate_tree(reins)


class TestCondenseInternalOrphans:
    def _build_tall_tree(self, n=300, seed=184):
        tree = RTree(max_entries=3, min_entries=1)
        rng = random.Random(seed)
        points = []
        for i in range(n):
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.insert(p, payload=i)
            points.append(p)
        return tree, points

    def test_mass_deletion_reinserts_internal_subtrees(self):
        # min_entries high relative to fanout makes internal underflow
        # (and thus orphaned *subtree* reinsertion) frequent.
        tree = RTree(max_entries=4, min_entries=2)
        rng = random.Random(185)
        points = []
        for i in range(400):
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.insert(p, payload=i)
            points.append(p)
        order = list(range(400))
        rng.shuffle(order)
        for count, index in enumerate(order[:350]):
            assert tree.delete(points[index], payload=index)
            if count % 50 == 0:
                validate_tree(tree)
        validate_tree(tree)
        assert len(tree) == 50

    def test_leaves_stay_level_after_orphan_reinsertion(self):
        tree, points = self._build_tall_tree()
        rng = random.Random(186)
        victims = rng.sample(range(len(points)), 200)
        for index in victims:
            assert tree.delete(points[index], payload=index)
        assert len(set(tree_depth_of_leaves(tree))) == 1
        validate_tree(tree)

    def test_root_shrink_cascade(self):
        # min_entries = 2 so underfull nodes actually dissolve and the
        # root can collapse as the tree empties.
        tree = RTree(max_entries=4, min_entries=2)
        rng = random.Random(187)
        points = []
        for i in range(200):
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.insert(p, payload=i)
            points.append(p)
        tall = tree.height
        for index in range(190):
            assert tree.delete(points[index], payload=index)
        validate_tree(tree)
        assert tree.height < tall


class TestChooseSubtree:
    def test_rstar_overlap_path_exercised(self):
        # With the R* strategy, level-1 nodes use overlap-aware choice.
        tree = RTree(max_entries=4, split="rstar")
        rng = random.Random(188)
        for i in range(200):
            tree.insert((rng.uniform(0, 100), rng.uniform(0, 100)), payload=i)
        validate_tree(tree)
        assert tree.height >= 3  # level-1 choice actually ran

    def test_rect_inserts_choose_minimal_enlargement(self):
        tree = RTree(max_entries=4)
        # Two well-separated groups; a new rect near group A must not
        # inflate group B's MBR.
        for i in range(6):
            tree.insert(Rect((i, 0.0), (i + 0.5, 0.5)), payload=f"a{i}")
        for i in range(6):
            tree.insert(
                Rect((i + 1000.0, 0.0), (i + 1000.5, 0.5)), payload=f"b{i}"
            )
        tree.insert(Rect((3.0, 0.1), (3.2, 0.2)), payload="near-a")
        validate_tree(tree)
        # No top-level MBR spans both groups.
        for entry in tree.root.entries:
            assert not (entry.rect.lo[0] < 500.0 < entry.rect.hi[0])


class TestDegenerateShapes:
    def test_collinear_points(self):
        tree = RTree(max_entries=4)
        for i in range(60):
            tree.insert((float(i), 0.0), payload=i)
        validate_tree(tree)
        got, _ = nearest_dfs(tree, (29.6, 0.0), k=2)
        assert sorted(n.payload for n in got) == [29, 30]

    def test_all_identical_points_deep_tree(self):
        tree = RTree(max_entries=3, min_entries=1)
        for i in range(100):
            tree.insert((7.0, 7.0), payload=i)
        validate_tree(tree)
        got, _ = nearest_dfs(tree, (7.0, 7.0), k=100)
        assert len(got) == 100

    def test_mixed_degenerate_and_extended(self):
        tree = RTree(max_entries=4)
        rng = random.Random(189)
        for i in range(50):
            if i % 2:
                tree.insert((rng.uniform(0, 10), rng.uniform(0, 10)), payload=i)
            else:
                lo = (rng.uniform(0, 10), rng.uniform(0, 10))
                tree.insert(
                    Rect(lo, (lo[0] + rng.uniform(0, 3), lo[1])), payload=i
                )
        validate_tree(tree)
        got, _ = nearest_dfs(tree, (5.0, 5.0), k=5)
        assert_same_distances(got, linear_scan(tree, (5.0, 5.0), k=5))
