"""Unit tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro import RTree, nearest
from repro.errors import EmptyIndexError, InvalidParameterError
from repro.rtree.svg import save_svg, tree_to_svg


class TestTreeToSvg:
    def test_empty_tree_rejected(self):
        with pytest.raises(EmptyIndexError):
            tree_to_svg(RTree())

    def test_non_2d_rejected(self):
        tree = RTree()
        tree.insert((1.0, 2.0, 3.0))
        with pytest.raises(InvalidParameterError):
            tree_to_svg(tree)

    def test_tiny_canvas_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            tree_to_svg(small_tree, size=10)

    def test_output_is_wellformed_xml(self, small_tree):
        svg = tree_to_svg(small_tree)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_rect_per_node_plus_objects(self, small_tree):
        svg = tree_to_svg(small_tree, show_objects=False)
        # Background rect + one outline per node.
        assert svg.count("<rect") == 1 + small_tree.node_count

    def test_point_objects_rendered_as_circles(self, small_tree):
        svg = tree_to_svg(small_tree, show_objects=True)
        assert svg.count("<circle") == len(small_tree)

    def test_query_and_neighbors_marked(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        svg = tree_to_svg(
            small_tree, query=(500.0, 500.0), neighbors=result
        )
        assert "<path" in svg  # the query cross
        assert svg.count('stroke="#d63031"') == 1 + len(result)

    def test_coordinates_within_canvas(self, small_tree):
        size = 320
        svg = tree_to_svg(small_tree, size=size)
        root = ET.fromstring(svg)
        ns = root.tag[: -len("svg")]
        for rect in root.iter(f"{ns}rect"):
            x = float(rect.get("x", "0"))
            y = float(rect.get("y", "0"))
            assert -1 <= x <= size + 1
            assert -1 <= y <= size + 1

    def test_save_svg(self, tmp_path, small_tree):
        target = tmp_path / "tree.svg"
        save_svg(small_tree, target, size=256)
        content = target.read_text()
        assert content.startswith("<svg")
        ET.fromstring(content)
