"""Tests for the offline scrub tool (library function and CLI)."""

import struct

import pytest

from repro import bulk_load
from repro.bench.cli import main as bench_main
from repro.datasets import uniform_points
from repro.errors import PageFileError
from repro.rtree.disk import DiskRTree, write_tree
from repro.rtree.scrub import ScrubReport, scrub, verify_checksums

PAGE_SIZE = 512


@pytest.fixture
def tree():
    points = uniform_points(250, seed=42)
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=8)


@pytest.fixture
def disk_path(tmp_path, tree):
    path = tmp_path / "scrub_me.rnn"
    write_tree(tree, path, page_size=PAGE_SIZE)
    return path


class TestCleanFile:
    def test_report_is_clean(self, disk_path, tree):
        report = scrub(disk_path, page_size=PAGE_SIZE)
        assert report.clean
        assert report.format_version == 2
        assert report.node_count == tree.node_count
        assert report.item_count == len(tree)
        assert report.checksum_failures == []
        assert report.structural_errors == []

    def test_render_mentions_verdict(self, disk_path):
        text = scrub(disk_path, page_size=PAGE_SIZE).render()
        assert "CLEAN" in text
        assert "RNN2" in text

    def test_verify_checksums_empty(self, disk_path):
        assert verify_checksums(disk_path, page_size=PAGE_SIZE) == []


class TestDamagedFile:
    def test_checksum_damage_reported_per_page(self, disk_path):
        data = bytearray(disk_path.read_bytes())
        for page_id in (2, 5):
            data[page_id * PAGE_SIZE + 17] ^= 0xFF
        disk_path.write_bytes(bytes(data))
        report = scrub(disk_path, page_size=PAGE_SIZE)
        assert not report.clean
        assert set(report.checksum_failures) == {2, 5}
        assert "DAMAGED" in report.render()

    def test_structural_damage_without_checksum_damage(self, disk_path):
        # Re-seal a page after corrupting it, so only the structure pass
        # can notice: point the root's first child ref out of range.
        from repro.rtree.disk import _CRC, _seal_page

        with DiskRTree(disk_path, page_size=PAGE_SIZE) as disk:
            root_page = disk.root.node_id
        data = bytearray(disk_path.read_bytes())
        start = root_page * PAGE_SIZE
        payload = bytearray(data[start : start + PAGE_SIZE - _CRC.size])
        struct.pack_into("<Q", payload, 4 + 32, 60_000)
        data[start : start + PAGE_SIZE] = _seal_page(
            bytes(payload), PAGE_SIZE
        )
        disk_path.write_bytes(bytes(data))

        report = scrub(disk_path, page_size=PAGE_SIZE)
        assert report.checksum_failures == []  # CRC is valid again
        assert not report.clean  # ...but the structure pass caught it

    def test_bad_magic_reported(self, tmp_path):
        junk = tmp_path / "junk.rnn"
        junk.write_bytes(b"\x99" * (PAGE_SIZE * 2))
        report = scrub(junk, page_size=PAGE_SIZE)
        assert not report.clean
        assert report.format_version == 0
        assert any(i.kind == "header" for i in report.issues)

    def test_wrong_page_size_reported_not_crashed(self, disk_path):
        report = scrub(disk_path, page_size=PAGE_SIZE * 2)
        assert not report.clean
        assert any(
            i.kind == "header" and "page_size" in i.detail
            for i in report.issues
        )

    def test_unopenable_file_raises(self, tmp_path):
        with pytest.raises(PageFileError):
            scrub(tmp_path / "missing.rnn", page_size=PAGE_SIZE)

    def test_report_is_a_plain_dataclass(self, disk_path):
        report = scrub(disk_path, page_size=PAGE_SIZE)
        assert isinstance(report, ScrubReport)
        assert report.page_size == PAGE_SIZE


class TestScrubCLI:
    def test_clean_file_exits_zero(self, disk_path, capsys):
        code = bench_main(
            ["scrub", str(disk_path), "--page-size", str(PAGE_SIZE)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CLEAN" in out

    def test_damaged_file_exits_one(self, disk_path, capsys):
        data = bytearray(disk_path.read_bytes())
        data[3 * PAGE_SIZE + 8] ^= 0x01
        disk_path.write_bytes(bytes(data))
        code = bench_main(
            ["scrub", str(disk_path), "--page-size", str(PAGE_SIZE)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DAMAGED" in out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        code = bench_main(["scrub", str(tmp_path / "nope.rnn")])
        out = capsys.readouterr().out
        assert code == 1
        assert "cannot read" in out
