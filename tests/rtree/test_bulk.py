"""Unit tests for STR bulk loading."""

import pytest

from repro import RTree, Rect, bulk_load, nearest, linear_scan, validate_tree
from repro.datasets import uniform_points
from repro.errors import InvalidParameterError
from tests.conftest import assert_same_distances


def items_for(n, seed=0):
    return [(p, i) for i, p in enumerate(uniform_points(n, seed=seed))]


class TestBulkLoad:
    def test_empty_input(self):
        tree = bulk_load([])
        assert len(tree) == 0
        validate_tree(tree)

    def test_single_item(self):
        tree = bulk_load([((1.0, 2.0), "only")])
        assert len(tree) == 1
        assert tree.height == 1
        validate_tree(tree)

    @pytest.mark.parametrize("n", [1, 7, 8, 9, 64, 65, 500, 2000])
    def test_sizes_around_boundaries(self, n):
        tree = bulk_load(items_for(n), max_entries=8)
        assert len(tree) == n
        validate_tree(tree)

    @pytest.mark.parametrize("fill", [0.6, 0.8, 1.0])
    def test_fill_factors(self, fill):
        tree = bulk_load(items_for(300), max_entries=10, fill_factor=fill)
        assert len(tree) == 300
        validate_tree(tree)

    def test_rejects_bad_fill_factor(self):
        with pytest.raises(InvalidParameterError):
            bulk_load(items_for(10), fill_factor=0.0)
        with pytest.raises(InvalidParameterError):
            bulk_load(items_for(10), fill_factor=1.5)

    def test_packed_tree_is_shorter_than_dynamic(self):
        items = items_for(2000)
        packed = bulk_load(items, max_entries=8)
        dynamic = RTree(max_entries=8)
        for rect, payload in items:
            dynamic.insert(rect, payload)
        assert packed.node_count < dynamic.node_count
        assert packed.height <= dynamic.height

    def test_queries_match_oracle(self):
        tree = bulk_load(items_for(800), max_entries=12)
        for q in [(0.0, 0.0), (512.0, 256.0), (999.0, 999.0)]:
            got = nearest(tree, q, k=5)
            assert_same_distances(got.neighbors, linear_scan(tree, q, k=5))

    def test_bulk_tree_supports_updates(self):
        tree = bulk_load(items_for(200), max_entries=8)
        tree.insert((5000.0, 5000.0), payload="new")
        assert len(tree) == 201
        validate_tree(tree)
        rect, payload = next(iter(items_for(200)))
        assert tree.delete(rect, payload=payload)
        validate_tree(tree)

    def test_rect_items(self):
        rects = [
            (Rect((float(i), 0.0), (float(i) + 2.0, 3.0)), i) for i in range(50)
        ]
        tree = bulk_load(rects, max_entries=6)
        assert len(tree) == 50
        validate_tree(tree)

    def test_duplicate_points(self):
        items = [((1.0, 1.0), i) for i in range(100)]
        tree = bulk_load(items, max_entries=8)
        assert len(tree) == 100
        validate_tree(tree)

    def test_three_dimensional(self):
        import random

        rng = random.Random(5)
        items = [
            ((rng.random(), rng.random(), rng.random()), i) for i in range(300)
        ]
        tree = bulk_load(items, max_entries=8)
        assert len(tree) == 300
        validate_tree(tree)

    def test_one_dimensional(self):
        items = [((float(i),), i) for i in range(100)]
        tree = bulk_load(items, max_entries=8)
        validate_tree(tree)
        got = nearest(tree, (42.4,), k=2)
        assert sorted(got.payloads()) == [42, 43]


class TestHilbertPacking:
    def test_rejects_unknown_method(self):
        with pytest.raises(InvalidParameterError):
            bulk_load(items_for(10), method="zorder")

    def test_rejects_non_2d(self):
        items = [((1.0, 2.0, 3.0), 0), ((4.0, 5.0, 6.0), 1)]
        with pytest.raises(InvalidParameterError):
            bulk_load(items, max_entries=2, method="hilbert")

    @pytest.mark.parametrize("n", [1, 9, 64, 500])
    def test_valid_trees_at_many_sizes(self, n):
        tree = bulk_load(items_for(n), max_entries=8, method="hilbert")
        assert len(tree) == n
        validate_tree(tree)

    def test_queries_match_oracle(self):
        tree = bulk_load(items_for(600), max_entries=12, method="hilbert")
        for q in [(0.0, 0.0), (512.0, 256.0)]:
            got = nearest(tree, q, k=5)
            assert_same_distances(got.neighbors, linear_scan(tree, q, k=5))

    def test_duplicate_centers(self):
        items = [((5.0, 5.0), i) for i in range(60)]
        tree = bulk_load(items, max_entries=8, method="hilbert")
        validate_tree(tree)

    def test_morton_valid_and_correct(self):
        tree = bulk_load(items_for(700), max_entries=10, method="morton")
        validate_tree(tree)
        for q in [(0.0, 0.0), (512.0, 256.0)]:
            got = nearest(tree, q, k=4)
            assert_same_distances(got.neighbors, linear_scan(tree, q, k=4))

    def test_morton_works_in_three_dimensions(self):
        import random

        rng = random.Random(17)
        items = [
            ((rng.random(), rng.random(), rng.random()), i)
            for i in range(400)
        ]
        tree = bulk_load(items, max_entries=8, method="morton")
        validate_tree(tree)
        got = nearest(tree, (0.5, 0.5, 0.5), k=3)
        assert_same_distances(got.neighbors, linear_scan(tree, (0.5, 0.5, 0.5), k=3))

    def test_query_quality_comparable_to_str(self):
        from repro.core.knn_dfs import nearest_dfs

        items = items_for(3000, seed=77)
        str_tree = bulk_load(items, max_entries=16, method="str")
        hil_tree = bulk_load(items, max_entries=16, method="hilbert")
        str_pages = hil_pages = 0
        for q in [(i * 97.0 % 1000, i * 53.0 % 1000) for i in range(30)]:
            _, s = nearest_dfs(str_tree, q, k=4)
            _, h = nearest_dfs(hil_tree, q, k=4)
            str_pages += s.nodes_accessed
            hil_pages += h.nodes_accessed
        # Hilbert packing is typically within ~2x of STR on point data.
        assert hil_pages < 2.5 * str_pages
