"""Property-based R-tree tests: random operation sequences keep every
invariant, and queries stay correct throughout."""

import random

from hypothesis import given, settings, strategies as st

from repro import RTree, Rect, bulk_load, linear_scan, validate_tree
from repro.core.knn_dfs import nearest_dfs
from tests.conftest import assert_same_distances

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(point2d, min_size=0, max_size=150),
    st.integers(2, 10),
    st.sampled_from(["linear", "quadratic", "rstar"]),
)
def test_insert_only_sequences_stay_valid(points, max_entries, split):
    tree = RTree(max_entries=max_entries, split=split)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    validate_tree(tree)
    assert len(tree) == len(points)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_mixed_insert_delete_sequences_stay_valid(data):
    max_entries = data.draw(st.integers(2, 8))
    ops = data.draw(st.lists(st.tuples(st.booleans(), point2d), max_size=120))
    tree = RTree(max_entries=max_entries)
    live = []
    for i, (is_insert, p) in enumerate(ops):
        if is_insert or not live:
            tree.insert(p, payload=i)
            live.append((p, i))
        else:
            index = data.draw(st.integers(0, len(live) - 1))
            victim_point, victim_payload = live.pop(index)
            assert tree.delete(victim_point, payload=victim_payload)
    validate_tree(tree)
    assert len(tree) == len(live)
    assert sorted(p for _, p in tree.items()) == sorted(i for _, i in live)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_window_query_matches_brute_force(data):
    points = data.draw(st.lists(point2d, min_size=0, max_size=100))
    tree = RTree(max_entries=data.draw(st.integers(2, 8)))
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    lo = data.draw(point2d)
    extent = data.draw(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    ))
    window = Rect(lo, (lo[0] + extent[0], lo[1] + extent[1]))
    got = sorted(p for _, p in tree.search(window))
    expected = sorted(
        i for i, p in enumerate(points) if window.contains_point(p)
    )
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_knn_still_correct_after_heavy_deletion(data):
    points = data.draw(st.lists(point2d, min_size=10, max_size=100))
    tree = RTree(max_entries=4)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    # Delete a random half.
    indices = list(range(len(points)))
    rng = random.Random(data.draw(st.integers(0, 2**16)))
    rng.shuffle(indices)
    for i in indices[: len(points) // 2]:
        assert tree.delete(points[i], payload=i)
    validate_tree(tree)
    query = data.draw(point2d)
    k = data.draw(st.integers(1, 5))
    got, _ = nearest_dfs(tree, query, k=k)
    assert_same_distances(got, linear_scan(tree, query, k=k), tolerance=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(point2d, min_size=1, max_size=200),
    st.integers(4, 16),
    st.floats(min_value=0.5, max_value=1.0),
)
def test_bulk_load_always_valid(points, max_entries, fill):
    tree = bulk_load(
        [(p, i) for i, p in enumerate(points)],
        max_entries=max_entries,
        fill_factor=fill,
    )
    validate_tree(tree)
    assert len(tree) == len(points)
    assert sorted(p for _, p in tree.items()) == list(range(len(points)))


@settings(max_examples=30, deadline=None)
@given(st.lists(point2d, min_size=1, max_size=120), st.integers(2, 8))
def test_bulk_and_dynamic_answer_identically(points, max_entries):
    items = [(p, i) for i, p in enumerate(points)]
    packed = bulk_load(items, max_entries=max_entries)
    dynamic = RTree(max_entries=max_entries)
    for p, i in items:
        dynamic.insert(p, payload=i)
    query = points[0]
    a, _ = nearest_dfs(packed, query, k=3)
    b, _ = nearest_dfs(dynamic, query, k=3)
    assert_same_distances(a, b, tolerance=1e-6)
