"""Unit tests for the invariant validator (it must actually catch breakage)."""

import pytest

from repro import RTree, Rect, validate_tree
from repro.errors import TreeInvariantError
from repro.rtree.entry import Entry
from tests.conftest import build_point_tree


@pytest.fixture
def valid_tree(small_points):
    return build_point_tree(small_points, max_entries=4)


class TestValidatorAcceptsGoodTrees:
    def test_empty(self):
        validate_tree(RTree())

    def test_built_tree(self, valid_tree):
        validate_tree(valid_tree)


class TestValidatorCatchesCorruption:
    def test_wrong_size(self, valid_tree):
        valid_tree._size += 1
        with pytest.raises(TreeInvariantError, match="size mismatch"):
            validate_tree(valid_tree)

    def test_loose_parent_rect(self, valid_tree):
        entry = valid_tree.root.entries[0]
        entry.rect = entry.rect.union(Rect((-1e6, -1e6), (-1e6, -1e6)))
        with pytest.raises(TreeInvariantError, match="tight MBR"):
            validate_tree(valid_tree)

    def test_underfull_node(self, valid_tree):
        leaf = next(iter(valid_tree.leaves()))
        # Drop entries below min without updating anything else.
        removed = len(leaf.entries) - 1
        leaf.entries = leaf.entries[:1]
        valid_tree._size -= removed
        with pytest.raises(TreeInvariantError):
            validate_tree(valid_tree)

    def test_overfull_node(self, valid_tree):
        leaf = next(iter(valid_tree.leaves()))
        parent_rect = leaf.mbr()
        for i in range(valid_tree.max_entries + 1):
            leaf.entries.append(
                Entry(Rect.from_point(parent_rect.lo), payload=f"extra{i}")
            )
        valid_tree._size += valid_tree.max_entries + 1
        with pytest.raises(TreeInvariantError):
            validate_tree(valid_tree)

    def test_leaf_entry_in_internal_node(self, valid_tree):
        root = valid_tree.root
        assert not root.is_leaf
        root.entries[0].child = None
        with pytest.raises(TreeInvariantError):
            validate_tree(valid_tree)

    def test_duplicate_node_ids(self, valid_tree):
        root = valid_tree.root
        root.entries[1].child.node_id = root.entries[0].child.node_id
        with pytest.raises(TreeInvariantError, match="duplicate node id"):
            validate_tree(valid_tree)

    def test_wrong_child_level(self, valid_tree):
        root = valid_tree.root
        root.entries[0].child.level = root.level
        with pytest.raises(TreeInvariantError, match="level"):
            validate_tree(valid_tree)

    def test_nonempty_root_leaf_for_empty_tree(self):
        tree = RTree()
        tree.root.entries.append(Entry(Rect((0, 0), (1, 1)), payload="ghost"))
        with pytest.raises(TreeInvariantError, match="bare leaf root"):
            validate_tree(tree)
