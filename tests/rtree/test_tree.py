"""Unit tests for RTree construction, insertion, deletion and queries."""

import pytest

from repro import RTree, Rect, validate_tree
from repro.errors import (
    DimensionMismatchError,
    EmptyIndexError,
    InvalidParameterError,
)
from repro.rtree.validate import tree_depth_of_leaves
from tests.conftest import build_point_tree


class TestConstruction:
    def test_defaults(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.dimension is None
        assert tree.node_count == 1

    def test_rejects_bad_max_entries(self):
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=1)

    def test_rejects_min_entries_above_half(self):
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=8, min_entries=5)

    def test_rejects_zero_min_entries(self):
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=8, min_entries=0)

    def test_default_min_entries_is_forty_percent(self):
        assert RTree(max_entries=10).min_entries == 4

    def test_bounds_of_empty_tree_raises(self):
        with pytest.raises(EmptyIndexError):
            RTree().bounds()

    @pytest.mark.parametrize("split", ["linear", "quadratic", "rstar"])
    def test_split_strategies_accepted(self, split):
        tree = RTree(split=split)
        assert tree.split_strategy.name == split


class TestInsert:
    def test_insert_points_and_rects(self):
        tree = RTree(max_entries=4)
        tree.insert((1.0, 2.0), payload="point")
        tree.insert(Rect((3, 3), (4, 4)), payload="rect")
        assert len(tree) == 2
        assert tree.dimension == 2
        assert tree.bounds() == Rect((1, 2), (4, 4))

    def test_dimension_fixed_by_first_insert(self):
        tree = RTree()
        tree.insert((1.0, 2.0, 3.0))
        with pytest.raises(DimensionMismatchError):
            tree.insert((1.0, 2.0))

    def test_root_split_grows_height(self):
        tree = RTree(max_entries=4)
        for i in range(5):
            tree.insert((float(i), 0.0), payload=i)
        assert tree.height == 2
        validate_tree(tree)

    def test_many_inserts_stay_valid(self, small_points):
        tree = build_point_tree(small_points, max_entries=4)
        validate_tree(tree)
        assert len(tree) == len(small_points)

    def test_leaves_all_at_same_depth(self, medium_points):
        tree = build_point_tree(medium_points)
        depths = set(tree_depth_of_leaves(tree))
        assert len(depths) == 1

    @pytest.mark.parametrize("split", ["linear", "quadratic", "rstar"])
    def test_all_split_strategies_build_valid_trees(self, small_points, split):
        tree = build_point_tree(small_points, max_entries=6, split=split)
        validate_tree(tree)

    def test_forced_reinsert_builds_valid_tree(self, small_points):
        tree = build_point_tree(
            small_points, max_entries=6, forced_reinsert=True
        )
        validate_tree(tree)
        assert len(tree) == len(small_points)

    def test_duplicate_rects_allowed(self):
        tree = RTree(max_entries=4)
        for i in range(25):
            tree.insert((7.0, 7.0), payload=i)
        assert len(tree) == 25
        validate_tree(tree)

    def test_items_roundtrip(self, small_points):
        tree = build_point_tree(small_points)
        payloads = sorted(payload for _, payload in tree.items())
        assert payloads == list(range(len(small_points)))


class TestDelete:
    def test_delete_existing(self):
        tree = RTree(max_entries=4)
        tree.insert((1.0, 1.0), payload="a")
        tree.insert((2.0, 2.0), payload="b")
        assert tree.delete((1.0, 1.0), payload="a")
        assert len(tree) == 1
        validate_tree(tree)

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert((1.0, 1.0), payload="a")
        assert not tree.delete((9.0, 9.0), payload="a")
        assert not tree.delete((1.0, 1.0), payload="other")
        assert len(tree) == 1

    def test_delete_all_resets_to_empty(self, small_points):
        tree = build_point_tree(small_points, max_entries=4)
        for i, p in enumerate(small_points):
            assert tree.delete(p, payload=i)
        assert len(tree) == 0
        assert tree.height == 1
        validate_tree(tree)

    def test_delete_half_keeps_other_half_searchable(self, small_points):
        tree = build_point_tree(small_points, max_entries=4)
        for i, p in enumerate(small_points[:50]):
            assert tree.delete(p, payload=i)
        validate_tree(tree)
        remaining = sorted(payload for _, payload in tree.items())
        assert remaining == list(range(50, 100))

    def test_delete_shrinks_root(self, small_points):
        # min_entries=2 makes CondenseTree dissolve underfull nodes, so the
        # root actually collapses as the tree empties.
        tree = build_point_tree(small_points, max_entries=4, min_entries=2)
        initial_height = tree.height
        for i, p in enumerate(small_points[:95]):
            tree.delete(p, payload=i)
        validate_tree(tree)
        assert tree.height < initial_height

    def test_delete_one_of_duplicates(self):
        tree = RTree(max_entries=4)
        for i in range(10):
            tree.insert((3.0, 3.0), payload=i)
        assert tree.delete((3.0, 3.0), payload=4)
        assert len(tree) == 9
        assert not any(p == 4 for _, p in tree.items())
        validate_tree(tree)

    def test_interleaved_insert_delete(self, rng):
        tree = RTree(max_entries=4)
        live = {}
        for step in range(400):
            if live and rng.random() < 0.4:
                key = rng.choice(list(live))
                assert tree.delete(live.pop(key), payload=key)
            else:
                p = (rng.uniform(0, 100), rng.uniform(0, 100))
                tree.insert(p, payload=step)
                live[step] = p
        validate_tree(tree)
        assert len(tree) == len(live)


class TestSearch:
    def test_window_query_exact(self):
        tree = RTree(max_entries=4)
        for x in range(10):
            for y in range(10):
                tree.insert((float(x), float(y)), payload=(x, y))
        hits = tree.search(Rect((2.0, 2.0), (4.0, 4.0)))
        assert sorted(p for _, p in hits) == [
            (x, y) for x in range(2, 5) for y in range(2, 5)
        ]

    def test_window_query_no_hits(self, small_tree):
        assert tree_search_empty(small_tree)

    def test_point_window(self, small_points):
        tree = build_point_tree(small_points)
        target = small_points[3]
        hits = tree.search(Rect.from_point(target))
        assert 3 in [p for _, p in hits]

    def test_count_in(self, small_tree):
        whole = small_tree.bounds()
        assert small_tree.count_in(whole) == len(small_tree)

    def test_search_on_empty_tree(self):
        assert RTree().search(Rect((0, 0), (1, 1))) == []

    def test_clear(self, small_tree):
        small_tree.clear()
        assert len(small_tree) == 0
        assert small_tree.node_count == 1
        validate_tree(small_tree)


def tree_search_empty(tree) -> bool:
    return tree.search(Rect((-500.0, -500.0), (-400.0, -400.0))) == []


class TestIntrospection:
    def test_nodes_iteration_counts(self, small_tree):
        assert sum(1 for _ in small_tree.nodes()) == small_tree.node_count

    def test_leaves_hold_all_items(self, small_tree):
        total = sum(leaf.entry_count() for leaf in small_tree.leaves())
        assert total == len(small_tree)

    def test_repr(self, small_tree):
        text = repr(small_tree)
        assert "size=100" in text
        assert "split='quadratic'" in text
