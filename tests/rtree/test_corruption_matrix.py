"""Corruption matrix: the fault-tolerance claims of the v2 disk format.

Three claims, each tested mechanically:

1. *Detection* — flipping any single byte of any non-header data page in
   an ``RNN2`` file is detected: the page's CRC32 fails, so the flip
   surfaces in the scrub report and raises
   :class:`~repro.errors.ChecksumError` on the query path.
2. *Atomicity* — killing ``write_tree`` at any injected fault point
   never leaves a loadable-but-wrong index at the destination: the old
   file (or its absence) survives byte-for-byte.
3. *Compatibility* — pre-existing ``RNN1`` files still open and return
   identical k-NN results.

The fault-injection seed is fixed (overridable via ``REPRO_FAULT_SEED``)
so CI runs are reproducible.
"""

import functools
import glob
import os
import warnings
from random import Random

import pytest

from repro import bulk_load, linear_scan_items, nearest
from repro.datasets import uniform_points
from repro.errors import (
    ChecksumError,
    CorruptionWarning,
    PageFileError,
    TornWriteError,
)
from repro.geometry.rect import Rect
from repro.rtree.disk import DiskRTree, write_tree
from repro.rtree.scrub import scrub, verify_checksums
from repro.storage.faults import FaultInjectingPageFile, FaultPlan
from repro.storage.pagefile import RetryPolicy

SEED = int(os.environ.get("REPRO_FAULT_SEED", "19950523"))
PAGE_SIZE = 256

QUERIES = [(0.0, 0.0), (500.0, 500.0), (873.0, 121.0)]


@pytest.fixture(scope="module")
def points():
    return uniform_points(150, seed=SEED % 10_000)


@pytest.fixture(scope="module")
def tree(points):
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=5)


@pytest.fixture
def disk_path(tmp_path, tree):
    path = tmp_path / "matrix.rnn"
    write_tree(tree, path, page_size=PAGE_SIZE)
    return path


def expected_knn(points, q, k=3):
    items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
    return [n.payload for n in linear_scan_items(items, q, k=k)]


class TestSingleByteFlipDetection:
    def test_every_flip_in_every_data_page_breaks_its_checksum(
        self, disk_path
    ):
        """Exhaustive: all ~N*page_size single-byte corruptions detected."""
        pristine = disk_path.read_bytes()
        undetected = []
        for offset in range(PAGE_SIZE, len(pristine)):  # skip header page
            page_id = offset // PAGE_SIZE
            data = bytearray(pristine)
            data[offset] ^= 0x5A
            disk_path.write_bytes(bytes(data))
            if verify_checksums(disk_path, page_size=PAGE_SIZE) != [page_id]:
                undetected.append(offset)
        disk_path.write_bytes(pristine)
        assert not undetected, (
            f"{len(undetected)} byte flips escaped checksum detection "
            f"at offsets {undetected[:10]}..."
        )

    def test_header_flips_detected_too(self, disk_path):
        pristine = disk_path.read_bytes()
        rng = Random(SEED)
        for _ in range(25):
            offset = rng.randrange(0, PAGE_SIZE)
            data = bytearray(pristine)
            data[offset] ^= 1 << rng.randrange(8)
            disk_path.write_bytes(bytes(data))
            # Either the magic/page-size sanity checks or the header CRC
            # must refuse the file; it can never open cleanly.
            with pytest.raises(PageFileError):
                DiskRTree(disk_path, page_size=PAGE_SIZE)
        disk_path.write_bytes(pristine)

    def test_sampled_flips_raise_or_surface_in_scrub(self, disk_path, points):
        """Through the full stack: query raises ChecksumError, scrub reports."""
        pristine = disk_path.read_bytes()
        rng = Random(SEED + 1)
        for _ in range(30):
            offset = rng.randrange(PAGE_SIZE, len(pristine))
            page_id = offset // PAGE_SIZE
            data = bytearray(pristine)
            data[offset] ^= 1 << rng.randrange(8)
            disk_path.write_bytes(bytes(data))

            report = scrub(disk_path, page_size=PAGE_SIZE)
            assert page_id in report.checksum_failures
            assert not report.clean

            with DiskRTree(
                disk_path, page_size=PAGE_SIZE, cache_nodes=1
            ) as disk:
                try:
                    for q in QUERIES:
                        nearest(disk, q, k=3)
                    touched = False  # query never visited the bad page
                except ChecksumError as exc:
                    touched = True
                    assert exc.page_id == page_id
                if not touched:
                    # Provably harmless for queries that avoid the page —
                    # but a full walk must still trip over it.
                    with pytest.raises(ChecksumError):
                        list(disk.items())
        disk_path.write_bytes(pristine)


class TestAtomicWrites:
    def test_kill_at_every_write_point_preserves_old_index(
        self, tmp_path, tree, points
    ):
        path = tmp_path / "atomic.rnn"
        write_tree(tree, path, page_size=PAGE_SIZE)
        pristine = path.read_bytes()
        baseline = [expected_knn(points, q) for q in QUERIES]

        new_points = uniform_points(150, seed=SEED % 10_000 + 1)
        new_tree = bulk_load(
            [(p, i) for i, p in enumerate(new_points)], max_entries=5
        )

        kill_points = 0
        for n in range(500):
            factory = functools.partial(
                FaultInjectingPageFile,
                plan=FaultPlan(fail_after_writes=n, seed=SEED + n),
            )
            try:
                write_tree(
                    new_tree, path, page_size=PAGE_SIZE,
                    page_file_factory=factory,
                )
                break  # n exceeded the total writes: success
            except TornWriteError:
                kill_points += 1
                assert path.read_bytes() == pristine, (
                    f"kill point {n} modified the destination file"
                )
                with DiskRTree(path, page_size=PAGE_SIZE) as disk:
                    for q, expect in zip(QUERIES, baseline):
                        assert nearest(disk, q, k=3).payloads() == expect
        else:
            pytest.fail("write_tree never succeeded")
        assert kill_points > 10  # one per node page + header
        assert not glob.glob(str(path) + ".tmp-*"), "temp file leaked"
        # The final, un-killed write really did replace the index.
        with DiskRTree(path, page_size=PAGE_SIZE) as disk:
            q = QUERIES[1]
            assert nearest(disk, q, k=3).payloads() == expected_knn(
                new_points, q
            )

    def test_kill_before_any_write_leaves_no_file(self, tmp_path, tree):
        path = tmp_path / "never_existed.rnn"
        factory = functools.partial(
            FaultInjectingPageFile,
            plan=FaultPlan(fail_after_writes=0, seed=SEED),
        )
        with pytest.raises(TornWriteError):
            write_tree(tree, path, page_size=PAGE_SIZE, page_file_factory=factory)
        assert not path.exists()
        assert not list(tmp_path.iterdir()), "temp file leaked"


class TestV1Compatibility:
    def test_v1_files_open_and_answer_identically(
        self, tmp_path, tree, points
    ):
        v1 = tmp_path / "legacy.rnn"
        v2 = tmp_path / "modern.rnn"
        write_tree(tree, v1, page_size=PAGE_SIZE, format_version=1)
        write_tree(tree, v2, page_size=PAGE_SIZE)
        with DiskRTree(v1, page_size=PAGE_SIZE) as old, DiskRTree(
            v2, page_size=PAGE_SIZE
        ) as new:
            assert old.format_version == 1
            assert new.format_version == 2
            assert len(old) == len(new) == len(points)
            for q in QUERIES:
                got_old = nearest(old, q, k=5).payloads()
                got_new = nearest(new, q, k=5).payloads()
                assert got_old == got_new == expected_knn(points, q, k=5)

    def test_v1_magic_is_bitwise_legacy(self, tmp_path, tree):
        v1 = tmp_path / "legacy.rnn"
        write_tree(tree, v1, page_size=PAGE_SIZE, format_version=1)
        assert v1.read_bytes()[:4] == b"RNN1"

    def test_scrub_flags_v1_as_checksumless_but_clean(self, tmp_path, tree):
        v1 = tmp_path / "legacy.rnn"
        write_tree(tree, v1, page_size=PAGE_SIZE, format_version=1)
        report = scrub(v1, page_size=PAGE_SIZE)
        assert report.clean
        assert report.format_version == 1
        assert "n/a" in report.render()


class TestGracefulDegradation:
    def _corrupt_root(self, disk_path):
        with DiskRTree(disk_path, page_size=PAGE_SIZE) as disk:
            root_page = disk.root.node_id
        data = bytearray(disk_path.read_bytes())
        data[root_page * PAGE_SIZE + 9] ^= 0x10
        disk_path.write_bytes(bytes(data))
        return root_page

    def test_skip_mode_warns_and_flags_stats(self, disk_path):
        root_page = self._corrupt_root(disk_path)
        with DiskRTree(
            disk_path, page_size=PAGE_SIZE, on_corrupt="skip"
        ) as disk:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = nearest(disk, (500.0, 500.0), k=3)
            assert result.stats.degraded
            assert result.stats.pages_skipped_corrupt >= 1
            assert len(result) == 0  # root gone: nothing reachable
            assert disk.degraded
            assert root_page in disk.corrupt_pages
            assert any(
                issubclass(w.category, CorruptionWarning) for w in caught
            )

    def test_skip_mode_warns_once_per_page(self, disk_path):
        self._corrupt_root(disk_path)
        with DiskRTree(
            disk_path, page_size=PAGE_SIZE, on_corrupt="skip"
        ) as disk:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                nearest(disk, (500.0, 500.0), k=3)
                nearest(disk, (100.0, 100.0), k=3)
            corruption = [
                w for w in caught
                if issubclass(w.category, CorruptionWarning)
            ]
            assert len(corruption) == 1
            # ...but every query's stats still reflect the skip.
            assert disk.pages_skipped == 2

    def test_raise_mode_is_default(self, disk_path):
        self._corrupt_root(disk_path)
        with DiskRTree(disk_path, page_size=PAGE_SIZE) as disk:
            with pytest.raises(ChecksumError):
                nearest(disk, (500.0, 500.0), k=3)

    def test_clean_file_stats_not_degraded(self, disk_path):
        with DiskRTree(
            disk_path, page_size=PAGE_SIZE, on_corrupt="skip"
        ) as disk:
            result = nearest(disk, (500.0, 500.0), k=3)
            assert not result.stats.degraded
            assert result.stats.pages_skipped_corrupt == 0
            assert not disk.degraded

    def test_invalid_mode_rejected(self, disk_path):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            DiskRTree(disk_path, page_size=PAGE_SIZE, on_corrupt="ignore")


class TestTransientErrorRetry:
    def test_bounded_transients_are_absorbed(self, disk_path, points):
        plan = FaultPlan(
            transient_error_prob=0.3, transient_error_limit=5, seed=SEED
        )
        pages = FaultInjectingPageFile(
            disk_path, page_size=PAGE_SIZE, plan=plan
        )
        retry = RetryPolicy(attempts=8, sleep=lambda _s: None)
        with DiskRTree(page_file=pages, retry=retry, cache_nodes=1) as disk:
            for q in QUERIES:
                assert nearest(disk, q, k=3).payloads() == expected_knn(
                    points, q
                )
        transients = pages.faults_injected["transient"]
        assert 1 <= transients <= 5
        assert retry.retries_performed == transients

    def test_unbounded_transients_exhaust_the_policy(self, disk_path):
        plan = FaultPlan(transient_error_prob=1.0, seed=SEED)
        pages = FaultInjectingPageFile(
            disk_path, page_size=PAGE_SIZE, plan=plan
        )
        from repro.errors import TransientIOError

        with pytest.raises(TransientIOError):
            DiskRTree(
                page_file=pages,
                retry=RetryPolicy(attempts=3, sleep=lambda _s: None),
            )
        pages.close()
