"""Public-API integrity: __all__ must be importable, complete and stable."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.rtree",
    "repro.storage",
    "repro.baselines",
    "repro.datasets",
    "repro.bench",
    "repro.geometry",
    "repro.service",
    "repro.packed",
    "repro.obs",
]


class TestTopLevelAll:
    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_present(self):
        assert repro.__version__


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__) > 40


def test_key_workflows_importable_from_top_level():
    # The names the README and examples lean on must stay top-level.
    for name in (
        "RTree", "Rect", "Segment", "nearest", "nearest_batch",
        "bulk_load", "validate_tree", "linear_scan", "KdTree",
        "GridIndex", "QuadTree", "LruBufferPool", "PageModel",
        "DiskRTree", "write_tree", "within_distance",
        "farthest_best_first", "aggregate_nearest", "intersection_join",
        "knn_join", "nearest_dfs_lp", "measure_quality",
        "PruningConfig", "mindist", "minmaxdist", "maxdist",
        "PackedTree", "packed_nearest_dfs", "packed_nearest_best_first",
    ):
        assert hasattr(repro, name), f"repro.{name} missing"


def test_public_functions_have_docstrings():
    import inspect

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"missing docstrings: {undocumented}"
