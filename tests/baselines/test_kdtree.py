"""Unit tests for the kd-tree baseline (FBF search)."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import Rect, linear_scan_items
from repro.baselines.kdtree import KdTree
from repro.datasets import uniform_points
from repro.errors import DimensionMismatchError, InvalidParameterError
from tests.conftest import assert_same_distances

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


def oracle(points, query, k):
    items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
    return linear_scan_items(items, query, k=k)


class TestConstruction:
    def test_empty(self):
        tree = KdTree([])
        assert len(tree) == 0
        assert tree.dimension is None
        neighbors, stats = tree.nearest((0.0, 0.0))
        assert neighbors == []
        assert stats.nodes_visited == 0

    def test_rejects_bad_bucket_size(self):
        with pytest.raises(InvalidParameterError):
            KdTree([((0.0, 0.0), 0)], bucket_size=0)

    def test_rejects_mixed_dimensions(self):
        with pytest.raises(DimensionMismatchError):
            KdTree([((0.0, 0.0), 0), ((1.0,), 1)])

    def test_node_count_grows_with_size(self):
        small = KdTree([(p, i) for i, p in enumerate(uniform_points(20, 1))])
        big = KdTree([(p, i) for i, p in enumerate(uniform_points(500, 1))])
        assert big.node_count > small.node_count


class TestQueries:
    def test_single_point(self):
        tree = KdTree([((3.0, 4.0), "only")])
        neighbors, _ = tree.nearest((0.0, 0.0))
        assert neighbors[0].payload == "only"
        assert neighbors[0].distance == 5.0

    def test_matches_oracle_on_uniform(self):
        points = uniform_points(400, seed=9)
        tree = KdTree([(p, i) for i, p in enumerate(points)])
        for q in [(0.0, 0.0), (512.0, 512.0), (999.0, 1.0)]:
            for k in (1, 5, 13):
                got, _ = tree.nearest(q, k=k)
                assert_same_distances(got, oracle(points, q, k))

    def test_dimension_mismatch(self):
        tree = KdTree([((0.0, 0.0), 0)])
        with pytest.raises(DimensionMismatchError):
            tree.nearest((0.0, 0.0, 0.0))

    def test_invalid_k(self):
        tree = KdTree([((0.0, 0.0), 0)])
        with pytest.raises(InvalidParameterError):
            tree.nearest((0.0, 0.0), k=0)

    def test_duplicate_points(self):
        tree = KdTree([((1.0, 1.0), i) for i in range(50)])
        neighbors, _ = tree.nearest((1.0, 1.0), k=10)
        assert len(neighbors) == 10
        assert all(n.distance == 0.0 for n in neighbors)

    def test_visits_fewer_nodes_than_total(self):
        points = uniform_points(2000, seed=10)
        tree = KdTree([(p, i) for i, p in enumerate(points)])
        _, stats = tree.nearest((500.0, 500.0), k=1)
        assert stats.nodes_visited < tree.node_count / 4

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(point2d, min_size=1, max_size=150),
        point2d,
        st.integers(1, 10),
        st.integers(1, 16),
    )
    def test_property_matches_oracle(self, points, query, k, bucket_size):
        tree = KdTree(
            [(p, i) for i, p in enumerate(points)], bucket_size=bucket_size
        )
        got, _ = tree.nearest(query, k=k)
        assert_same_distances(got, oracle(points, query, k), tolerance=1e-6)
