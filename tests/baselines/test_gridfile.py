"""Unit and property tests for the fixed-grid baseline."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import Rect, linear_scan_items
from repro.baselines.gridfile import GridIndex
from repro.datasets import gaussian_clusters, uniform_points
from repro.errors import DimensionMismatchError, InvalidParameterError
from tests.conftest import assert_same_distances

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


def oracle(points, query, k):
    items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
    return linear_scan_items(items, query, k=k)


class TestConstruction:
    def test_empty(self):
        grid = GridIndex([])
        assert len(grid) == 0
        neighbors, stats = grid.nearest((0.0, 0.0))
        assert neighbors == []
        assert stats.points_examined == 0

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionMismatchError):
            GridIndex([((1.0, 2.0, 3.0), 0)])

    def test_rejects_bad_cells(self):
        with pytest.raises(InvalidParameterError):
            GridIndex([((0.0, 0.0), 0)], cells=0)

    def test_default_resolution_scales_with_n(self):
        small = GridIndex([(p, i) for i, p in enumerate(uniform_points(16, 1))])
        big = GridIndex([(p, i) for i, p in enumerate(uniform_points(1024, 1))])
        assert big.cells > small.cells

    def test_identical_points_share_a_bucket(self):
        grid = GridIndex([((5.0, 5.0), i) for i in range(20)])
        assert grid.bucket_count == 1


class TestQueries:
    def test_single_point(self):
        grid = GridIndex([((3.0, 4.0), "only")])
        neighbors, _ = grid.nearest((0.0, 0.0))
        assert neighbors[0].payload == "only"
        assert neighbors[0].distance == 5.0

    @pytest.mark.parametrize("k", [1, 4, 11])
    def test_matches_oracle_uniform(self, k):
        points = uniform_points(600, seed=81)
        grid = GridIndex([(p, i) for i, p in enumerate(points)])
        for q in [(0.0, 0.0), (512.0, 512.0), (1200.0, -50.0)]:
            got, _ = grid.nearest(q, k=k)
            assert_same_distances(got, oracle(points, q, k))

    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_oracle_clustered(self, k):
        points = gaussian_clusters(600, seed=82)
        grid = GridIndex([(p, i) for i, p in enumerate(points)])
        for q in [(100.0, 900.0), (500.0, 500.0)]:
            got, _ = grid.nearest(q, k=k)
            assert_same_distances(got, oracle(points, q, k))

    def test_query_outside_bounds(self):
        points = uniform_points(200, seed=83)
        grid = GridIndex([(p, i) for i, p in enumerate(points)])
        got, _ = grid.nearest((-5000.0, -5000.0), k=3)
        assert_same_distances(got, oracle(points, (-5000.0, -5000.0), 3))

    def test_invalid_k(self):
        grid = GridIndex([((0.0, 0.0), 0)])
        with pytest.raises(InvalidParameterError):
            grid.nearest((0.0, 0.0), k=0)

    def test_examines_fraction_of_points_on_uniform(self):
        points = uniform_points(4000, seed=84)
        grid = GridIndex([(p, i) for i, p in enumerate(points)])
        _, stats = grid.nearest((500.0, 500.0), k=1)
        assert stats.points_examined < len(points) / 10

    def test_skew_degrades_grid_but_not_correctness(self):
        # Grid resolution is global: a dense cluster plus one remote
        # outlier stretches the bounds so the whole cluster collapses into
        # a single cell.  The query must stay exact, but the grid is forced
        # to examine nearly every clustered point — the classic fixed-grid
        # skew failure the R-tree avoids.
        points = gaussian_clusters(1999, seed=85, clusters=1, spread=3.0)
        points.append((1e6, 1e6))
        grid = GridIndex([(p, i) for i, p in enumerate(points)])
        q = points[0]
        got, stats = grid.nearest(q, k=5)
        assert_same_distances(got, oracle(points, q, 5))
        assert stats.points_examined > 1000  # the skew penalty is visible


@settings(max_examples=50, deadline=None)
@given(
    st.lists(point2d, min_size=1, max_size=120),
    point2d,
    st.integers(1, 8),
    st.integers(1, 20),
)
def test_property_matches_oracle(points, query, k, cells):
    grid = GridIndex([(p, i) for i, p in enumerate(points)], cells=cells)
    got, _ = grid.nearest(query, k=k)
    assert_same_distances(got, oracle(points, query, k), tolerance=1e-6)
