"""Unit and property tests for the quadtree baseline."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import Rect, linear_scan_items
from repro.baselines.quadtree import QuadTree
from repro.datasets import gaussian_clusters, uniform_points
from repro.errors import DimensionMismatchError, InvalidParameterError
from tests.conftest import assert_same_distances

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


def oracle(points, query, k):
    items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
    return linear_scan_items(items, query, k=k)


class TestConstruction:
    def test_empty(self):
        tree = QuadTree([])
        assert len(tree) == 0
        neighbors, stats = tree.nearest((0.0, 0.0))
        assert neighbors == []
        assert stats.nodes_visited == 0

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionMismatchError):
            QuadTree([((1.0, 2.0, 3.0), 0)])

    def test_rejects_bad_capacity(self):
        with pytest.raises(InvalidParameterError):
            QuadTree([((0.0, 0.0), 0)], leaf_capacity=0)

    def test_duplicate_points_bounded_depth(self):
        # 100 identical points cannot be separated by splitting; the depth
        # cap must stop the recursion.
        tree = QuadTree([((5.0, 5.0), i) for i in range(100)], leaf_capacity=2)
        neighbors, _ = tree.nearest((5.0, 5.0), k=10)
        assert len(neighbors) == 10
        assert all(n.distance == 0.0 for n in neighbors)

    def test_node_count_grows_under_clustering(self):
        uniform = QuadTree(
            [(p, i) for i, p in enumerate(uniform_points(800, seed=141))]
        )
        clustered = QuadTree(
            [(p, i) for i, p in enumerate(
                gaussian_clusters(800, seed=141, clusters=2, spread=2.0)
            )]
        )
        # Space-splitting digs deeper under dense clusters.
        assert clustered.node_count != uniform.node_count


class TestQueries:
    def test_single_point(self):
        tree = QuadTree([((3.0, 4.0), "only")])
        neighbors, _ = tree.nearest((0.0, 0.0))
        assert neighbors[0].payload == "only"
        assert neighbors[0].distance == 5.0

    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_matches_oracle(self, k):
        points = uniform_points(600, seed=142)
        tree = QuadTree([(p, i) for i, p in enumerate(points)])
        for q in [(0.0, 0.0), (512.0, 512.0), (-100.0, 1200.0)]:
            got, _ = tree.nearest(q, k=k)
            assert_same_distances(got, oracle(points, q, k))

    def test_clustered_matches_oracle(self):
        points = gaussian_clusters(700, seed=143)
        tree = QuadTree([(p, i) for i, p in enumerate(points)])
        got, _ = tree.nearest((500.0, 500.0), k=7)
        assert_same_distances(got, oracle(points, (500.0, 500.0), 7))

    def test_invalid_k(self):
        tree = QuadTree([((0.0, 0.0), 0)])
        with pytest.raises(InvalidParameterError):
            tree.nearest((0.0, 0.0), k=0)

    def test_visits_few_nodes(self):
        points = uniform_points(4000, seed=144)
        tree = QuadTree([(p, i) for i, p in enumerate(points)])
        _, stats = tree.nearest((500.0, 500.0), k=1)
        assert stats.nodes_visited < tree.node_count / 5


@settings(max_examples=50, deadline=None)
@given(
    st.lists(point2d, min_size=1, max_size=120),
    point2d,
    st.integers(1, 8),
    st.integers(1, 12),
)
def test_property_matches_oracle(points, query, k, capacity):
    tree = QuadTree(
        [(p, i) for i, p in enumerate(points)], leaf_capacity=capacity
    )
    got, _ = tree.nearest(query, k=k)
    assert_same_distances(got, oracle(points, query, k), tolerance=1e-6)
