"""Unit tests for the linear-scan oracle."""

import pytest

from repro import RTree, Rect, linear_scan, linear_scan_items
from repro.errors import InvalidParameterError


class TestLinearScanItems:
    def test_empty(self):
        assert linear_scan_items([], (0.0, 0.0), k=3) == []

    def test_orders_by_distance(self):
        items = [
            (Rect.from_point((10.0, 0.0)), "far"),
            (Rect.from_point((1.0, 0.0)), "near"),
            (Rect.from_point((5.0, 0.0)), "mid"),
        ]
        got = linear_scan_items(items, (0.0, 0.0), k=3)
        assert [n.payload for n in got] == ["near", "mid", "far"]
        assert [n.distance for n in got] == [1.0, 5.0, 10.0]

    def test_k_caps_results(self):
        items = [(Rect.from_point((float(i), 0.0)), i) for i in range(10)]
        assert len(linear_scan_items(items, (0.0, 0.0), k=4)) == 4

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            linear_scan_items([], (0.0, 0.0), k=0)

    def test_object_distance_hook(self):
        from repro.geometry.segment import Segment

        seg = Segment((0.0, 10.0), (10.0, 10.0))
        items = [(seg.mbr(), seg), (Rect.from_point((0.0, 3.0)), "pt")]

        def hook(q, payload, rect):
            if isinstance(payload, Segment):
                return payload.distance_squared_to(q)
            from repro.core.metrics import mindist_squared

            return mindist_squared(q, rect)

        got = linear_scan_items(items, (5.0, 9.0), k=2, object_distance_sq=hook)
        assert got[0].payload is seg
        assert got[0].distance == pytest.approx(1.0)


class TestLinearScanTree:
    def test_scans_whole_tree(self, small_tree):
        got = linear_scan(small_tree, (500.0, 500.0), k=len(small_tree))
        assert len(got) == len(small_tree)
        distances = [n.distance for n in got]
        assert distances == sorted(distances)

    def test_empty_tree(self):
        assert linear_scan(RTree(), (0.0, 0.0)) == []
