"""Unit tests for access trackers."""

from repro.storage.tracker import CountingTracker, NullTracker


class TestNullTracker:
    def test_access_is_noop(self):
        tracker = NullTracker()
        tracker.access(1, is_leaf=True)
        tracker.reset()  # must not raise


class TestCountingTracker:
    def test_counts_by_kind(self):
        tracker = CountingTracker()
        tracker.access(1, is_leaf=True)
        tracker.access(2, is_leaf=False)
        tracker.access(1, is_leaf=True)
        stats = tracker.stats
        assert stats.total == 3
        assert stats.leaf == 2
        assert stats.internal == 1

    def test_unique_pages_and_per_page(self):
        tracker = CountingTracker()
        for page in [5, 5, 7, 5, 9]:
            tracker.access(page, is_leaf=False)
        assert tracker.stats.unique_pages == 3
        assert tracker.stats.per_page == {5: 3, 7: 1, 9: 1}

    def test_reset(self):
        tracker = CountingTracker()
        tracker.access(1, is_leaf=True)
        tracker.reset()
        assert tracker.stats.total == 0
        assert tracker.stats.per_page == {}

    def test_snapshot_is_deep(self):
        tracker = CountingTracker()
        tracker.access(1, is_leaf=True)
        snap = tracker.stats.snapshot()
        tracker.access(2, is_leaf=True)
        assert snap.total == 1
        assert 2 not in snap.per_page
