"""Unit tests for the byte-level page model."""

import pytest

from repro.errors import InvalidParameterError
from repro.storage.pager import PageModel


class TestPageModel:
    def test_paper_configuration(self):
        model = PageModel(page_size=1024, dimension=2)
        # Entry: 4 coords * 8 bytes + 4-byte pointer = 36 bytes; usable
        # 1008 bytes -> fanout 28.
        assert model.entry_bytes() == 36
        assert model.max_entries() == 28

    def test_larger_pages_hold_more(self):
        small = PageModel(page_size=1024, dimension=2)
        large = PageModel(page_size=4096, dimension=2)
        assert large.max_entries() > small.max_entries()

    def test_higher_dimensions_hold_fewer(self):
        d2 = PageModel(page_size=1024, dimension=2)
        d3 = PageModel(page_size=1024, dimension=3)
        assert d3.max_entries() < d2.max_entries()

    def test_min_entries_default_forty_percent(self):
        model = PageModel(page_size=1024, dimension=2)
        assert model.min_entries() == 11  # int(28 * 0.4)

    def test_min_entries_clamped_to_half(self):
        model = PageModel(page_size=1024, dimension=2)
        assert model.min_entries(0.5) <= model.max_entries() // 2

    def test_min_entries_rejects_bad_fill(self):
        model = PageModel()
        with pytest.raises(InvalidParameterError):
            model.min_entries(0.0)
        with pytest.raises(InvalidParameterError):
            model.min_entries(0.9)

    def test_rejects_tiny_page(self):
        with pytest.raises(InvalidParameterError):
            PageModel(page_size=32, dimension=4)

    def test_rejects_bad_dimension(self):
        with pytest.raises(InvalidParameterError):
            PageModel(dimension=0)

    def test_pages_for(self):
        model = PageModel(page_size=1024, dimension=2)  # 28 per page
        assert model.pages_for(0) == 0
        assert model.pages_for(1) == 1
        assert model.pages_for(28) == 1
        assert model.pages_for(29) == 2
        with pytest.raises(InvalidParameterError):
            model.pages_for(-1)
