"""Unit tests for the disk cost model."""

import pytest

from repro.errors import InvalidParameterError
from repro.storage.cost import DiskCostModel


class TestDiskCostModel:
    def test_random_read_cost(self):
        model = DiskCostModel(seek_ms=10.0, transfer_ms_per_kib=0.5, page_kib=2.0)
        assert model.random_read_ms(3) == pytest.approx(3 * (10.0 + 1.0))

    def test_sequential_read_single_seek(self):
        model = DiskCostModel(seek_ms=10.0, transfer_ms_per_kib=0.5, page_kib=2.0)
        assert model.sequential_read_ms(100) == pytest.approx(10.0 + 100.0)
        assert model.sequential_read_ms(0) == 0.0

    def test_random_much_worse_than_sequential_on_disk(self):
        model = DiskCostModel.disk_1995()
        assert model.random_read_ms(1000) > 10 * model.sequential_read_ms(1000)

    def test_nvme_narrows_the_gap(self):
        disk = DiskCostModel.disk_1995()
        nvme = DiskCostModel.nvme_modern()
        assert nvme.scan_break_even_pages() != disk.scan_break_even_pages()
        assert nvme.random_read_ms(100) < disk.random_read_ms(100)

    def test_break_even_matches_definition(self):
        model = DiskCostModel(seek_ms=8.0, transfer_ms_per_kib=0.1, page_kib=1.0)
        # One random read costs as much as streaming this many pages.
        assert model.scan_break_even_pages() == pytest.approx((8.0 + 0.1) / 0.1)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DiskCostModel(seek_ms=-1.0)
        with pytest.raises(InvalidParameterError):
            DiskCostModel(page_kib=0.0)
        with pytest.raises(InvalidParameterError):
            DiskCostModel().random_read_ms(-1)
        with pytest.raises(InvalidParameterError):
            DiskCostModel().sequential_read_ms(-1)
