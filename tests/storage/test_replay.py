"""Unit and property tests for trace replay and Belady's optimal policy."""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.storage.replay import TraceRecorder, replay


class TestTraceRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        for page in [3, 1, 3, 2]:
            recorder.access(page, is_leaf=False)
        assert recorder.trace == [3, 1, 3, 2]
        recorder.reset()
        assert recorder.trace == []

    def test_captures_real_query_traces(self):
        from repro import bulk_load, nearest
        from repro.datasets import uniform_points

        points = uniform_points(500, seed=121)
        tree = bulk_load([(p, i) for i, p in enumerate(points)])
        recorder = TraceRecorder()
        result = nearest(tree, (500.0, 500.0), k=3, tracker=recorder)
        assert len(recorder.trace) == result.stats.nodes_accessed
        assert recorder.trace[0] == tree.root.node_id


class TestReplayBasics:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            replay([1], -1, "lru")
        with pytest.raises(InvalidParameterError):
            replay([1], 2, "clock")

    def test_zero_capacity_all_misses(self):
        result = replay([1, 1, 1], 0, "lru")
        assert result.misses == 3
        assert result.hit_ratio == 0.0

    def test_empty_trace(self):
        result = replay([], 4, "optimal")
        assert result.accesses == 0
        assert result.hit_ratio == 0.0

    def test_repeated_single_page(self):
        for policy in ("lru", "fifo", "optimal"):
            result = replay([7] * 10, 1, policy)
            assert result.misses == 1
            assert result.hits == 9

    def test_lru_beats_fifo_on_looping_hot_page(self):
        trace = []
        for i in range(40):
            trace += [100, 200 + i]
        lru = replay(trace, 3, "lru")
        fifo = replay(trace, 3, "fifo")
        assert lru.hits > fifo.hits

    def test_known_belady_example(self):
        # Classic textbook trace, capacity 3:
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        optimal = replay(trace, 3, "optimal")
        assert optimal.misses == 7  # the known OPT answer
        lru = replay(trace, 3, "lru")
        assert lru.misses == 10  # the known LRU answer

    def test_hit_and_miss_ratios_sum_to_one(self):
        result = replay([1, 2, 1, 3, 1], 2, "lru")
        assert result.hit_ratio + result.miss_ratio == pytest.approx(1.0)
        empty = replay([], 2, "lru")
        assert empty.hit_ratio == 0.0 and empty.miss_ratio == 0.0

    def test_capacity_covering_everything(self):
        trace = [1, 2, 3, 1, 2, 3]
        for policy in ("lru", "fifo", "optimal"):
            result = replay(trace, 10, policy)
            assert result.misses == 3  # only cold misses


class TestOptimality:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 12), min_size=0, max_size=200),
        st.integers(1, 6),
    )
    def test_belady_never_worse_than_lru_or_fifo(self, trace, capacity):
        optimal = replay(trace, capacity, "optimal").misses
        assert optimal <= replay(trace, capacity, "lru").misses
        assert optimal <= replay(trace, capacity, "fifo").misses

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 12), min_size=0, max_size=150),
        st.integers(1, 5),
    )
    def test_more_capacity_never_hurts_optimal(self, trace, capacity):
        smaller = replay(trace, capacity, "optimal").misses
        bigger = replay(trace, capacity + 1, "optimal").misses
        assert bigger <= smaller

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 10), min_size=0, max_size=150))
    def test_cold_misses_are_a_floor(self, trace):
        # Every distinct page must miss at least once under any policy.
        unique = len(set(trace))
        for policy in ("lru", "fifo", "optimal"):
            assert replay(trace, 3, policy).misses >= unique

    def test_matches_online_lru_buffer_pool(self):
        # The replay simulator and the online LruBufferPool must agree.
        from repro.storage.buffer import LruBufferPool

        rng = random.Random(5)
        trace = [rng.randint(0, 30) for _ in range(500)]
        for capacity in (1, 4, 16):
            pool = LruBufferPool(capacity)
            for page in trace:
                pool.access(page, is_leaf=False)
            simulated = replay(trace, capacity, "lru")
            assert simulated.hits == pool.stats.hits
            assert simulated.misses == pool.stats.misses
