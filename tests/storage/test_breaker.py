"""Circuit breaker and retry backoff: state machine, jitter, integration.

The acceptance properties pinned here:

- the breaker follows the legal state machine (closed -> open ->
  half-open -> closed/open) and records every transition;
- the open cooldown uses decorrelated jitter bounded by
  ``[cooldown, max_cooldown]``;
- half-open grants exactly the probe budget and counts refusals;
- a ``DiskRTree`` wired with a breaker degrades to skip-semantics while
  open (``breaker_skips``) and recovers after the cooldown;
- ``RetryPolicy`` decorrelated jitter draws sleeps from the documented
  envelope, the ``max_elapsed`` cap abandons instead of sleeping past a
  caller's deadline, and the legacy fixed schedule is untouched by
  default.
"""

import random

import pytest

from repro.errors import TransientIOError
from repro.rtree.disk import DiskRTree, build_disk_index
from repro.storage.breaker import BREAKER_STATE_CODES, CircuitBreaker
from repro.storage.faults import FaultInjectingPageFile, FaultPlan
from repro.storage.pagefile import RetryPolicy
from repro.datasets import uniform_points
from repro.geometry.rect import Rect

pytestmark = pytest.mark.resilience


def _breaker(threshold=3, cooldown=1.0, max_cooldown=4.0, probes=1):
    t = [0.0]
    b = CircuitBreaker(
        failure_threshold=threshold,
        cooldown=cooldown,
        max_cooldown=max_cooldown,
        probes=probes,
        clock=lambda: t[0],
        rng=random.Random(0),
    )
    return b, t


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b, _ = _breaker()
        assert b.state == "closed"
        assert b.allow()
        assert b.state_code() == BREAKER_STATE_CODES["closed"]

    def test_trips_open_after_threshold(self):
        b, _ = _breaker(threshold=3)
        for _ in range(2):
            b.record_failure()
            assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b.rejections == 1

    def test_success_resets_failure_streak(self):
        b, _ = _breaker(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == "closed"  # streak broken, no trip

    def test_half_open_after_cooldown_then_closes(self):
        b, t = _breaker(threshold=1, cooldown=1.0, max_cooldown=1.0)
        b.record_failure()
        assert b.state == "open"
        t[0] = 2.0
        assert b.state == "half-open"
        assert b.allow()  # the probe
        b.record_success()
        assert b.state == "closed"

    def test_half_open_failure_reopens(self):
        b, t = _breaker(threshold=1, cooldown=1.0, max_cooldown=1.0)
        b.record_failure()
        t[0] = 2.0
        assert b.allow()
        b.record_failure()
        assert b.state == "open"

    def test_probe_budget_enforced(self):
        b, t = _breaker(threshold=1, cooldown=1.0, max_cooldown=1.0, probes=2)
        b.record_failure()
        t[0] = 2.0
        assert b.allow()
        assert b.allow()
        assert not b.allow()  # probe budget exhausted
        b.record_success()
        b.record_success()
        assert b.state == "closed"

    def test_transitions_recorded_and_legal(self):
        legal = {
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
            ("half-open", "open"),
        }
        b, t = _breaker(threshold=1, cooldown=1.0, max_cooldown=1.0)
        b.record_failure()
        t[0] = 2.0
        b.allow()
        b.record_failure()
        t[0] = 10.0
        b.allow()
        b.record_success()
        pairs = [(src, dst) for _, src, dst in b.transitions]
        assert pairs == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert set(pairs) <= legal

    def test_cooldown_jitter_bounded(self):
        for seed in range(20):
            t = [0.0]
            b = CircuitBreaker(
                failure_threshold=1,
                cooldown=1.0,
                max_cooldown=4.0,
                clock=lambda: t[0],
                rng=random.Random(seed),
            )
            b.record_failure()
            # Strictly before the minimum cooldown: must still be open.
            t[0] = 0.999
            assert b.state == "open"
            # At the maximum cooldown: must have moved to half-open.
            t[0] = 4.001
            assert b.state == "half-open"


class TestDiskIntegration:
    @pytest.fixture
    def disk_path(self, tmp_path):
        points = uniform_points(400, seed=3)
        items = [(Rect(p, p), i) for i, p in enumerate(points)]
        path = tmp_path / "breaker.rtree"
        build_disk_index(items, path, page_size=1024).close()
        return path

    @pytest.mark.filterwarnings("ignore::repro.errors.CorruptionWarning")
    def test_open_breaker_degrades_to_skip(self, disk_path):
        """Persistent faults trip the breaker; while open, loads are
        refused (skip semantics) without touching the page file."""
        # Faults start off so the header bootstrap (unguarded by design)
        # succeeds; the storm begins once the tree is open.
        plan = FaultPlan(seed=1)
        pages = FaultInjectingPageFile(disk_path, page_size=1024, plan=plan)
        t = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2,
            cooldown=10.0,
            max_cooldown=10.0,
            clock=lambda: t[0],
            rng=random.Random(0),
        )
        disk = DiskRTree(
            page_file=pages,
            cache_nodes=2,
            on_corrupt="skip",
            retry=RetryPolicy(attempts=1),
            breaker=breaker,
        )
        from repro.core.knn_dfs import nearest_dfs

        plan.transient_error_prob = 1.0
        # Run queries until the breaker trips, then note refusals.
        for _ in range(4):
            nearest_dfs(disk, (0.5, 0.5), k=3)
        assert breaker.state == "open"
        skips_before = disk.breaker_skips
        nearest_dfs(disk, (0.5, 0.5), k=3)
        assert disk.breaker_skips > skips_before
        reads_during_open = pages.reads
        nearest_dfs(disk, (0.5, 0.5), k=3)
        assert pages.reads == reads_during_open  # refused, not attempted

        # Heal the device, let the cooldown elapse: service resumes.
        plan.transient_error_prob = 0.0
        t[0] = 100.0
        result, _ = nearest_dfs(disk, (0.5, 0.5), k=3)
        assert breaker.state == "closed"
        assert len(result) == 3
        disk.close()


class TestRetryJitter:
    def _failing(self, times):
        calls = {"n": 0}

        def op():
            calls["n"] += 1
            if calls["n"] <= times:
                raise TransientIOError("injected")
            return "ok"

        return op

    def test_legacy_default_schedule_unchanged(self):
        sleeps = []
        policy = RetryPolicy(
            attempts=4, base_delay=0.001, max_delay=1.0,
            sleep=sleeps.append,
        )
        assert policy.run(self._failing(3)) == "ok"
        assert sleeps == [0.001, 0.002, 0.004]

    def test_decorrelated_jitter_envelope(self):
        sleeps = []
        policy = RetryPolicy(
            attempts=6, base_delay=0.01, max_delay=0.5,
            sleep=sleeps.append, jitter="decorrelated",
            rng=random.Random(7),
        )
        assert policy.run(self._failing(5)) == "ok"
        assert len(sleeps) == 5
        prev = 0.01
        for s in sleeps:
            assert 0.01 <= s <= min(0.5, max(0.01, prev * 3.0) + 1e-12)
            prev = s

    def test_max_elapsed_abandons_instead_of_sleeping(self):
        t = [0.0]

        def fake_sleep(seconds):
            t[0] += seconds

        policy = RetryPolicy(
            attempts=100, base_delay=0.01, max_delay=10.0,
            sleep=fake_sleep, max_elapsed=0.05, clock=lambda: t[0],
        )
        with pytest.raises(TransientIOError):
            policy.run(self._failing(1000))
        assert policy.deadline_abandonments == 1
        # Never slept meaningfully past the cap.
        assert t[0] <= 0.05 + 10.0  # last sleep may not start past cap
        assert "max_elapsed" in repr(policy)

    def test_invalid_jitter_mode_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter="quantum")
