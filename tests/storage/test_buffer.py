"""Unit tests for the LRU/FIFO buffer pools."""

import pytest

from repro.errors import InvalidParameterError
from repro.storage.buffer import FifoBufferPool, LruBufferPool
from repro.storage.tracker import CountingTracker


class TestBufferBasics:
    def test_rejects_negative_capacity(self):
        with pytest.raises(InvalidParameterError):
            LruBufferPool(-1)

    def test_zero_capacity_everything_misses(self):
        pool = LruBufferPool(0)
        for page in [1, 1, 1]:
            pool.access(page, is_leaf=False)
        assert pool.stats.misses == 3
        assert pool.stats.hits == 0
        assert pool.resident_pages() == 0

    def test_hit_after_load(self):
        pool = LruBufferPool(4)
        pool.access(1, is_leaf=False)
        pool.access(1, is_leaf=False)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1
        assert pool.stats.hit_ratio == 0.5

    def test_inner_tracker_sees_only_misses(self):
        inner = CountingTracker()
        pool = LruBufferPool(4, inner=inner)
        for page in [1, 2, 1, 2, 1]:
            pool.access(page, is_leaf=True)
        assert inner.stats.total == 2  # only the two cold loads

    def test_eviction_at_capacity(self):
        pool = LruBufferPool(2)
        pool.access(1, is_leaf=False)
        pool.access(2, is_leaf=False)
        pool.access(3, is_leaf=False)  # evicts 1
        assert pool.stats.evictions == 1
        assert not pool.contains(1)
        assert pool.contains(2) and pool.contains(3)

    def test_reset(self):
        pool = LruBufferPool(2)
        pool.access(1, is_leaf=False)
        pool.reset()
        assert pool.stats.accesses == 0
        assert pool.resident_pages() == 0
        assert pool.inner.stats.total == 0

    def test_hit_ratio_empty(self):
        assert LruBufferPool(2).stats.hit_ratio == 0.0


class TestLruPolicy:
    def test_hit_refreshes_recency(self):
        pool = LruBufferPool(2)
        pool.access(1, is_leaf=False)
        pool.access(2, is_leaf=False)
        pool.access(1, is_leaf=False)  # hit: 1 becomes most recent
        pool.access(3, is_leaf=False)  # evicts 2, not 1
        assert pool.contains(1)
        assert not pool.contains(2)


class TestFifoPolicy:
    def test_hit_does_not_refresh(self):
        pool = FifoBufferPool(2)
        pool.access(1, is_leaf=False)
        pool.access(2, is_leaf=False)
        pool.access(1, is_leaf=False)  # hit but FIFO order unchanged
        pool.access(3, is_leaf=False)  # evicts 1 (oldest arrival)
        assert not pool.contains(1)
        assert pool.contains(2)

    def test_lru_beats_fifo_on_looping_pattern(self):
        # Repeated hot page plus streaming cold pages: LRU keeps the hot
        # page, FIFO eventually evicts it.
        lru, fifo = LruBufferPool(3), FifoBufferPool(3)
        pattern = []
        for i in range(30):
            pattern += [100, 200 + i]  # hot page interleaved with cold ones
        for page in pattern:
            lru.access(page, is_leaf=False)
            fifo.access(page, is_leaf=False)
        assert lru.stats.hits > fifo.stats.hits
