"""Unit tests for fault injection and the retry policy."""

import errno

import pytest

from repro.errors import (
    InvalidParameterError,
    PageFileError,
    TornWriteError,
    TransientIOError,
)
from repro.storage.faults import FaultInjectingPageFile, FaultPlan
from repro.storage.pagefile import PageFile, RetryPolicy


@pytest.fixture
def path(tmp_path):
    p = tmp_path / "data.pages"
    with PageFile(p, page_size=128, create=True) as pf:
        page = pf.allocate()
        pf.write_page(page, b"payload")
    return p


class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan(bit_flip_prob=1.5)
        with pytest.raises(InvalidParameterError):
            FaultPlan(torn_write_prob=-0.1)

    def test_defaults_inject_nothing(self, path):
        with FaultInjectingPageFile(path, page_size=128) as pf:
            for _ in range(20):
                assert pf.read_page(1).rstrip(b"\x00") == b"payload"
            assert sum(pf.faults_injected.values()) == 0


class TestBitFlips:
    def test_flip_pages_corrupts_exactly_those_reads(self, path):
        plan = FaultPlan(flip_pages={1}, seed=4)
        with FaultInjectingPageFile(path, page_size=128, plan=plan) as pf:
            clean = pf.read_page(0)
            dirty = pf.read_page(1)
        assert clean == b"\x00" * 128  # header untouched
        assert dirty != b"payload".ljust(128, b"\x00")
        assert pf.faults_injected["bit_flip"] == 1

    def test_flip_differs_by_exactly_one_bit(self, path):
        plan = FaultPlan(flip_pages={1}, seed=11)
        with FaultInjectingPageFile(path, page_size=128, plan=plan) as pf:
            dirty = pf.read_page(1)
        original = b"payload".ljust(128, b"\x00")
        diff_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(original, dirty)
        )
        assert diff_bits == 1

    def test_file_itself_is_untouched(self, path):
        plan = FaultPlan(flip_pages={1}, seed=4)
        with FaultInjectingPageFile(path, page_size=128, plan=plan) as pf:
            pf.read_page(1)
        with PageFile(path, page_size=128) as pf:
            assert pf.read_page(1).rstrip(b"\x00") == b"payload"

    def test_seed_makes_flips_reproducible(self, path):
        reads = []
        for _ in range(2):
            plan = FaultPlan(bit_flip_prob=1.0, seed=99)
            with FaultInjectingPageFile(path, page_size=128, plan=plan) as pf:
                reads.append(pf.read_page(1))
        assert reads[0] == reads[1]


class TestTransientErrors:
    def test_raises_transient_with_eio(self, path):
        plan = FaultPlan(transient_error_prob=1.0)
        with FaultInjectingPageFile(path, page_size=128, plan=plan) as pf:
            with pytest.raises(TransientIOError) as info:
                pf.read_page(1)
        assert info.value.errno == errno.EIO
        # Also catchable as the library base class and as OSError.
        assert isinstance(info.value, PageFileError)
        assert isinstance(info.value, OSError)

    def test_limit_lets_retries_eventually_succeed(self, path):
        plan = FaultPlan(transient_error_prob=1.0, transient_error_limit=2)
        with FaultInjectingPageFile(path, page_size=128, plan=plan) as pf:
            for _ in range(2):
                with pytest.raises(TransientIOError):
                    pf.read_page(1)
            assert pf.read_page(1).rstrip(b"\x00") == b"payload"
            assert pf.faults_injected["transient"] == 2


class TestShortReads:
    def test_short_read_raises_pagefile_error(self, path):
        plan = FaultPlan(short_read_prob=1.0)
        with FaultInjectingPageFile(path, page_size=128, plan=plan) as pf:
            with pytest.raises(PageFileError, match="short read"):
                pf.read_page(1)
            assert pf.faults_injected["short_read"] == 1


class TestTornWrites:
    def test_fail_after_writes_tears_the_nth_write(self, tmp_path):
        plan = FaultPlan(fail_after_writes=1, seed=2)
        p = tmp_path / "torn.pages"
        with FaultInjectingPageFile(p, page_size=128, create=True, plan=plan) as pf:
            a = pf.allocate()
            b = pf.allocate()
            pf.write_page(a, b"first")  # write 0: fine
            with pytest.raises(TornWriteError):
                pf.write_page(b, b"x" * 128)  # write 1: torn
            assert pf.faults_injected["torn_write"] == 1
            # The torn page holds a strict prefix, not the full payload.
            assert pf.read_page(b) != b"x" * 128
            assert pf.read_page(b).startswith(b"x")
            assert pf.read_page(a).rstrip(b"\x00") == b"first"

    def test_probabilistic_tears_are_seeded(self, tmp_path):
        outcomes = []
        for attempt in range(2):
            plan = FaultPlan(torn_write_prob=0.5, seed=13)
            p = tmp_path / f"t{attempt}.pages"
            with FaultInjectingPageFile(
                p, page_size=128, create=True, plan=plan
            ) as pf:
                torn = []
                for i in range(10):
                    page = pf.allocate()
                    try:
                        pf.write_page(page, b"data")
                        torn.append(False)
                    except TornWriteError:
                        torn.append(True)
                outcomes.append(torn)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])


class TestRetryPolicy:
    def test_retries_transient_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError(errno.EIO, "flaky")
            return "ok"

        policy = RetryPolicy(attempts=5, sleep=lambda _s: None)
        assert policy.run(flaky) == "ok"
        assert calls["n"] == 3
        assert policy.retries_performed == 2

    def test_gives_up_after_attempts(self):
        policy = RetryPolicy(attempts=3, sleep=lambda _s: None)

        def always_fails():
            raise TransientIOError(errno.EIO, "down forever")

        with pytest.raises(TransientIOError):
            policy.run(always_fails)
        assert policy.retries_performed == 2

    def test_deterministic_errors_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise PageFileError("structurally corrupt")

        policy = RetryPolicy(attempts=5, sleep=lambda _s: None)
        with pytest.raises(PageFileError):
            policy.run(broken)
        assert calls["n"] == 1

    def test_transient_errno_oserror_is_retried(self):
        calls = {"n": 0}

        def eio_once():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError(errno.EIO, "raw eio")
            return 7

        policy = RetryPolicy(attempts=2, sleep=lambda _s: None)
        assert policy.run(eio_once) == 7

    def test_nontransient_oserror_not_retried(self):
        def missing():
            raise FileNotFoundError(errno.ENOENT, "gone")

        policy = RetryPolicy(attempts=5, sleep=lambda _s: None)
        with pytest.raises(FileNotFoundError):
            policy.run(missing)
        assert policy.retries_performed == 0

    def test_backoff_is_exponential_and_capped(self):
        slept = []
        policy = RetryPolicy(
            attempts=5,
            base_delay=0.01,
            max_delay=0.03,
            sleep=slept.append,
        )

        def always_fails():
            raise TransientIOError(errno.EIO, "down")

        with pytest.raises(TransientIOError):
            policy.run(always_fails)
        assert slept == pytest.approx([0.01, 0.02, 0.03, 0.03])

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(base_delay=-1.0)
