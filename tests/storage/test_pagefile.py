"""Unit tests for the fixed-size-page file."""

import os

import pytest

from repro.errors import InvalidParameterError
from repro.storage.pagefile import PageFile, PageFileError


@pytest.fixture
def path(tmp_path):
    return tmp_path / "data.pages"


class TestLifecycle:
    def test_create_has_header_page(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            assert pf.page_count == 1
        assert os.path.getsize(path) == 128

    def test_open_missing_file_fails(self, path):
        with pytest.raises(PageFileError):
            PageFile(path, page_size=128)

    def test_open_misaligned_file_fails(self, path):
        path.write_bytes(b"x" * 100)
        with pytest.raises(PageFileError):
            PageFile(path, page_size=128)

    def test_rejects_tiny_page_size(self, path):
        with pytest.raises(InvalidParameterError):
            PageFile(path, page_size=16, create=True)

    def test_closed_file_rejects_access(self, path):
        pf = PageFile(path, page_size=128, create=True)
        pf.close()
        with pytest.raises(PageFileError):
            pf.read_page(0)
        pf.close()  # idempotent

    def test_context_manager_closes(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            pass
        with pytest.raises(PageFileError):
            pf.allocate()

    def test_context_manager_closes_on_exception(self, path):
        with pytest.raises(RuntimeError):
            with PageFile(path, page_size=128, create=True) as pf:
                raise RuntimeError("boom")
        assert pf.closed

    def test_closed_property(self, path):
        pf = PageFile(path, page_size=128, create=True)
        assert not pf.closed
        pf.close()
        assert pf.closed

    def test_every_use_after_close_raises(self, path):
        pf = PageFile(path, page_size=128, create=True)
        page = pf.allocate()
        pf.close()
        for call in (
            pf.allocate,
            lambda: pf.read_page(page),
            lambda: pf.write_page(page, b"x"),
            pf.sync,
        ):
            with pytest.raises(PageFileError):
                call()

    def test_open_directory_path_wrapped(self, tmp_path):
        # IsADirectoryError must surface as the library's error, chained.
        with pytest.raises(PageFileError) as info:
            PageFile(tmp_path, page_size=128)
        assert isinstance(info.value.__cause__, OSError)

    @pytest.mark.skipif(
        os.name != "posix" or os.geteuid() == 0,
        reason="permission checks don't bind as root",
    )
    def test_open_unreadable_file_wrapped(self, path):
        path.write_bytes(b"\x00" * 128)
        path.chmod(0o000)
        try:
            with pytest.raises(PageFileError) as info:
                PageFile(path, page_size=128)
            assert isinstance(info.value.__cause__, PermissionError)
        finally:
            path.chmod(0o644)


class TestDurability:
    def test_sync_calls_fsync(self, path, monkeypatch):
        fsynced = []
        monkeypatch.setattr(os, "fsync", fsynced.append)
        with PageFile(path, page_size=128, create=True) as pf:
            page = pf.allocate()
            pf.write_page(page, b"durable")
            pf.sync()
        assert len(fsynced) == 1

    def test_sync_makes_size_a_page_multiple_on_disk(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            pf.allocate()
            pf.allocate()
            pf.sync()
            # Even without close(), the on-disk size is now consistent.
            assert os.path.getsize(path) == 3 * 128


class TestReadWrite:
    def test_roundtrip(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            a = pf.allocate()
            b = pf.allocate()
            pf.write_page(a, b"alpha")
            pf.write_page(b, b"beta")
            assert pf.read_page(a).rstrip(b"\x00") == b"alpha"
            assert pf.read_page(b).rstrip(b"\x00") == b"beta"

    def test_padding_to_page_size(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            page = pf.allocate()
            pf.write_page(page, b"short")
            assert len(pf.read_page(page)) == 128

    def test_oversized_write_rejected(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            page = pf.allocate()
            with pytest.raises(PageFileError):
                pf.write_page(page, b"x" * 129)

    def test_out_of_range_access(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            with pytest.raises(PageFileError):
                pf.read_page(5)
            with pytest.raises(PageFileError):
                pf.write_page(-1, b"")

    def test_reads_and_writes_counted(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            page = pf.allocate()
            pf.write_page(page, b"data")
            pf.read_page(page)
            pf.read_page(page)
            assert pf.writes == 1
            assert pf.reads == 2

    def test_persistence_across_reopen(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            page = pf.allocate()
            pf.write_page(page, b"durable")
        with PageFile(path, page_size=128) as pf:
            assert pf.page_count == 2
            assert pf.read_page(page).rstrip(b"\x00") == b"durable"

    def test_page_count_tracks_buffered_allocations(self, path):
        with PageFile(path, page_size=128, create=True) as pf:
            for expected in (1, 2, 3):
                assert pf.allocate() == expected
            assert pf.page_count == 4
