"""Unit tests for the query-batch harness."""

import pytest

from repro import LruBufferPool, CountingTracker
from repro.bench.harness import (
    build_tree,
    default_page_model,
    points_as_items,
    run_query_batch,
)
from repro.datasets import uniform_points
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def tree():
    items = points_as_items(uniform_points(1000, seed=21))
    return build_tree(items, method="bulk")


class TestBuildTree:
    def test_bulk_and_insert_agree_on_contents(self):
        items = points_as_items(uniform_points(200, seed=22))
        bulk = build_tree(items, method="bulk")
        dynamic = build_tree(items, method="insert")
        assert len(bulk) == len(dynamic) == 200
        assert bulk.max_entries == dynamic.max_entries

    def test_page_model_determines_fanout(self):
        items = points_as_items(uniform_points(100, seed=23))
        tree = build_tree(items, page_model=default_page_model(4096))
        assert tree.max_entries == default_page_model(4096).max_entries()

    def test_unknown_method(self):
        with pytest.raises(InvalidParameterError):
            build_tree([], method="magic")


class TestRunQueryBatch:
    def test_empty_batch_rejected(self, tree):
        with pytest.raises(InvalidParameterError):
            run_query_batch(tree, [])

    def test_averages_are_consistent(self, tree):
        queries = uniform_points(25, seed=24)
        batch = run_query_batch(tree, queries, k=2)
        assert batch.queries == 25
        assert batch.avg_pages == pytest.approx(
            batch.avg_leaf_pages + batch.avg_internal_pages
        )
        assert batch.avg_pages > 0
        assert batch.avg_time_ms >= 0
        # Without a buffer, disk reads == logical pages.
        assert batch.avg_disk_reads == pytest.approx(batch.avg_pages)

    def test_shared_buffer_reduces_disk_reads(self, tree):
        queries = uniform_points(50, seed=25)
        unbuffered = run_query_batch(tree, queries, k=2)
        pool = LruBufferPool(64)
        buffered = run_query_batch(tree, queries, k=2, shared_tracker=pool)
        assert buffered.avg_pages == pytest.approx(unbuffered.avg_pages)
        assert buffered.avg_disk_reads < unbuffered.avg_disk_reads
        assert 0.0 < buffered.buffer_hit_ratio < 1.0

    def test_shared_plain_tracker_counts_all_accesses(self, tree):
        # A shared CountingTracker (no buffer) exercises the fallback
        # disk-read accounting path: every logical access is a read.
        queries = uniform_points(10, seed=28)
        tracker = CountingTracker()
        batch = run_query_batch(tree, queries, k=2, shared_tracker=tracker)
        assert batch.avg_disk_reads == pytest.approx(batch.avg_pages)
        assert batch.buffer_hit_ratio == 0.0

    def test_tracker_factory_mode(self, tree):
        queries = uniform_points(10, seed=26)
        batch = run_query_batch(
            tree, queries, k=1, tracker_factory=CountingTracker
        )
        assert batch.avg_pages > 0

    def test_best_first_supported(self, tree):
        queries = uniform_points(10, seed=27)
        bf = run_query_batch(tree, queries, k=3, algorithm="best-first")
        dfs = run_query_batch(tree, queries, k=3, algorithm="dfs")
        assert bf.avg_pages <= dfs.avg_pages
