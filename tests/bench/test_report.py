"""Unit tests for the markdown report generator."""

import pytest

from repro.bench.experiments import Scale
from repro.bench.report import generate_report

TINY = Scale(
    name="tiny",
    sweep_sizes=(128,),
    base_size=256,
    build_size=128,
    queries=5,
    k_values=(1,),
    buffer_sizes=(0, 8),
)


class TestGenerateReport:
    def test_subset_report(self):
        report = generate_report(TINY, ["E2", "e3"])
        assert "# Experiment report" in report
        assert "## E2" in report
        assert "## E3" in report
        assert "## E1 " not in report
        assert "|---|" in report  # markdown tables present
        assert "ran in" in report

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            generate_report(TINY, ["E77"])

    def test_cli_report_subcommand(self, tmp_path, capsys):
        from repro.bench.cli import main

        target = tmp_path / "report.md"
        assert main(
            ["report", "--only", "E2", "--scale", "quick", "-o", str(target)]
        ) == 0
        capsys.readouterr()
        content = target.read_text()
        assert content.startswith("# Experiment report")
        assert "## E2" in content
