"""Unit tests for the table renderer."""

import pytest

from repro.bench.tables import Table


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 20000.0)
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text
        assert "20,000" in text
        lines = text.splitlines()
        # All data lines share one width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_float_formatting_tiers(self):
        table = Table("Fmt", ["v"])
        table.add_row(0.0)
        table.add_row(1.23456)
        table.add_row(42.42)
        table.add_row(1234567.0)
        assert table.column("v") == ["0", "1.235", "42.4", "1,234,567"]

    def test_caption(self):
        table = Table("T", ["a"], caption="about this table")
        assert "about this table" in table.render()

    def test_row_length_mismatch(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown(self):
        table = Table("T", ["x", "y"])
        table.add_row(1, 2)
        md = table.to_markdown()
        assert "| x | y |" in md
        assert "|---|---|" in md
        assert "| 1 | 2 |" in md

    def test_csv(self):
        table = Table("T", ["label", "count"])
        table.add_row("plain", 1234567.0)
        table.add_row("with, comma", 2.0)
        csv = table.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "label,count"
        assert lines[1] == "plain,1234567"  # separators dropped for parsing
        assert lines[2] == '"with, comma",2.000'

    def test_csv_quote_escaping(self):
        table = Table("T", ["q"])
        table.add_row('say "hi"')
        assert table.to_csv().splitlines()[1] == '"say ""hi"""'

    def test_column_lookup(self):
        table = Table("T", ["x", "y"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("y") == ["2", "4"]
        with pytest.raises(ValueError):
            table.column("z")
