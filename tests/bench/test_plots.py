"""Unit tests for the ASCII plot renderer."""

import pytest

from repro.bench.plots import ascii_plot, plot_table
from repro.bench.tables import Table
from repro.errors import InvalidParameterError


class TestAsciiPlot:
    def test_basic_shape(self):
        out = ascii_plot(
            [1, 2, 3], [[1.0, 2.0, 3.0]], ["rising"], title="demo",
            width=20, height=6,
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert any("*" in line for line in lines)
        assert "rising" in lines[-1]

    def test_monotone_series_plots_monotone(self):
        out = ascii_plot([0, 1, 2, 3], [[0.0, 1.0, 2.0, 3.0]], ["y"], width=16, height=8)
        rows_with_marker = [
            i for i, line in enumerate(out.splitlines()) if "*" in line
        ]
        # Later x (right) means higher y (earlier row index).
        assert rows_with_marker == sorted(rows_with_marker)

    def test_two_series_distinct_markers(self):
        out = ascii_plot(
            [1, 2], [[1.0, 2.0], [2.0, 1.0]], ["up", "down"], width=12, height=5
        )
        assert "*" in out and "o" in out

    def test_axis_labels_present(self):
        out = ascii_plot([10, 90], [[5.0, 7.0]], ["s"], width=12, height=5)
        assert "10" in out and "90" in out
        assert "5" in out and "7" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_plot([1, 2], [[4.0, 4.0]], ["flat"], width=12, height=5)
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ascii_plot([], [[]], ["x"])
        with pytest.raises(InvalidParameterError):
            ascii_plot([1], [[1.0]], ["a", "b"])
        with pytest.raises(InvalidParameterError):
            ascii_plot([1, 2], [[1.0]], ["a"])
        with pytest.raises(InvalidParameterError):
            ascii_plot([1], [[1.0]], ["a"], width=2, height=2)


class TestPlotTable:
    def make_table(self):
        table = Table("T", ["k", "pages", "label"])
        table.add_row(1, 3.5, "a")
        table.add_row(4, 4.5, "b")
        table.add_row(8, 5.5, "c")
        return table

    def test_plots_numeric_columns_only(self):
        out = plot_table(self.make_table())
        assert "pages" in out
        assert "label" not in out.splitlines()[-1]

    def test_custom_x_column(self):
        out = plot_table(self.make_table(), x_column="pages")
        assert "k" in out.splitlines()[-1]

    def test_empty_table_rejected(self):
        with pytest.raises(InvalidParameterError):
            plot_table(Table("T", ["x", "y"]))

    def test_non_numeric_x_rejected(self):
        table = Table("T", ["name", "v"])
        table.add_row("a", 1.0)
        with pytest.raises(InvalidParameterError):
            plot_table(table)

    def test_no_numeric_series_rejected(self):
        table = Table("T", ["x", "name"])
        table.add_row(1, "a")
        with pytest.raises(InvalidParameterError):
            plot_table(table)
