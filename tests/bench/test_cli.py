"""Unit tests for the repro-bench command-line interface."""

import pytest

from repro.bench.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("E1", "E4", "E7"):
            assert experiment_id in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "E2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "pages" in out
        assert "completed in" in out

    def test_run_markdown(self, capsys):
        assert main(["run", "E2", "--scale", "quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "|---" in out

    def test_run_csv(self, capsys):
        assert main(["run", "E2", "--scale", "quick", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "k,DFS pages,best-first pages" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        assert main(["run", "E2", "--scale", "quick", "-o", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert "E2" in target.read_text()

    def test_viz_writes_svg(self, tmp_path, capsys):
        target = tmp_path / "demo.svg"
        assert main(["viz", str(target), "--n", "50"]) == 0
        out = capsys.readouterr().out
        assert "Wrote" in out
        content = target.read_text()
        assert content.startswith("<svg")
        import xml.etree.ElementTree as ET

        ET.fromstring(content)

    def test_run_plot(self, capsys):
        assert main(["run", "E2", "--scale", "quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "DFS pages" in out
        assert " |" in out  # chart gutter

    def test_unknown_experiment_raises(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            main(["run", "E42", "--scale", "quick"])

    def test_unknown_scale_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--scale", "enormous"])

    def test_json_stamps_provenance(self, capsys):
        import json
        import os

        from repro.packed.batch import NUMPY_AVAILABLE

        assert main(["run", "E2", "--scale", "quick", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        affinity = getattr(os, "sched_getaffinity", None)
        expected_cpus = (
            len(affinity(0)) if affinity is not None else (os.cpu_count() or 1)
        )
        assert document["cpus"] == expected_cpus
        assert document["numpy"] is NUMPY_AVAILABLE
        assert document["experiments"][0]["id"] == "E2"


class TestBatchSmoke:
    def test_batch_smoke_passes_with_parity(self, capsys):
        # Tiny sizes: this pins parity and the report shape, not timing
        # (no --min-speedup, so the ratio is reported, never gated).
        assert (
            main(
                [
                    "batch",
                    "--n",
                    "3000",
                    "--queries",
                    "24",
                    "--window",
                    "8",
                    "--reps",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "48/48" in out or "24/24" in out  # both paths vs one
        assert "PASS" in out

    def test_batch_smoke_gates_on_min_speedup(self, capsys):
        # An impossible threshold must fail the gate, not the parity.
        assert (
            main(
                [
                    "batch",
                    "--n",
                    "3000",
                    "--queries",
                    "16",
                    "--reps",
                    "1",
                    "--min-speedup",
                    "1e9",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "below threshold" in out
