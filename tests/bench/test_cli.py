"""Unit tests for the repro-bench command-line interface."""

import pytest

from repro.bench.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("E1", "E4", "E7"):
            assert experiment_id in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "E2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "pages" in out
        assert "completed in" in out

    def test_run_markdown(self, capsys):
        assert main(["run", "E2", "--scale", "quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "|---" in out

    def test_run_csv(self, capsys):
        assert main(["run", "E2", "--scale", "quick", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "k,DFS pages,best-first pages" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        assert main(["run", "E2", "--scale", "quick", "-o", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert "E2" in target.read_text()

    def test_viz_writes_svg(self, tmp_path, capsys):
        target = tmp_path / "demo.svg"
        assert main(["viz", str(target), "--n", "50"]) == 0
        out = capsys.readouterr().out
        assert "Wrote" in out
        content = target.read_text()
        assert content.startswith("<svg")
        import xml.etree.ElementTree as ET

        ET.fromstring(content)

    def test_run_plot(self, capsys):
        assert main(["run", "E2", "--scale", "quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "DFS pages" in out
        assert " |" in out  # chart gutter

    def test_unknown_experiment_raises(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            main(["run", "E42", "--scale", "quick"])

    def test_unknown_scale_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--scale", "enormous"])
