"""Smoke tests for every experiment at a tiny scale, plus shape assertions
for the paper's headline claims."""

import pytest

from repro.bench.experiments import EXPERIMENTS, Scale, get_experiment
from repro.errors import InvalidParameterError

TINY = Scale(
    name="tiny",
    sweep_sizes=(128, 512),
    base_size=512,
    build_size=256,
    queries=8,
    k_values=(1, 4),
    buffer_sizes=(0, 16),
)


class TestRegistry:
    def test_all_registered(self):
        assert sorted(EXPERIMENTS) == [
            "E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17",
            "E18", "E19", "E2", "E20", "E21", "E3", "E4", "E5", "E6", "E7",
            "E8",
            "E9",
        ]

    def test_lookup_case_insensitive(self):
        assert get_experiment("e3").id == "E3"

    def test_unknown_id(self):
        with pytest.raises(InvalidParameterError):
            get_experiment("E99")

    def test_scale_presets(self):
        assert set(Scale.presets()) == {"quick", "default", "full"}
        assert Scale.by_name("quick").name == "quick"
        with pytest.raises(InvalidParameterError):
            Scale.by_name("gigantic")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_every_experiment_runs_and_produces_tables(experiment_id):
    tables = EXPERIMENTS[experiment_id].run(TINY)
    assert tables, f"{experiment_id} produced no tables"
    for table in tables:
        assert table.rows, f"{experiment_id} produced an empty table"
        text = table.render()
        assert experiment_id in text


class TestPaperShapes:
    """The qualitative claims each figure makes must hold at tiny scale."""

    def test_e1_mindist_ordering_never_worse(self):
        for table in get_experiment("E1").run(TINY):
            for md, mmd in zip(
                map(float, table.column("mindist pages")),
                map(float, table.column("minmaxdist pages")),
            ):
                assert md <= mmd + 1e-9

    def test_e2_pages_grow_with_k(self):
        for table in get_experiment("E2").run(TINY):
            pages = [float(v) for v in table.column("DFS pages")]
            assert pages[0] <= pages[-1]

    def test_e3_buffer_reduces_disk_reads(self):
        (table,) = get_experiment("E3").run(TINY)
        reads = [float(v.replace(",", "")) for v in table.column("disk reads")]
        assert reads[-1] < reads[0]

    def test_e5_exhaustive_is_much_worse(self):
        tables = get_experiment("E5").run(TINY)
        for table in tables:
            pages = [float(v.replace(",", "")) for v in table.column("pages")]
            # First row: all pruning. Last row: none (exhaustive).
            assert pages[-1] > 3 * pages[0]

    def test_e6_rtree_touches_far_less_data_than_linear_scan(self):
        # Deterministic comparison (wall-clock at tiny scale is noisy
        # under CPU load): the DFS reads a handful of pages; the scan's
        # work column is the full item count.
        for table in get_experiment("E6").run(TINY):
            rows = dict(
                zip(table.column("algorithm"), table.column("pages/nodes"))
            )
            dfs_pages = float(rows["R-tree DFS (paper)"].replace(",", ""))
            scanned = float(rows["linear scan"].replace(",", ""))
            assert dfs_pages < scanned / 10

    def test_e8_bigger_pages_mean_fewer_accesses(self):
        (table,) = get_experiment("E8").run(TINY)
        pages = [float(v) for v in table.column("pages")]
        assert pages[-1] <= pages[0]
        fanouts = [float(v) for v in table.column("fanout")]
        assert fanouts == sorted(fanouts)

    def test_e11_pages_grow_with_selectivity(self):
        (table,) = get_experiment("E11").run(TINY)
        pages = [float(v.replace(",", "")) for v in table.column("pages (packed)")]
        assert pages == sorted(pages)
        results = [
            float(v.replace(",", "")) for v in table.column("results/query")
        ]
        assert results[-1] > results[0]

    def test_e13_bigger_cache_absorbs_more(self):
        (table,) = get_experiment("E13").run(TINY)
        reads = [float(v.replace(",", "")) for v in table.column("file reads/q")]
        assert reads == sorted(reads, reverse=True)
        logical = [
            float(v.replace(",", "")) for v in table.column("logical pages/q")
        ]
        assert len(set(logical)) == 1  # cache size never changes logic

    def test_e12_optimal_lower_bounds_everything(self):
        (table,) = get_experiment("E12").run(TINY)
        fifo = [float(v) for v in table.column("FIFO misses/q")]
        lru = [float(v) for v in table.column("LRU misses/q")]
        opt = [float(v) for v in table.column("OPT misses/q")]
        for f, l, o in zip(fifo, lru, opt):
            assert o <= l + 1e-9
            assert o <= f + 1e-9

    def test_e14_clustered_sessions_hit_the_cache(self):
        (table,) = get_experiment("E14").run(TINY)
        rows = list(
            zip(table.column("workload"), table.column("hit rate"))
        )
        clustered = [
            float(rate) for workload, rate in rows
            if workload == "clustered/sessions"
        ]
        assert max(clustered) > 0.5
        uniform = [
            float(rate) for workload, rate in rows
            if workload == "uniform/distinct"
        ]
        assert max(uniform) == 0.0  # distinct points cannot hit

    def test_e20_covers_every_window_and_path(self):
        from repro.packed.batch import NUMPY_AVAILABLE

        (table,) = get_experiment("E20").run(TINY)
        windows = table.column("window")
        paths = table.column("path")
        assert sorted(set(windows)) == ["16", "32", "8"]
        expected_paths = {"python"} | ({"numpy"} if NUMPY_AVAILABLE else set())
        assert set(paths) == expected_paths
        # Parity is certified inside the run (it raises on violation);
        # timing at tiny scale is noise, so only positivity is pinned.
        assert all(float(s) > 0.0 for s in table.column("speedup"))

    def test_e9_error_within_guarantee_and_pages_shrink(self):
        (table,) = get_experiment("E9").run(TINY)
        max_errors = [float(v) for v in table.column("max error")]
        guarantees = [float(v) for v in table.column("guarantee")]
        for err, guarantee in zip(max_errors, guarantees):
            assert err <= guarantee + 1e-9
        pages = [float(v) for v in table.column("pages")]
        assert pages[-1] <= pages[0]
