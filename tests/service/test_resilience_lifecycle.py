"""Lifecycle edge cases: close-deadline math and the cancel-vs-dispatch race.

Two serving-layer bugs are pinned here as regressions:

- ``close(timeout)`` used one shared join deadline, so a single wedged
  worker burned the whole budget and the joins behind it got nothing —
  the fixed version clamps each join to an equal per-thread slice and
  still reports ``False`` honestly when a thread survives;
- a client cancelling its future between enqueue and dispatch left the
  future CANCELLED, and every shedding path that then called
  ``set_exception`` on it raised ``InvalidStateError`` — crashing
  ``submit`` (adaptive-lifo eviction), killing a worker thread for good
  (dequeue expiry), or aborting the ``close`` flush — and dropped the
  request from the ``ResilienceStats`` conservation law.
"""

import threading
import time
from concurrent.futures import CancelledError, TimeoutError as FutureTimeout
from concurrent.futures import wait

import pytest

from repro.datasets import uniform_points
from repro.errors import AdmissionRejected
from repro.service.resilience import ResilientEngine

from tests.conftest import build_point_tree

pytestmark = pytest.mark.resilience

WEDGE = (9.0, 9.0)


@pytest.fixture(scope="module")
def tree():
    return build_point_tree(uniform_points(400, seed=5), max_entries=8)


class _FakeStats:
    truncated = False
    truncation_reason = None


class _FakeResult:
    stats = _FakeStats()


class _GateBackend:
    """Engine stub whose ``query`` blocks on a gate for the wedge point."""

    def __init__(self):
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.closed = False

    def query(self, point, k=None, config=None, budget=None):
        if tuple(point) == WEDGE:
            self.entered.set()
            self.gate.wait(30)
        return _FakeResult()

    def close(self, timeout=None):
        self.closed = True
        return True


class TestCloseJoinSlices:
    def test_wedged_worker_cannot_eat_later_join_budgets(self):
        """A stuck worker burns only its own slice of the close budget.

        Pre-fix, the joins shared one deadline: the wedged thread's join
        consumed the entire 0.8 s regardless of its position, so close
        always took ~timeout.  Post-fix each of the 4 threads gets a
        0.2 s slice, the three healthy ones join instantly, and close
        returns (honestly ``False``) in roughly one slice.
        """
        backend = _GateBackend()
        eng = ResilientEngine(engine=backend, workers=4, queue_capacity=8)
        wedged = eng.submit(WEDGE, k=1)
        try:
            assert backend.entered.wait(5)
            t0 = time.monotonic()
            drained = eng.close(timeout=0.8)
            elapsed = time.monotonic() - t0
            assert drained is False  # honest: one thread survived
            assert elapsed < 0.55, (
                f"close took {elapsed:.3f}s: the wedged worker ate the "
                f"budget of the healthy joins"
            )
        finally:
            backend.gate.set()
        wedged.result(5)
        assert eng.close(timeout=5) is True  # idempotent, now drains
        assert backend.closed
        stats = eng.stats()
        assert stats.conserved, stats.as_dict()

    def test_close_without_timeout_still_joins_everything(self):
        backend = _GateBackend()
        eng = ResilientEngine(engine=backend, workers=2, queue_capacity=4)
        fut = eng.submit((0.1, 0.2), k=1)
        fut.result(5)
        assert eng.close() is True
        assert eng.stats().conserved


class TestCancelledFutureRace:
    def test_close_flush_tolerates_cancelled_futures(self):
        """A queued future the client cancelled must not abort the flush.

        Pre-fix the flush loop called ``set_exception`` on the cancelled
        future and ``close`` itself raised ``InvalidStateError``, leaving
        the requests behind it unresolved.
        """
        backend = _GateBackend()
        eng = ResilientEngine(engine=backend, workers=1, queue_capacity=8)
        blocker = eng.submit(WEDGE, k=1)
        assert backend.entered.wait(5)
        abandoned = eng.submit((0.1, 0.1), k=1)
        queued = eng.submit((0.2, 0.2), k=1)
        assert abandoned.cancel()
        assert eng.close(timeout=0.4) is False  # pre-fix: InvalidStateError
        backend.gate.set()
        blocker.result(5)
        assert eng.close(timeout=5) is True
        with pytest.raises(AdmissionRejected):
            queued.result(1)
        stats = eng.stats()
        assert stats.conserved, stats.as_dict()
        assert stats.cancelled == 1
        assert stats.shed_shutdown == 1
        assert stats.served == 1

    def test_expired_cancelled_future_does_not_kill_the_worker(self):
        """Dequeue-time expiry of a cancelled future must not raise.

        Pre-fix the worker thread died with ``InvalidStateError`` inside
        ``_dequeue`` and every later submission waited forever.
        """
        clock = [0.0]
        backend = _GateBackend()
        eng = ResilientEngine(
            engine=backend,
            workers=1,
            queue_capacity=8,
            queue_timeout_ms=50.0,
            clock=lambda: clock[0],
        )
        blocker = eng.submit(WEDGE, k=1)
        assert backend.entered.wait(5)
        abandoned = eng.submit((0.1, 0.1), k=1)
        assert abandoned.cancel()
        clock[0] = 1.0  # the cancelled waiter is now also expired
        backend.gate.set()
        blocker.result(5)
        follow_up = eng.submit((0.2, 0.2), k=1)
        try:
            follow_up.result(5)  # pre-fix: dead worker, TimeoutError
        except FutureTimeout:
            pytest.fail("worker thread died on a cancelled expired future")
        assert eng.close(timeout=5) is True
        stats = eng.stats()
        assert stats.conserved, stats.as_dict()
        assert stats.cancelled == 1
        assert stats.shed_expired == 0

    def test_evicting_a_cancelled_victim_does_not_break_submit(self):
        """adaptive-lifo eviction of a cancelled waiter must stay internal.

        Pre-fix ``submit`` itself raised ``InvalidStateError`` while
        evicting the cancelled victim — violating the documented
        "shedding never raises out of submit" contract.
        """
        backend = _GateBackend()
        eng = ResilientEngine(
            engine=backend,
            workers=1,
            queue_capacity=1,
            shed_policy="adaptive-lifo",
        )
        blocker = eng.submit(WEDGE, k=1)
        assert backend.entered.wait(5)
        victim = eng.submit((0.1, 0.1), k=1)
        assert victim.cancel()
        newcomer = eng.submit((0.2, 0.2), k=1)  # pre-fix: raises here
        backend.gate.set()
        blocker.result(5)
        newcomer.result(5)
        assert eng.close(timeout=5) is True
        stats = eng.stats()
        assert stats.conserved, stats.as_dict()
        assert stats.cancelled == 1
        assert stats.shed_evicted == 0

    def test_cancel_vs_dispatch_hammer_conserves(self, tree):
        """Racing cancels against dispatch/expiry/eviction/close.

        Every future must resolve, the engine-side ``cancelled`` counter
        must equal the client-side successful cancels, and the
        conservation law must hold through the mayhem.
        """
        eng = ResilientEngine(
            tree,
            workers=2,
            queue_capacity=8,
            shed_policy="expired-drop",
            queue_timeout_ms=2.0,
            cache_size=0,
        )
        futs = []
        lock = threading.Lock()
        stop = threading.Event()
        client_cancels = [0, 0]

        def producer():
            for _ in range(200):
                f = eng.submit((0.5, 0.5), k=2)
                with lock:
                    futs.append(f)

        def canceller(slot):
            offset = slot
            while not stop.is_set():
                with lock:
                    snapshot = list(futs)
                for f in snapshot[offset::2]:
                    if f.cancel():
                        client_cancels[slot] += 1
                offset ^= 1
                time.sleep(0.001)

        producers = [threading.Thread(target=producer) for _ in range(2)]
        cancellers = [
            threading.Thread(target=canceller, args=(i,)) for i in range(2)
        ]
        for t in producers + cancellers:
            t.start()
        for t in producers:
            t.join(30)
        stop.set()
        for t in cancellers:
            t.join(30)
        done, not_done = wait(futs, timeout=30)
        assert not not_done
        assert eng.close(timeout=10) is True
        outcomes = {"served": 0, "shed": 0, "cancelled": 0}
        for f in futs:
            try:
                f.result(0)
                outcomes["served"] += 1
            except CancelledError:
                outcomes["cancelled"] += 1
            except AdmissionRejected:
                outcomes["shed"] += 1
        stats = eng.stats()
        assert stats.conserved, stats.as_dict()
        assert stats.pending == 0 and stats.inflight == 0
        assert outcomes["cancelled"] == sum(client_cancels)
        assert stats.cancelled == outcomes["cancelled"]
        assert stats.submitted == len(futs) == 400
