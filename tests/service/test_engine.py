"""QueryEngine behavior: caching, invalidation, concurrency, accounting.

The acceptance properties pinned here:

- a repeated query is served from the result cache;
- any insert/delete bumps the tree epoch and invalidates the cache;
- a cache hit performs **zero** tracker (page) accesses;
- engine results are identical to a sequential ``nearest`` loop;
- 8 threads querying while another thread inserts through the engine
  never deadlock, crash, or return answers that disagree with the
  ``linear_scan`` oracle.
"""

import threading

import pytest

from repro import QueryConfig, QueryEngine, linear_scan, nearest
from repro.datasets import uniform_points
from repro.datasets.queries import (
    query_points_clustered_sessions,
    query_points_uniform,
)
from repro.errors import InvalidParameterError
from repro.rtree.disk import build_disk_index, DiskRTree
from repro.service.engine import DEFAULT_CACHE_SIZE

from tests.conftest import build_point_tree

pytestmark = pytest.mark.service


@pytest.fixture
def engine(small_tree):
    with QueryEngine(small_tree, config=QueryConfig(k=3), workers=1) as eng:
        yield eng


class TestQueryCaching:
    def test_repeat_query_hits_cache(self, engine):
        first = engine.query((500.0, 500.0))
        second = engine.query((500.0, 500.0))
        assert second is first  # the very same cached NNResult
        stats = engine.stats()
        assert stats.queries == 2
        assert stats.cache_hits == 1
        assert stats.executed == 1
        assert stats.hit_ratio == 0.5

    def test_cache_hit_touches_zero_pages(self, engine):
        engine.query((500.0, 500.0))
        pages_after_miss = engine.tracker.aggregate().total
        assert pages_after_miss > 0
        engine.query((500.0, 500.0))
        assert engine.tracker.aggregate().total == pages_after_miss

    def test_different_k_is_a_different_entry(self, engine):
        a = engine.query((500.0, 500.0), k=2)
        b = engine.query((500.0, 500.0), k=5)
        assert len(a) == 2 and len(b) == 5
        assert engine.stats().cache_hits == 0

    def test_different_config_is_a_different_entry(self, engine):
        engine.query((500.0, 500.0))
        engine.query((500.0, 500.0), config=QueryConfig(k=3, algorithm="best-first"))
        assert engine.stats().cache_hits == 0

    def test_cache_disabled_always_executes(self, small_tree):
        with QueryEngine(small_tree, workers=1, cache_size=0) as eng:
            eng.query((500.0, 500.0))
            eng.query((500.0, 500.0))
            stats = eng.stats()
            assert stats.cache_hits == 0
            assert stats.executed == 2


class TestEpochInvalidation:
    def test_insert_invalidates(self, small_tree):
        with QueryEngine(small_tree, config=QueryConfig(k=1), workers=1) as eng:
            before = eng.query((500.0, 500.0))
            eng.insert((500.0, 500.0), payload="new-closest")
            after = eng.query((500.0, 500.0))
            assert after is not before
            assert after.payloads() == ["new-closest"]
            assert after.distances()[0] == 0.0
            stats = eng.stats()
            assert stats.cache_hits == 0
            assert stats.executed == 2
            assert stats.cache_invalidated >= 1

    def test_delete_invalidates(self, small_tree):
        with QueryEngine(small_tree, config=QueryConfig(k=1), workers=1) as eng:
            victim = eng.query((500.0, 500.0))
            rect = victim[0].rect
            payload = victim[0].payload
            epoch_before = eng.stats().epoch
            assert eng.delete(rect, payload)
            replacement = eng.query((500.0, 500.0))
            assert eng.stats().epoch > epoch_before
            assert replacement.payloads() != victim.payloads()

    def test_epoch_survives_unrelated_queries(self, engine):
        engine.query((100.0, 100.0))
        epoch = engine.stats().epoch
        engine.query((900.0, 900.0))
        assert engine.stats().epoch == epoch


class TestBatchSemantics:
    def test_batch_matches_sequential_nearest(self, medium_tree):
        queries = query_points_uniform(64, seed=31)
        config = QueryConfig(k=4)
        expected = [nearest(medium_tree, q, config=config) for q in queries]
        with QueryEngine(medium_tree, config=config, workers=4) as eng:
            served = eng.query_batch(queries)
        assert len(served) == len(expected)
        for got, want in zip(served, expected):
            assert got.distances() == want.distances()
            assert got.payloads() == want.payloads()

    def test_batch_coalesces_duplicates(self, small_tree):
        queries = [(500.0, 500.0)] * 10 + [(100.0, 100.0)] * 5
        with QueryEngine(small_tree, workers=4) as eng:
            results = eng.query_batch(queries)
            stats = eng.stats()
        assert len(results) == 15
        assert stats.executed == 2  # one search per distinct point
        assert stats.cache_hits == 13

    def test_batch_without_cache_runs_everything(self, small_tree):
        queries = [(500.0, 500.0)] * 6
        with QueryEngine(small_tree, workers=4, cache_size=0) as eng:
            eng.query_batch(queries)
            assert eng.stats().executed == 6

    def test_clustered_sessions_hit_rate(self, medium_points, medium_tree):
        queries = query_points_clustered_sessions(
            200, medium_points, distinct=20, seed=32
        )
        with QueryEngine(medium_tree, config=QueryConfig(k=4)) as eng:
            eng.query_batch(queries)
            stats = eng.stats()
        assert stats.cache_hits >= 180  # <= 20 distinct points executed
        assert stats.pages_per_query > 0

    def test_empty_batch_rejected(self, engine):
        with pytest.raises(InvalidParameterError):
            engine.query_batch([])

    def test_closed_engine_rejects_queries(self, small_tree):
        eng = QueryEngine(small_tree, workers=2)
        eng.close()
        with pytest.raises(InvalidParameterError):
            eng.query_batch([(0.0, 0.0)])
        eng.close()  # idempotent


class TestConcurrencyWithMutations:
    def test_eight_threads_query_while_inserting(self):
        """8 query threads race an inserter; answers must match the oracle.

        The inserter adds points far outside the data extent, so the true
        k-NN answer for every in-extent query is unchanged — any deviation
        means a reader observed a torn tree state.
        """
        points = uniform_points(400, seed=41)
        tree = build_point_tree(points, max_entries=8)
        queries = query_points_uniform(40, seed=42)
        oracle = {
            q: [n.distance for n in linear_scan(tree, q, k=3)] for q in queries
        }
        failures = []
        stop = threading.Event()

        with QueryEngine(tree, config=QueryConfig(k=3), workers=4) as eng:

            def querier():
                try:
                    for _ in range(5):
                        for q in queries:
                            got = eng.query(q).distances()
                            if got != pytest.approx(oracle[q]):
                                failures.append((q, got, oracle[q]))
                except Exception as exc:
                    failures.append(exc)

            def mutator():
                offset = 0
                while not stop.is_set():
                    eng.insert(
                        (50000.0 + offset, 50000.0 + offset),
                        payload=f"far-{offset}",
                    )
                    offset += 1

            threads = [threading.Thread(target=querier) for _ in range(8)]
            writer = threading.Thread(target=mutator)
            for t in threads:
                t.start()
            writer.start()
            for t in threads:
                t.join(timeout=60.0)
            stop.set()
            writer.join(timeout=60.0)

            assert not failures
            stats = eng.stats()
            assert stats.queries == 8 * 5 * len(queries)
            assert stats.epoch > 0  # the mutator really ran

    def test_insert_bumps_visible_epoch_under_load(self, small_tree):
        with QueryEngine(small_tree, workers=2) as eng:
            eng.query((500.0, 500.0))
            epoch = eng.stats().epoch
            eng.insert((1.0, 1.0), payload="x")
            eng.query((500.0, 500.0))
            assert eng.stats().epoch == epoch + 1


class TestDiskTreeServing:
    def test_serves_disk_tree_and_rejects_mutation(self, tmp_path, small_points):
        path = tmp_path / "tree.rnn"
        items = [(p, i) for i, p in enumerate(small_points)]
        with build_disk_index(items, path):
            pass
        with DiskRTree(path) as disk:
            with QueryEngine(disk, config=QueryConfig(k=3), workers=4) as eng:
                queries = query_points_uniform(16, seed=43)
                served = eng.query_batch(queries)
                expected = [nearest(disk, q, k=3) for q in queries]
                for got, want in zip(served, expected):
                    assert got.distances() == want.distances()
                with pytest.raises(InvalidParameterError):
                    eng.insert((0.0, 0.0), payload="nope")
                with pytest.raises(InvalidParameterError):
                    eng.delete((0.0, 0.0), payload="nope")

    def test_disk_tree_with_buffer_pool_shards(self, tmp_path, small_points):
        path = tmp_path / "tree.rnn"
        with build_disk_index([(p, i) for i, p in enumerate(small_points)], path):
            pass
        with DiskRTree(path) as disk:
            with QueryEngine(disk, workers=4, buffer_pages=32) as eng:
                eng.query_batch(query_points_uniform(32, seed=44))
                stats = eng.stats()
                logical = eng.tracker.aggregate().total
                assert 0 < stats.physical_reads <= logical


class TestEngineConstruction:
    def test_invalid_workers(self, small_tree):
        with pytest.raises(InvalidParameterError):
            QueryEngine(small_tree, workers=0)

    def test_invalid_buffer_pages(self, small_tree):
        with pytest.raises(InvalidParameterError):
            QueryEngine(small_tree, buffer_pages=-1)

    def test_defaults(self, small_tree):
        with QueryEngine(small_tree) as eng:
            assert eng.workers == 4
            assert eng.cache.capacity == DEFAULT_CACHE_SIZE
            assert "QueryEngine" in repr(eng)

    def test_stats_render_mentions_key_counters(self, engine):
        engine.query((500.0, 500.0))
        report = engine.stats().render()
        for needle in ("queries", "cache hits", "latency p95", "epoch"):
            assert needle in report
