"""Unit tests for the serving-layer building blocks: cache, locks, stats."""

import threading

import pytest

from repro.errors import InvalidParameterError
from repro.service import LatencyRecorder, ReadWriteLock, ResultCache

pytestmark = pytest.mark.service


class TestResultCache:
    def test_get_put_roundtrip(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the LRU victim
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_existing_key_updates_value(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            ResultCache(-1)

    def test_invalidate_epoch_drops_stale_entries(self):
        cache = ResultCache(8)
        cache.put(("p1", "cfg", 0), "old")
        cache.put(("p2", "cfg", 0), "old")
        cache.put(("p1", "cfg", 1), "new")
        dropped = cache.invalidate_epoch(1)
        assert dropped == 2
        assert cache.stats.invalidated == 2
        assert cache.get(("p1", "cfg", 0)) is None
        assert cache.get(("p1", "cfg", 1)) == "new"

    def test_cached_falsy_values_are_hits(self):
        # Regression: `get` returned the raw dict value and the engine
        # tested it for truthiness, so a cached empty result list (k-NN
        # on an empty tree) re-executed the search on every request.
        cache = ResultCache(4)
        for key, falsy in [("empty", []), ("none", None), ("zero", 0)]:
            cache.put(key, falsy)
        assert cache.get("empty") == []
        assert cache.get("none") is None
        assert cache.get("zero") == 0
        assert cache.stats.hits == 3
        assert cache.stats.misses == 0

    def test_get_default_distinguishes_miss_from_cached_none(self):
        sentinel = object()
        cache = ResultCache(4)
        cache.put("present", None)
        assert cache.get("present", sentinel) is None
        assert cache.get("absent", sentinel) is sentinel
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_invalidate_epoch_drops_non_tuple_keys(self):
        # Regression: keys that are not (point, cfg, epoch) tuples used to
        # crash `key[-1]` or silently survive; they carry no epoch so a
        # mutation must flush them.
        cache = ResultCache(8)
        cache.put("bare-string", 1)
        cache.put(42, 2)
        cache.put((), 3)
        cache.put(("p", "cfg", 7), "current")
        dropped = cache.invalidate_epoch(7)
        assert dropped == 3
        assert cache.get("bare-string") is None
        assert cache.get(42) is None
        assert cache.get(("p", "cfg", 7)) == "current"

    def test_clear_keeps_stats(self):
        cache = ResultCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_concurrent_access_is_consistent(self):
        cache = ResultCache(64)
        errors = []

        def worker(tid):
            try:
                for i in range(500):
                    cache.put((tid, i % 16), i)
                    cache.get((tid, (i + 1) % 16))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.stats.lookups == 8 * 500


class TestReadWriteLock:
    def test_readers_are_concurrent(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(2, timeout=5.0)

        def reader():
            with lock.read():
                entered.wait()  # both readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        log = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                log.append("w-start")
                threading.Event().wait(0.05)
                log.append("w-end")

        def reader():
            writer_in.wait(timeout=5.0)
            with lock.read():
                log.append("r")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(timeout=5.0)
        tr.join(timeout=5.0)
        assert log == ["w-start", "w-end", "r"]


class TestLatencyRecorder:
    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.count == 0
        assert recorder.mean() == 0.0
        assert recorder.percentile(0.95) == 0.0

    def test_percentiles_are_conservative(self):
        recorder = LatencyRecorder()
        samples = [0.001] * 95 + [0.1] * 5  # 95% at 1ms, 5% at 100ms
        for s in samples:
            recorder.record(s)
        p50 = recorder.percentile(0.50)
        p99 = recorder.percentile(0.99)
        # Bucketed estimates never under-report and stay within 25%.
        assert 0.001 <= p50 <= 0.00125
        assert 0.1 <= p99 <= 0.125
        assert recorder.mean() == pytest.approx(sum(samples) / len(samples))

    def test_snapshot_ms_units(self):
        recorder = LatencyRecorder()
        recorder.record(0.002)
        p50, p95, p99, mean, max_ms = recorder.snapshot_ms()
        assert 2.0 <= p50 <= 2.5
        assert p50 <= p95 <= p99 <= max_ms
        assert mean == pytest.approx(2.0)
        assert max_ms == pytest.approx(2.0)

    def test_negative_and_tiny_samples_clamp(self):
        recorder = LatencyRecorder()
        recorder.record(-1.0)
        recorder.record(1e-9)
        assert recorder.count == 2
        assert recorder.percentile(1.0) <= 1e-6
