"""The engine's batched serving path: same answers, same accounting.

``QueryEngine.query_batch`` routes single-worker best-first windows over
a packed tree through the multi-query batch kernel — one slab traversal
for the whole window.  These tests pin the contract that makes the
routing invisible: results bit-identical to the sequential per-point
loop, and every counter (queries, cache hits, executed searches,
latency samples) exactly what the sequential path would have recorded.
"""

import pytest

from repro import QueryConfig, QueryEngine, nearest
from repro.core.budget import Budget
from repro.datasets.queries import query_points_uniform

pytestmark = pytest.mark.service


def _served_pair(tree, queries, config, **kwargs):
    """(batched engine results+stats, sequential engine results+stats)."""
    with QueryEngine(tree, config=config, packed=True, **kwargs) as eng:
        batched = eng.query_batch(queries)
        batched_stats = eng.stats()
    with QueryEngine(tree, config=config, packed=True, **kwargs) as eng:
        sequential = [eng.query(q) for q in queries]
        sequential_stats = eng.stats()
    return batched, batched_stats, sequential, sequential_stats


class TestBatchedPath:
    def test_matches_sequential_serving_exactly(self, medium_tree):
        queries = query_points_uniform(48, seed=31)
        config = QueryConfig(k=4, algorithm="best-first")
        batched, b_stats, sequential, s_stats = _served_pair(
            medium_tree, queries, config, workers=1
        )
        for got, want in zip(batched, sequential):
            assert got.payloads() == want.payloads()
            assert got.distances() == want.distances()
            assert got.stats == want.stats
        assert b_stats.queries == s_stats.queries
        assert b_stats.cache_hits == s_stats.cache_hits
        assert b_stats.executed == s_stats.executed

    def test_matches_plain_nearest(self, medium_tree):
        queries = query_points_uniform(16, seed=7)
        config = QueryConfig(k=3, algorithm="best-first")
        expected = [nearest(medium_tree, q, config=config) for q in queries]
        with QueryEngine(
            medium_tree, config=config, packed=True, workers=1
        ) as eng:
            served = eng.query_batch(queries)
        for got, want in zip(served, expected):
            assert got.payloads() == want.payloads()
            assert got.distances() == want.distances()

    def test_duplicates_count_as_cache_hits(self, small_tree):
        queries = [(500.0, 500.0)] * 10 + [(100.0, 100.0)] * 5
        config = QueryConfig(k=2, algorithm="best-first")
        with QueryEngine(
            small_tree, config=config, packed=True, workers=1
        ) as eng:
            results = eng.query_batch(queries)
            stats = eng.stats()
        assert len(results) == 15
        assert stats.executed == 2  # one search per distinct point
        assert stats.cache_hits == 13
        # Duplicate answers are the very same NNResult object.
        assert results[0] is results[1]

    def test_warm_cache_short_circuits_the_window(self, small_tree):
        config = QueryConfig(k=2, algorithm="best-first")
        with QueryEngine(
            small_tree, config=config, packed=True, workers=1
        ) as eng:
            eng.query((500.0, 500.0))
            eng.query_batch([(500.0, 500.0), (500.0, 500.0)])
            stats = eng.stats()
        assert stats.executed == 1
        assert stats.cache_hits == 2

    def test_cache_disabled_executes_every_member(self, small_tree):
        config = QueryConfig(k=2, algorithm="best-first")
        with QueryEngine(
            small_tree, config=config, packed=True, workers=1, cache_size=0
        ) as eng:
            eng.query_batch([(500.0, 500.0)] * 6)
            assert eng.stats().executed == 6

    def test_latency_records_one_sample_per_query(self, small_tree):
        config = QueryConfig(k=2, algorithm="best-first")
        queries = query_points_uniform(8, seed=3)
        with QueryEngine(
            small_tree, config=config, packed=True, workers=1, cache_size=0
        ) as eng:
            eng.query_batch(queries)
            assert eng.stats().queries == len(queries)
            assert eng._latency.count == len(queries)


class TestRoutingGate:
    """Configs the batch kernel cannot take must fall back, not break."""

    @pytest.mark.parametrize(
        "config",
        [
            QueryConfig(k=3),  # dfs
            QueryConfig(
                k=3, algorithm="best-first", budget=Budget(max_pages=4)
            ),
        ],
        ids=["dfs", "budgeted"],
    )
    def test_fallback_configs_still_serve(self, medium_tree, config):
        queries = query_points_uniform(12, seed=11)
        with QueryEngine(
            medium_tree, config=config, packed=True, workers=1, cache_size=0
        ) as eng:
            served = eng.query_batch(queries)
            assert eng.stats().executed == len(queries)
        with QueryEngine(medium_tree, config=config, workers=1) as eng:
            expected = [eng.query(q) for q in queries]
        for got, want in zip(served, expected):
            assert got.payloads() == want.payloads()
            assert got.distances() == want.distances()

    def test_multi_worker_batches_still_serve(self, medium_tree):
        config = QueryConfig(k=3, algorithm="best-first")
        queries = query_points_uniform(12, seed=13)
        with QueryEngine(
            medium_tree, config=config, packed=True, workers=4, cache_size=0
        ) as eng:
            served = eng.query_batch(queries)
        expected = [nearest(medium_tree, q, config=config) for q in queries]
        for got, want in zip(served, expected):
            assert got.distances() == want.distances()
