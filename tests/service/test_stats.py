"""Regression tests for LatencyRecorder: consistent snapshots, percentile
edge cases, and fraction validation."""

import threading

import pytest

from repro.errors import InvalidParameterError
from repro.service import LatencyRecorder

pytestmark = pytest.mark.service


class TestPercentileZero:
    def test_p0_skips_empty_leading_buckets(self):
        # Regression: with a single 0.1 s sample, percentile(0.0) used to
        # report the edge of (empty) bucket 0 — 1 µs — because the
        # cumulative count satisfied `seen >= 0` immediately.  The answer
        # must come from the first occupied bucket.
        recorder = LatencyRecorder()
        recorder.record(0.1)
        assert recorder.percentile(0.0) == pytest.approx(0.1, rel=0.25)
        assert recorder.percentile(0.0) >= 0.1 - 1e-12

    def test_p0_equals_min_bucket_not_global_floor(self):
        recorder = LatencyRecorder()
        for s in (0.004, 0.05, 0.9):
            recorder.record(s)
        p0 = recorder.percentile(0.0)
        assert 0.004 <= p0 <= 0.004 * 1.25

    def test_p0_on_empty_recorder_is_zero(self):
        assert LatencyRecorder().percentile(0.0) == 0.0

    def test_p0_still_works_when_bucket_zero_occupied(self):
        recorder = LatencyRecorder()
        recorder.record(5e-7)  # lands in bucket 0
        recorder.record(0.2)
        assert recorder.percentile(0.0) == pytest.approx(1e-6)


class TestFractionValidation:
    @pytest.mark.parametrize("bad", [-0.1, -1e-9, 1.0000001, 1.5, 100.0])
    def test_out_of_range_fraction_rejected(self, bad):
        recorder = LatencyRecorder()
        recorder.record(0.01)
        with pytest.raises(InvalidParameterError):
            recorder.percentile(bad)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 0.99, 1.0])
    def test_boundary_fractions_accepted(self, ok):
        recorder = LatencyRecorder()
        recorder.record(0.01)
        recorder.percentile(ok)  # must not raise


class TestConsistentSnapshot:
    def test_snapshot_is_internally_ordered_under_concurrency(self):
        # Regression for the torn snapshot: p50/p95/p99/mean were read
        # under four separate lock acquisitions, so records landing
        # between them could produce p50 > p99.  With the single-lock
        # snapshot the ordering invariant holds at every instant.
        recorder = LatencyRecorder()
        stop = threading.Event()
        violations = []

        def writer():
            # Bimodal, ever-growing samples maximize the chance a torn
            # read would catch the distribution mid-shift.
            value = 1e-5
            while not stop.is_set():
                recorder.record(value)
                recorder.record(value * 100.0)
                value *= 1.01
                if value > 0.1:
                    value = 1e-5

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                p50, p95, p99, mean, max_ms = recorder.snapshot_ms()
                if not (p50 <= p95 <= p99 <= max_ms):
                    violations.append((p50, p95, p99, max_ms))
                if recorder.count and mean <= 0.0:
                    violations.append(("mean", mean))
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
        assert not violations

    def test_snapshot_matches_individual_calls_when_quiescent(self):
        recorder = LatencyRecorder()
        for s in (0.001, 0.003, 0.01, 0.05, 0.2):
            recorder.record(s)
        p50, p95, p99, mean, max_ms = recorder.snapshot_ms()
        assert p50 == 1000.0 * recorder.percentile(0.50)
        assert p95 == 1000.0 * recorder.percentile(0.95)
        assert p99 == 1000.0 * recorder.percentile(0.99)
        assert mean == 1000.0 * recorder.mean()
        assert max_ms == pytest.approx(200.0)
