"""Admission control, brownout, engine lifecycle, and chaos smoke.

The acceptance properties pinned here:

- request accounting is conserved through every policy and lifecycle
  path (overload, quota, eviction, expiry, shutdown);
- each shed policy does what it says: reject-newest refuses newcomers,
  adaptive-LIFO evicts the oldest waiter, expired-drop frees lapsed
  waiters first;
- per-client token buckets isolate noisy neighbors;
- the brownout controller widens epsilon / tightens budgets under load
  and steps back down on recovery, and browned-out answers occupy their
  own cache tier (a truncated result is never cached at all);
- ``QueryEngine.shutdown(timeout)`` drains concurrently with in-flight
  queries and fault injection — no deadlock, every future resolves,
  worker exceptions surface in ``EngineStats.failures``;
- ``register_metrics`` exposes every resilience signal numerically;
- a small seeded chaos soak passes end to end.
"""

import threading
import time
from concurrent.futures import wait

import pytest

from repro import QueryConfig, QueryEngine, nearest
from repro.core.budget import Budget
from repro.datasets import uniform_points
from repro.errors import (
    AdmissionRejected,
    InvalidParameterError,
    QuotaExceeded,
)
from repro.geometry.rect import Rect
from repro.obs.registry import MetricsRegistry, export_prometheus
from repro.rtree.disk import DiskRTree, build_disk_index
from repro.service.resilience import (
    DEFAULT_LADDER,
    BrownoutController,
    BrownoutLevel,
    ResilientEngine,
    Served,
    TokenBucket,
)
from repro.storage.faults import FaultInjectingPageFile, FaultPlan
from repro.storage.pagefile import RetryPolicy

from tests.conftest import build_point_tree

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def tree():
    return build_point_tree(uniform_points(800, seed=21), max_entries=8)


class TestTokenBucket:
    def test_burst_then_refill(self):
        t = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: t[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        t[0] = 1.5
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=1, burst=0)


class TestBrownoutController:
    def test_ladder_must_start_at_identity(self):
        with pytest.raises(InvalidParameterError):
            BrownoutController(ladder=(BrownoutLevel(0.5, None),))

    def test_steps_up_under_load_down_on_recovery(self):
        t = [0.0]
        bc = BrownoutController(
            min_dwell=0.0, step_down_after=2, clock=lambda: t[0]
        )
        for _ in range(len(DEFAULT_LADDER) + 3):
            t[0] += 1.0
            bc.observe(1.0, 0.0)
        assert bc.level == len(DEFAULT_LADDER) - 1  # saturates, no overflow
        for _ in range(2 * len(DEFAULT_LADDER) + 2):
            t[0] += 1.0
            bc.observe(0.0, 0.0)
        assert bc.level == 0
        assert bc.step_ups == bc.step_downs == len(DEFAULT_LADDER) - 1

    def test_min_dwell_rate_limits_step_ups(self):
        t = [0.0]
        bc = BrownoutController(min_dwell=10.0, clock=lambda: t[0])
        for _ in range(5):
            t[0] += 1.0  # 5s elapsed total: under the dwell
            bc.observe(1.0, 0.0)
        assert bc.level <= 1

    def test_hysteresis_band_holds_level(self):
        t = [0.0]
        bc = BrownoutController(
            min_dwell=0.0, step_down_after=1, clock=lambda: t[0]
        )
        t[0] = 1.0
        bc.observe(1.0, 0.0)
        assert bc.level == 1
        for _ in range(5):
            t[0] += 1.0
            bc.observe(0.5, 0.0)  # between exit (0.25) and enter (0.75)
        assert bc.level == 1

    def test_p99_target_also_triggers(self):
        t = [0.0]
        bc = BrownoutController(
            p99_target_ms=10.0, min_dwell=0.0, clock=lambda: t[0]
        )
        t[0] = 1.0
        bc.observe(0.0, 50.0)
        assert bc.level == 1

    def test_apply_widens_epsilon_never_narrows(self):
        bc = BrownoutController(min_dwell=0.0, clock=lambda: 0.0)
        bc._level = 1  # epsilon 0.1, no page cap
        assert bc.apply(QueryConfig(k=3)).epsilon == 0.1
        assert bc.apply(QueryConfig(k=3, epsilon=0.4)).epsilon == 0.4

    def test_apply_tightens_budget_preserving_deadline(self):
        bc = BrownoutController(min_dwell=0.0, clock=lambda: 0.0)
        bc._level = 4  # epsilon 1.0, max_pages 256
        cfg = bc.apply(QueryConfig(k=3, budget=Budget(deadline_ms=7.0)))
        assert cfg.budget.deadline_ms == 7.0
        assert cfg.budget.max_pages == 256
        loose = bc.apply(QueryConfig(k=3, budget=Budget(max_pages=8)))
        assert loose.budget.max_pages == 8  # never loosened

    def test_levels_occupy_distinct_cache_tiers(self):
        bc = BrownoutController(min_dwell=0.0, clock=lambda: 0.0)
        base = QueryConfig(k=3)
        bc._level = 2
        assert bc.apply(base).cache_key() != base.cache_key()


class TestAdmissionControl:
    def test_serves_and_conserves_under_overload(self, tree):
        with ResilientEngine(
            tree, workers=2, queue_capacity=4, cache_size=0
        ) as eng:
            futs = [eng.submit((0.5, 0.5), k=3) for _ in range(40)]
            outcomes = {"served": 0, "shed": 0}
            for f in futs:
                try:
                    served = f.result(10)
                    assert isinstance(served, Served)
                    outcomes["served"] += 1
                except AdmissionRejected:
                    outcomes["shed"] += 1
            stats = eng.stats()
            assert stats.conserved, stats.as_dict()
            assert outcomes["served"] == stats.served
            assert outcomes["served"] + outcomes["shed"] == 40
        assert eng.stats().conserved

    def test_reject_newest_keeps_waiters(self, tree):
        eng = ResilientEngine(
            tree, workers=1, queue_capacity=2,
            shed_policy="reject-newest", cache_size=0,
        )
        try:
            futs = [eng.submit((0.1, 0.9), k=2) for _ in range(20)]
            wait(futs, timeout=10)
            stats = eng.stats()
            assert stats.rejected_queue_full > 0
            assert stats.shed_evicted == 0  # policy never evicts admitted
            assert stats.conserved
        finally:
            assert eng.close(5)

    def test_adaptive_lifo_evicts_oldest(self, tree):
        eng = ResilientEngine(
            tree, workers=1, queue_capacity=2,
            shed_policy="adaptive-lifo", cache_size=0,
        )
        try:
            futs = [eng.submit((0.1, 0.9), k=2) for _ in range(20)]
            wait(futs, timeout=10)
            stats = eng.stats()
            assert stats.shed_evicted > 0
            assert stats.rejected_queue_full == 0  # newcomers always admitted
            assert stats.conserved
        finally:
            assert eng.close(5)

    def test_expired_drop_frees_lapsed_waiters(self, tree):
        clk = [0.0]
        eng = ResilientEngine(
            tree, workers=1, queue_capacity=8,
            shed_policy="expired-drop", queue_timeout_ms=1.0,
            cache_size=0, clock=lambda: clk[0],
        )
        try:
            # Stuff the queue, then advance the injected clock past the
            # queue deadline: the overflow path must shed the lapsed
            # waiters rather than the newcomers.
            futs = [eng.submit((0.2, 0.2), k=2) for _ in range(8)]
            clk[0] = 1.0
            futs += [eng.submit((0.2, 0.2), k=2) for _ in range(4)]
            wait(futs, timeout=10)
            stats = eng.stats()
            assert stats.shed_expired > 0
            assert stats.conserved
        finally:
            assert eng.close(5)

    def test_quota_isolates_clients(self, tree):
        eng = ResilientEngine(
            tree, workers=1, queue_capacity=32,
            quota_rate=0.001, quota_burst=2, cache_size=0,
        )
        try:
            noisy = [eng.submit((0.3, 0.3), k=1, client="noisy")
                     for _ in range(6)]
            quiet = eng.submit((0.3, 0.3), k=1, client="quiet")
            assert isinstance(quiet.result(10), Served)
            quota_hits = 0
            for f in noisy:
                try:
                    f.result(10)
                except QuotaExceeded:
                    quota_hits += 1
            assert quota_hits == 4  # burst of 2, negligible refill
            assert eng.stats().rejected_quota == 4
            assert eng.stats().conserved
        finally:
            assert eng.close(5)

    def test_default_budget_applies_when_caller_has_none(self, tree):
        eng = ResilientEngine(
            tree, workers=1, queue_capacity=4,
            default_budget=Budget(max_pages=2), cache_size=0,
        )
        try:
            served = eng.query((0.7, 0.7), k=10)
            assert served.config.budget.max_pages == 2
            assert served.result.truncated
            explicit = eng.query(
                (0.7, 0.7), k=10, budget=Budget(max_pages=5000)
            )
            assert explicit.config.budget.max_pages == 5000
            assert not explicit.result.truncated
        finally:
            assert eng.close(5)

    def test_submit_after_close_rejects_cleanly(self, tree):
        eng = ResilientEngine(tree, workers=1, queue_capacity=4,
                              cache_size=0)
        assert eng.close(5)
        fut = eng.submit((0.5, 0.5), k=1)
        with pytest.raises(AdmissionRejected) as err:
            fut.result(1)
        assert err.value.reason == "shutdown"
        assert eng.stats().conserved

    def test_brownout_engages_under_sustained_overload(self, tree):
        bc = BrownoutController(min_dwell=0.0, step_down_after=1000)
        with ResilientEngine(
            tree, workers=1, queue_capacity=4, brownout=bc,
            shed_policy="adaptive-lifo", cache_size=0,
        ) as eng:
            futs = [eng.submit((0.4, 0.4), k=3) for _ in range(120)]
            wait(futs, timeout=30)
            levels = set()
            for f in futs:
                if not f.exception():
                    levels.add(f.result().brownout_level)
            assert max(levels) > 0  # degradation actually engaged
            assert eng.stats().conserved


class TestMetricsIntegration:
    def test_register_metrics_exports_numeric_signals(self, tree):
        registry = MetricsRegistry()
        with ResilientEngine(
            tree, workers=1, queue_capacity=4, cache_size=0,
            default_budget=Budget(deadline_ms=1e-6),
        ) as eng:
            eng.register_metrics(registry)
            for _ in range(5):
                eng.query((0.6, 0.6), k=3)
            snap = registry.collect()
            assert snap["resilience.served"] == 5
            assert snap["resilience.conserved"] == 1
            assert "resilience.brownout_level" in snap
            assert "resilience.breaker_state" in snap
            assert snap["resilience.wait.count"] == 5
            # Deadline misses flow into their own histogram.
            assert snap["resilience.deadline_miss.count"] == 5
            text = export_prometheus(registry)
            assert "resilience_served" in text
            assert "resilience_deadline_miss" in text


class TestEngineLifecycleSatellites:
    """QueryEngine satellite: draining shutdown, failure accounting."""

    def test_shutdown_timeout_drains_and_reports(self, tree):
        eng = QueryEngine(tree, config=QueryConfig(k=3), workers=2)
        results = []
        batcher = threading.Thread(
            target=lambda: results.extend(
                eng.query_batch(uniform_points(50, seed=1))
            )
        )
        batcher.start()
        time.sleep(0.005)  # let the batch enter the pool
        assert eng.shutdown(timeout=10.0)  # drains queued work
        batcher.join(10)
        assert not batcher.is_alive()
        assert len(results) == 50  # every queued query completed
        assert eng.shutdown(timeout=1.0)  # idempotent

    def test_worker_exception_resolves_future_and_counts(self, tree):
        eng = QueryEngine(tree, config=QueryConfig(k=3), workers=1)
        try:
            with pytest.raises(Exception):
                # Wrong dimensionality raises inside the serving path.
                eng.query((0.5, 0.5, 0.5))
            assert eng.stats().failures == 1
        finally:
            eng.close()

    def test_truncated_results_never_cached(self, tree):
        eng = QueryEngine(tree, config=QueryConfig(k=5), workers=1,
                          cache_size=64)
        try:
            cfg = QueryConfig(k=5, budget=Budget(max_pages=1))
            r1 = eng.query((0.5, 0.5), config=cfg)
            assert r1.truncated
            eng.query((0.5, 0.5), config=cfg)
            assert eng.stats().cache_hits == 0  # partial answers don't stick
            # Budgetless config is a different tier even for the same point.
            full = eng.query((0.5, 0.5))
            assert not full.truncated
            eng.query((0.5, 0.5))
            assert eng.stats().cache_hits == 1
        finally:
            eng.close()

    @pytest.mark.filterwarnings("ignore::repro.errors.CorruptionWarning")
    def test_concurrent_shutdown_inflight_and_faults(self, tmp_path):
        """Satellite requirement: concurrent shutdown() + in-flight
        queries + fault injection — no deadlock, every future resolves."""
        points = uniform_points(600, seed=9)
        items = [(Rect(p, p), i) for i, p in enumerate(points)]
        path = tmp_path / "soak.rtree"
        build_disk_index(items, path, page_size=1024).close()
        plan = FaultPlan(bit_flip_prob=0.05, transient_error_prob=0.05,
                         seed=2)
        pages = FaultInjectingPageFile(path, page_size=1024, plan=plan)
        disk = DiskRTree(
            page_file=pages, cache_nodes=4, on_corrupt="skip",
            retry=RetryPolicy(attempts=2, base_delay=0.0001),
        )
        eng = QueryEngine(disk, config=QueryConfig(k=3), workers=4,
                          cache_size=0)
        outcomes = []
        stop = threading.Event()

        def submitter():
            while not stop.is_set():
                try:
                    outcomes.append(eng.query_batch([(0.5, 0.5)] * 4))
                except InvalidParameterError:
                    return  # engine closed mid-loop: expected

        threads = [threading.Thread(target=submitter) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        drained = eng.shutdown(timeout=15.0)
        stop.set()
        for t in threads:
            t.join(10)
            assert not t.is_alive()  # no deadlock, every call returned
        assert drained
        assert outcomes  # the race was real: some batches completed
        disk.close()


class TestChaosSmoke:
    def test_small_seeded_soak_passes(self):
        from repro.chaos import ChaosConfig, run_soak

        report = run_soak(ChaosConfig(
            seed=3, queries=300, n_points=800, query_pool=40,
            workers=2, queue_capacity=8,
        ))
        assert report.passed, report.render()
        assert report.served > 0
        assert report.shed > 0  # the overload is real
        assert report.oracle_checked == report.served
        assert ("closed", "open") in report.breaker_transitions

    def test_report_round_trips_to_json(self):
        import json

        from repro.chaos import ChaosConfig, run_soak

        report = run_soak(ChaosConfig(
            seed=4, queries=60, n_points=300, query_pool=10,
            workers=1, queue_capacity=4,
        ))
        blob = json.dumps(report.to_dict())
        assert json.loads(blob)["passed"] == report.passed
