"""The Engine protocol: one contract, three implementations.

``query/submit/stats/snapshot/close`` is the whole serving surface.
``ResilientEngine`` composes over *any* backend through it — no
``isinstance`` special-casing — so the protocol is pinned structurally
(``runtime_checkable``) and behaviorally (submit/query agreement,
snapshot composition) for every engine.
"""

import pytest

from repro import QueryConfig, QueryEngine
from repro.errors import InvalidParameterError
from repro.service.options import EngineOptions
from repro.service.protocol import Engine, EngineSnapshot
from repro.service.resilience import ResilientEngine

pytestmark = pytest.mark.service


class TestConformance:
    def test_query_engine_is_an_engine(self, small_tree):
        with QueryEngine(small_tree, workers=1) as engine:
            assert isinstance(engine, Engine)

    def test_resilient_engine_is_an_engine(self, small_tree):
        with ResilientEngine(small_tree, workers=1) as engine:
            assert isinstance(engine, Engine)

    def test_a_plain_object_is_not_an_engine(self):
        assert not isinstance(object(), Engine)


class TestSubmit:
    def test_submit_agrees_with_query(self, small_tree):
        with QueryEngine(small_tree, workers=1) as engine:
            direct = engine.query((0.5, 0.5), k=3)
            future = engine.submit((0.5, 0.5), k=3)
            assert [n.payload for n in future.result().neighbors] == [
                n.payload for n in direct.neighbors
            ]

    def test_submit_without_pool_carries_exceptions(self, small_tree):
        engine = QueryEngine(small_tree, workers=1)
        engine.close()
        with pytest.raises(InvalidParameterError):
            engine.submit((0.0, 0.0), k=1)


class TestSnapshot:
    def test_thread_snapshot_shape(self, small_tree):
        with QueryEngine(small_tree, workers=2, packed=False) as engine:
            snap = engine.snapshot()
            assert isinstance(snap, EngineSnapshot)
            assert snap.backend == "thread"
            assert snap.size == len(small_tree)
            assert snap.detail["workers"] == 2
            assert "epoch" in snap.describe() or snap.describe()

    def test_snapshot_epoch_tracks_mutation(self, small_tree):
        with QueryEngine(small_tree, workers=1) as engine:
            before = engine.snapshot().epoch
            engine.insert((0.25, 0.25), payload="new")
            assert engine.snapshot().epoch != before

    def test_resilient_snapshot_composes_backend(self, small_tree):
        with ResilientEngine(small_tree, workers=1) as engine:
            snap = engine.snapshot()
            assert snap.backend == "resilient+thread"
            assert snap.detail["admission_workers"] == 1
            assert snap.detail["workers"] == 1  # inner engine detail kept


class TestComposition:
    def test_resilient_requires_exactly_one_backend(self, small_tree):
        with pytest.raises(InvalidParameterError):
            ResilientEngine()
        inner = QueryEngine(small_tree, workers=1)
        try:
            with pytest.raises(InvalidParameterError):
                ResilientEngine(small_tree, engine=inner)
        finally:
            inner.close()

    def test_resilient_rejects_engine_plus_construction_knobs(
        self, small_tree
    ):
        inner = QueryEngine(small_tree, workers=1)
        try:
            with pytest.raises(InvalidParameterError):
                ResilientEngine(engine=inner, cache_size=64)
        finally:
            inner.close()

    def test_resilient_over_prebuilt_engine_serves_and_owns_close(
        self, small_tree
    ):
        inner = QueryEngine(
            small_tree, config=QueryConfig(k=2), options=EngineOptions(workers=1)
        )
        with ResilientEngine(engine=inner, workers=1) as resilient:
            served = resilient.query((0.5, 0.5))
            assert len(served.result.neighbors) == 2
        # ResilientEngine.close() closed the backend it was given.
        with pytest.raises(InvalidParameterError):
            inner.query((0.5, 0.5))


class TestOptionsRouting:
    def test_options_and_legacy_kwargs_build_identical_engines(
        self, small_tree
    ):
        with QueryEngine(
            small_tree, options=EngineOptions(workers=2, cache_size=8)
        ) as via_options, QueryEngine(
            small_tree, workers=2, cache_size=8
        ) as via_kwargs:
            assert via_options.options == via_kwargs.options

    def test_legacy_kwargs_override_options_fields(self, small_tree):
        with QueryEngine(
            small_tree,
            options=EngineOptions(workers=4, cache_size=8),
            workers=1,
        ) as engine:
            assert engine.options.workers == 1
            assert engine.options.cache_size == 8

    def test_invalid_options_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            EngineOptions(workers=0)
        with pytest.raises(InvalidParameterError):
            QueryEngine(small_tree, workers=0)
