"""Unit tests for the 2-D Hilbert curve index."""

import pytest

from repro.errors import InvalidParameterError
from repro.geometry.hilbert import hilbert_index_2d, hilbert_key_for_point


class TestHilbertIndex:
    def test_order_one_visits_all_four_cells(self):
        # Order-1 curve: (0,0) -> (0,1) -> (1,1) -> (1,0).
        positions = {
            (0, 0): 0,
            (0, 1): 1,
            (1, 1): 2,
            (1, 0): 3,
        }
        for (x, y), d in positions.items():
            assert hilbert_index_2d(x, y, order=1) == d

    @pytest.mark.parametrize("order", [1, 2, 3, 5])
    def test_bijective_on_grid(self, order):
        side = 1 << order
        seen = {
            hilbert_index_2d(x, y, order)
            for x in range(side)
            for y in range(side)
        }
        assert seen == set(range(side * side))

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_curve_is_continuous(self, order):
        # Consecutive Hilbert positions are grid neighbors (distance 1).
        side = 1 << order
        by_position = {}
        for x in range(side):
            for y in range(side):
                by_position[hilbert_index_2d(x, y, order)] = (x, y)
        for d in range(side * side - 1):
            (x1, y1), (x2, y2) = by_position[d], by_position[d + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            hilbert_index_2d(4, 0, order=2)
        with pytest.raises(InvalidParameterError):
            hilbert_index_2d(-1, 0, order=2)

    def test_rejects_bad_order(self):
        with pytest.raises(InvalidParameterError):
            hilbert_index_2d(0, 0, order=0)


class TestHilbertKey:
    def test_corners_map_inside_range(self):
        lo, hi = (0.0, 0.0), (100.0, 100.0)
        for point in [(0.0, 0.0), (100.0, 100.0), (50.0, 50.0)]:
            key = hilbert_key_for_point(point, lo, hi, order=8)
            assert 0 <= key < 4**8

    def test_nearby_points_usually_nearby_keys(self):
        lo, hi = (0.0, 0.0), (1000.0, 1000.0)
        a = hilbert_key_for_point((500.0, 500.0), lo, hi, order=10)
        b = hilbert_key_for_point((500.5, 500.5), lo, hi, order=10)
        far = hilbert_key_for_point((20.0, 980.0), lo, hi, order=10)
        assert abs(a - b) < abs(a - far)

    def test_degenerate_bounds(self):
        # Zero-width bounds collapse to cell 0 on that axis.
        key = hilbert_key_for_point((5.0, 5.0), (5.0, 0.0), (5.0, 10.0))
        assert key >= 0

    def test_rejects_non_2d(self):
        with pytest.raises(InvalidParameterError):
            hilbert_key_for_point((1.0, 2.0, 3.0), (0.0, 0.0), (1.0, 1.0))
