"""Unit tests for repro.geometry.point."""

import pytest

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.point import (
    as_point,
    centroid,
    chebyshev,
    euclidean,
    euclidean_squared,
    lerp,
    manhattan,
    point_dimension,
)


class TestAsPoint:
    def test_converts_ints_to_floats(self):
        assert as_point([1, 2]) == (1.0, 2.0)
        assert all(isinstance(c, float) for c in as_point([1, 2]))

    def test_accepts_tuples_lists_and_generators(self):
        assert as_point((3.5,)) == (3.5,)
        assert as_point(iter([1.0, 2.0, 3.0])) == (1.0, 2.0, 3.0)

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            as_point([])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(GeometryError):
            as_point([0.0, bad])

    def test_dimension(self):
        assert point_dimension((1.0, 2.0, 3.0)) == 3


class TestDistances:
    def test_euclidean_squared_basic(self):
        assert euclidean_squared((0, 0), (3, 4)) == 25.0

    def test_euclidean_is_sqrt_of_squared(self):
        assert euclidean((0, 0), (3, 4)) == 5.0

    def test_zero_distance_to_self(self):
        p = (1.5, -2.5, 7.0)
        assert euclidean_squared(p, p) == 0.0

    def test_symmetry(self):
        a, b = (1.0, 2.0), (-3.0, 5.5)
        assert euclidean_squared(a, b) == euclidean_squared(b, a)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            euclidean_squared((1.0,), (1.0, 2.0))

    def test_one_dimensional(self):
        assert euclidean((0.0,), (7.0,)) == 7.0

    def test_chebyshev(self):
        assert chebyshev((0, 0), (3, -4)) == 4.0

    def test_manhattan(self):
        assert manhattan((0, 0), (3, -4)) == 7.0

    def test_metric_ordering(self):
        # chebyshev <= euclidean <= manhattan for any pair.
        a, b = (1.0, -2.0, 3.0), (4.0, 0.0, -1.0)
        assert chebyshev(a, b) <= euclidean(a, b) <= manhattan(a, b)


class TestLerpCentroid:
    def test_lerp_endpoints(self):
        a, b = (0.0, 0.0), (10.0, 20.0)
        assert lerp(a, b, 0.0) == a
        assert lerp(a, b, 1.0) == b

    def test_lerp_midpoint(self):
        assert lerp((0.0, 0.0), (10.0, 20.0), 0.5) == (5.0, 10.0)

    def test_centroid_single_point(self):
        assert centroid([(2.0, 4.0)]) == (2.0, 4.0)

    def test_centroid_average(self):
        assert centroid([(0.0, 0.0), (2.0, 4.0)]) == (1.0, 2.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(GeometryError):
            centroid([])

    def test_centroid_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            centroid([(0.0, 0.0), (1.0,)])
