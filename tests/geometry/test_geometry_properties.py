"""Property-based tests for the geometric primitives (hypothesis)."""

import math

from hypothesis import given, strategies as st

from repro.geometry.point import euclidean
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw, dimension=None):
    dim = dimension if dimension is not None else draw(st.integers(1, 4))
    lo = [draw(finite) for _ in range(dim)]
    hi = [c + draw(st.floats(min_value=0.0, max_value=1e5)) for c in lo]
    return Rect(lo, hi)


@st.composite
def points(draw, dimension):
    return tuple(draw(finite) for _ in range(dimension))


@given(rects())
def test_union_with_self_is_identity(r):
    assert r.union(r) == r


@given(st.data())
def test_union_contains_both_operands(data):
    dim = data.draw(st.integers(1, 4))
    a = data.draw(rects(dimension=dim))
    b = data.draw(rects(dimension=dim))
    u = a.union(b)
    assert u.contains_rect(a)
    assert u.contains_rect(b)


@given(st.data())
def test_union_is_commutative(data):
    dim = data.draw(st.integers(1, 4))
    a = data.draw(rects(dimension=dim))
    b = data.draw(rects(dimension=dim))
    assert a.union(b) == b.union(a)


@given(st.data())
def test_intersection_contained_in_both(data):
    dim = data.draw(st.integers(1, 3))
    a = data.draw(rects(dimension=dim))
    b = data.draw(rects(dimension=dim))
    inter = a.intersection(b)
    if inter is not None:
        assert a.contains_rect(inter)
        assert b.contains_rect(inter)
        assert a.intersects(b)
    else:
        assert not a.intersects(b)


@given(st.data())
def test_overlap_area_matches_intersection_area(data):
    dim = data.draw(st.integers(1, 3))
    a = data.draw(rects(dimension=dim))
    b = data.draw(rects(dimension=dim))
    inter = a.intersection(b)
    expected = inter.area() if inter is not None else 0.0
    assert math.isclose(a.overlap_area(b), expected, rel_tol=1e-9, abs_tol=1e-9)


@given(st.data())
def test_enlargement_nonnegative(data):
    dim = data.draw(st.integers(1, 3))
    a = data.draw(rects(dimension=dim))
    b = data.draw(rects(dimension=dim))
    assert a.enlargement(b) >= -1e-6


@given(st.data())
def test_clamp_point_is_inside_and_closest_corner_cases(data):
    dim = data.draw(st.integers(1, 3))
    r = data.draw(rects(dimension=dim))
    p = data.draw(points(dimension=dim))
    clamped = r.clamp_point(p)
    assert r.contains_point(clamped)
    if r.contains_point(p):
        assert clamped == p


@given(st.data())
def test_segment_distance_bounded_by_endpoint_distances(data):
    dim = data.draw(st.integers(1, 3))
    a = data.draw(points(dimension=dim))
    b = data.draw(points(dimension=dim))
    q = data.draw(points(dimension=dim))
    seg = Segment(a, b)
    d = seg.distance_to(q)
    assert d <= euclidean(q, a) + 1e-6
    assert d <= euclidean(q, b) + 1e-6


@given(st.data())
def test_segment_closest_point_lies_on_mbr(data):
    dim = data.draw(st.integers(1, 3))
    a = data.draw(points(dimension=dim))
    b = data.draw(points(dimension=dim))
    q = data.draw(points(dimension=dim))
    seg = Segment(a, b)
    closest = seg.closest_point_to(q)
    # Loosen the box a hair for floating-point roundoff.
    mbr = seg.mbr()
    eps = 1e-6 * (1.0 + max(map(abs, mbr.lo + mbr.hi)))
    grown = Rect([c - eps for c in mbr.lo], [c + eps for c in mbr.hi])
    assert grown.contains_point(closest)


@given(st.data())
def test_euclidean_triangle_inequality(data):
    dim = data.draw(st.integers(1, 4))
    a = data.draw(points(dimension=dim))
    b = data.draw(points(dimension=dim))
    c = data.draw(points(dimension=dim))
    assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6


@given(st.data())
def test_from_points_contains_all(data):
    dim = data.draw(st.integers(1, 3))
    pts = data.draw(st.lists(points(dimension=dim), min_size=1, max_size=20))
    box = Rect.from_points(pts)
    for p in pts:
        assert box.contains_point(p)


@given(st.data())
def test_segment_distance_is_true_minimum_over_the_segment(data):
    # The closest-point formula must never beat a sampled point on the
    # segment, and must match the best sample to within discretization.
    dim = data.draw(st.integers(1, 3))
    a = data.draw(points(dimension=dim))
    b = data.draw(points(dimension=dim))
    q = data.draw(points(dimension=dim))
    seg = Segment(a, b)
    d = seg.distance_to(q)
    samples = [
        euclidean(q, tuple(x + (y - x) * t for x, y in zip(a, b)))
        for t in [i / 16 for i in range(17)]
    ]
    assert d <= min(samples) + 1e-6 * (1.0 + min(samples))
