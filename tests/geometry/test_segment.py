"""Unit tests for repro.geometry.segment."""

import pytest

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


@pytest.fixture
def diagonal() -> Segment:
    return Segment((0.0, 0.0), (10.0, 10.0))


class TestConstruction:
    def test_basic(self, diagonal):
        assert diagonal.start == (0.0, 0.0)
        assert diagonal.end == (10.0, 10.0)
        assert diagonal.dimension == 2

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Segment((0.0,), (1.0, 2.0))

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            Segment((0.0, float("nan")), (1.0, 2.0))

    def test_degenerate_segment_is_point(self):
        s = Segment((1.0, 1.0), (1.0, 1.0))
        assert s.length() == 0.0

    def test_immutable(self, diagonal):
        with pytest.raises(AttributeError):
            diagonal.start = (5.0, 5.0)

    def test_equality_and_hash(self, diagonal):
        twin = Segment((0.0, 0.0), (10.0, 10.0))
        assert diagonal == twin
        assert hash(diagonal) == hash(twin)
        assert diagonal != Segment((0.0, 0.0), (9.0, 10.0))


class TestMeasures:
    def test_length(self):
        assert Segment((0, 0), (3, 4)).length() == 5.0

    def test_midpoint(self, diagonal):
        assert diagonal.midpoint() == (5.0, 5.0)

    def test_mbr(self):
        s = Segment((3.0, 1.0), (0.0, 2.0))
        assert s.mbr() == Rect((0.0, 1.0), (3.0, 2.0))


class TestDistance:
    def test_point_beyond_start_clamps_to_start(self, diagonal):
        assert diagonal.closest_point_to((-5.0, -5.0)) == (0.0, 0.0)

    def test_point_beyond_end_clamps_to_end(self, diagonal):
        assert diagonal.closest_point_to((20.0, 20.0)) == (10.0, 10.0)

    def test_perpendicular_projection(self):
        s = Segment((0.0, 0.0), (10.0, 0.0))
        assert s.closest_point_to((4.0, 3.0)) == (4.0, 0.0)
        assert s.distance_to((4.0, 3.0)) == 3.0

    def test_point_on_segment_has_zero_distance(self, diagonal):
        assert diagonal.distance_to((5.0, 5.0)) == pytest.approx(0.0)

    def test_degenerate_segment_distance(self):
        s = Segment((1.0, 1.0), (1.0, 1.0))
        assert s.distance_to((4.0, 5.0)) == 5.0

    def test_distance_never_below_mbr_mindist(self):
        # The object-distance soundness requirement of the NN search.
        from repro.core.metrics import mindist_squared

        s = Segment((2.0, 7.0), (9.0, 3.0))
        mbr = s.mbr()
        for q in [(-1.0, -1.0), (5.0, 5.0), (12.0, 8.0), (2.0, 7.0)]:
            assert s.distance_squared_to(q) >= mindist_squared(q, mbr) - 1e-12

    def test_dimension_mismatch(self, diagonal):
        with pytest.raises(DimensionMismatchError):
            diagonal.distance_to((1.0,))

    def test_3d_segment(self):
        s = Segment((0, 0, 0), (0, 0, 10))
        assert s.distance_to((3.0, 4.0, 5.0)) == 5.0
