"""Unit tests for repro.geometry.rect."""

import pytest

from repro.errors import (
    DimensionMismatchError,
    GeometryError,
    InvalidRectError,
)
from repro.geometry.rect import Rect


@pytest.fixture
def unit() -> Rect:
    return Rect((0.0, 0.0), (1.0, 1.0))


class TestConstruction:
    def test_basic(self, unit):
        assert unit.lo == (0.0, 0.0)
        assert unit.hi == (1.0, 1.0)
        assert unit.dimension == 2

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidRectError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Rect((0.0,), (1.0, 1.0))

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            Rect((), ())

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            Rect((float("nan"),), (1.0,))

    def test_degenerate_point_rect_is_valid(self):
        r = Rect((2.0, 2.0), (2.0, 2.0))
        assert r.is_degenerate()
        assert r.area() == 0.0

    def test_immutable(self, unit):
        with pytest.raises(AttributeError):
            unit.lo = (5.0, 5.0)

    def test_from_point(self):
        r = Rect.from_point((3.0, 4.0))
        assert r.lo == r.hi == (3.0, 4.0)

    def test_from_points(self):
        r = Rect.from_points([(0.0, 5.0), (2.0, 1.0), (1.0, 3.0)])
        assert r == Rect((0.0, 1.0), (2.0, 5.0))

    def test_from_points_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_union_all(self):
        rects = [Rect((0, 0), (1, 1)), Rect((2, -1), (3, 0.5))]
        assert Rect.union_all(rects) == Rect((0, -1), (3, 1))

    def test_union_all_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.union_all([])


class TestMeasures:
    def test_area(self):
        assert Rect((0, 0), (2, 3)).area() == 6.0

    def test_area_3d(self):
        assert Rect((0, 0, 0), (2, 3, 4)).area() == 24.0

    def test_margin(self):
        assert Rect((0, 0), (2, 3)).margin() == 5.0

    def test_center(self):
        assert Rect((0, 0), (2, 4)).center == (1.0, 2.0)

    def test_sides(self):
        assert Rect((0, 1), (2, 4)).sides() == (2.0, 3.0)
        assert Rect((0, 1), (2, 4)).side(1) == 3.0


class TestPredicates:
    def test_contains_point_inside_and_boundary(self, unit):
        assert unit.contains_point((0.5, 0.5))
        assert unit.contains_point((0.0, 1.0))
        assert not unit.contains_point((1.1, 0.5))

    def test_contains_point_dim_mismatch(self, unit):
        with pytest.raises(DimensionMismatchError):
            unit.contains_point((0.5,))

    def test_contains_rect(self, unit):
        assert unit.contains_rect(Rect((0.2, 0.2), (0.8, 0.8)))
        assert unit.contains_rect(unit)
        assert not unit.contains_rect(Rect((0.5, 0.5), (1.5, 0.9)))

    def test_intersects_overlap_and_touch(self, unit):
        assert unit.intersects(Rect((0.5, 0.5), (2.0, 2.0)))
        # Edge contact counts as intersection.
        assert unit.intersects(Rect((1.0, 0.0), (2.0, 1.0)))
        assert not unit.intersects(Rect((1.01, 0.0), (2.0, 1.0)))

    def test_intersects_symmetric(self, unit):
        other = Rect((0.9, 0.9), (2.0, 2.0))
        assert unit.intersects(other) == other.intersects(unit)


class TestCombinators:
    def test_union(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert a.union(b) == Rect((0, 0), (3, 3))

    def test_union_point(self, unit):
        assert unit.union_point((2.0, -1.0)) == Rect((0, -1), (2, 1))

    def test_intersection_overlapping(self, unit):
        got = unit.intersection(Rect((0.5, 0.5), (2.0, 2.0)))
        assert got == Rect((0.5, 0.5), (1.0, 1.0))

    def test_intersection_disjoint_is_none(self, unit):
        assert unit.intersection(Rect((2.0, 2.0), (3.0, 3.0))) is None

    def test_overlap_area(self, unit):
        assert unit.overlap_area(Rect((0.5, 0.0), (1.5, 1.0))) == 0.5
        assert unit.overlap_area(Rect((5, 5), (6, 6))) == 0.0

    def test_enlargement(self, unit):
        grown = unit.enlargement(Rect((0, 0), (2, 1)))
        assert grown == 1.0
        assert unit.enlargement(Rect((0.2, 0.2), (0.8, 0.8))) == 0.0

    def test_clamp_point(self, unit):
        assert unit.clamp_point((2.0, 0.5)) == (1.0, 0.5)
        assert unit.clamp_point((0.5, 0.5)) == (0.5, 0.5)
        assert unit.clamp_point((-1.0, -1.0)) == (0.0, 0.0)


class TestDunder:
    def test_equality_and_hash(self, unit):
        same = Rect((0.0, 0.0), (1.0, 1.0))
        assert unit == same
        assert hash(unit) == hash(same)
        assert unit != Rect((0.0, 0.0), (1.0, 2.0))

    def test_not_equal_to_other_types(self, unit):
        assert unit != "rect"

    def test_iter_unpacks_bounds(self, unit):
        lo, hi = unit
        assert lo == (0.0, 0.0)
        assert hi == (1.0, 1.0)

    def test_repr_roundtrip_info(self, unit):
        assert "lo=(0.0, 0.0)" in repr(unit)
