"""Unit tests for the Morton (Z-order) curve keys."""

import pytest

from repro.errors import InvalidParameterError
from repro.geometry.zorder import morton_index, morton_key_for_point


class TestMortonIndex:
    def test_order_one_2d(self):
        # Bit interleave: key = y<<1 | x for a 2x2 grid.
        assert morton_index((0, 0), 1) == 0
        assert morton_index((1, 0), 1) == 1
        assert morton_index((0, 1), 1) == 2
        assert morton_index((1, 1), 1) == 3

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_bijective_on_grid(self, dim):
        import itertools

        order = 2
        side = 1 << order
        keys = {
            morton_index(cells, order)
            for cells in itertools.product(range(side), repeat=dim)
        }
        assert keys == set(range(side**dim))

    def test_preserves_order_along_one_axis(self):
        keys = [morton_index((x, 0), 4) for x in range(16)]
        assert keys == sorted(keys)

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            morton_index((4, 0), 2)
        with pytest.raises(InvalidParameterError):
            morton_index((-1, 0), 2)

    def test_rejects_empty_or_bad_order(self):
        with pytest.raises(InvalidParameterError):
            morton_index((), 2)
        with pytest.raises(InvalidParameterError):
            morton_index((0,), 0)


class TestMortonKey:
    def test_any_dimension(self):
        key = morton_key_for_point(
            (0.5, 0.5, 0.5), (0.0, 0.0, 0.0), (1.0, 1.0, 1.0), order=4
        )
        assert 0 <= key < (1 << (4 * 3))

    def test_boundary_points_clamped(self):
        key = morton_key_for_point((1.0, 1.0), (0.0, 0.0), (1.0, 1.0), order=4)
        assert key == morton_index((15, 15), 4)

    def test_degenerate_axis(self):
        key = morton_key_for_point((5.0, 3.0), (5.0, 0.0), (5.0, 10.0))
        assert key >= 0

    def test_rejects_empty_point(self):
        with pytest.raises(InvalidParameterError):
            morton_key_for_point((), (), ())
