"""Slow-query log mechanics: ring buffer, JSONL persistence, summaries."""

import io

import pytest

from repro.errors import InvalidParameterError
from repro.obs import (
    SlowQueryLog,
    SlowQueryRecord,
    Trace,
    load_jsonl,
    render_top,
    summarize_records,
)

pytestmark = pytest.mark.obs


def _record(request_id, latency_ms, config="dfs k=3", **stats):
    return SlowQueryRecord(
        request_id=request_id,
        latency_ms=latency_ms,
        config=config,
        stats=stats,
    )


class TestSlowQueryLog:
    def test_ring_drops_oldest_but_counts_all(self):
        log = SlowQueryLog(capacity=3)
        for i in range(5):
            log.add(_record(i, float(i)))
        assert len(log) == 3
        assert log.observed == 5
        assert [r.request_id for r in log.records()] == [2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(InvalidParameterError):
            SlowQueryLog(capacity=0)

    def test_clear_keeps_observed(self):
        log = SlowQueryLog(capacity=4)
        log.add(_record(1, 1.0))
        log.clear()
        assert len(log) == 0
        assert log.observed == 1


class TestJsonlRoundtrip:
    def test_roundtrip_preserves_trace(self):
        trace = Trace(request_id=7, label="slow")
        trace.enter(0, 3, False, 0.0)
        trace.prune("p3", 1, 4, 9.0, 1.0)
        log = SlowQueryLog(capacity=4)
        log.add(
            SlowQueryRecord(
                request_id=7, latency_ms=12.5, config="dfs k=10",
                stats={"nodes_accessed": 8}, trace=trace,
            )
        )
        log.add(_record(8, 3.25))
        buf = io.StringIO()
        assert log.dump_jsonl(buf) == 2
        buf.seek(0)
        loaded = load_jsonl(buf)
        assert [r.request_id for r in loaded] == [7, 8]
        assert loaded[0].latency_ms == 12.5
        assert loaded[0].stats == {"nodes_accessed": 8}
        assert loaded[0].trace is not None
        assert loaded[0].trace.events == trace.events
        assert loaded[1].trace is None

    def test_blank_lines_skipped(self):
        buf = io.StringIO(
            '\n{"request_id":1,"latency_ms":2.0,"config":"c"}\n\n'
        )
        assert [r.request_id for r in load_jsonl(buf)] == [1]

    def test_malformed_line_reports_line_number(self):
        buf = io.StringIO(
            '{"request_id":1,"latency_ms":2.0,"config":"c"}\nnot json\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            load_jsonl(buf)


class TestSummaries:
    def _records(self):
        return [
            _record(1, 10.0, "dfs k=3", nodes_accessed=20, p3_pruned=4),
            _record(2, 30.0, "dfs k=3", nodes_accessed=40, p1_pruned=2),
            _record(
                3, 20.0, "best-first k=3", nodes_accessed=30,
                pages_skipped_corrupt=2,
            ),
        ]

    def test_summarize_figures(self):
        summary = summarize_records(self._records())
        assert summary["count"] == 3
        assert summary["latency_ms_max"] == 30.0
        assert summary["latency_ms_min"] == 10.0
        assert summary["latency_ms_mean"] == pytest.approx(20.0)
        assert summary["pages_mean"] == pytest.approx(30.0)
        assert summary["pruned_mean"] == pytest.approx(2.0)
        assert summary["pages_skipped_corrupt"] == 2
        assert summary["by_config"] == {"dfs k=3": 2, "best-first k=3": 1}

    def test_summarize_empty(self):
        assert summarize_records([]) == {"count": 0}

    def test_render_top_orders_worst_first(self):
        text = render_top(self._records(), limit=2)
        assert "3 record(s)" in text
        assert "corrupt pages skipped" in text
        assert "config x2: dfs k=3" in text
        worst_section = text[text.index("worst 2"):]
        assert worst_section.index("#2") < worst_section.index("#3")
        assert "#1" not in worst_section

    def test_render_empty(self):
        assert render_top([]) == "slow-query log: empty"
