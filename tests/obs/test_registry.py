"""Metrics registry: instruments, the as_dict() protocol, exporters."""

import json
import threading

import pytest

from repro.core.stats import SearchStats
from repro.errors import InvalidParameterError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    export_jsonl,
    export_prometheus,
)
from repro.service.cache import ResultCache
from repro.service.stats import LatencyRecorder, log_bucket_edge
from repro.storage.buffer import LruBufferPool
from repro.storage.tracker import CountingTracker

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(InvalidParameterError):
            c.inc(-1)
        assert c.as_dict() == {"value": 5}

    def test_gauge_moves_both_ways(self):
        g = Gauge("inflight")
        g.set(3)
        g.add(-1)
        assert g.value == 2.0

    def test_histogram_buckets_match_latency_recorder_edges(self):
        h = Histogram("latency_s")
        recorder = LatencyRecorder()
        for s in (0.001, 0.003, 0.01, 0.05, 0.2):
            h.observe(s)
            recorder.record(s)
        assert h.count == 5
        # Same log-bucket scheme: identical conservative percentiles.
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert h.percentile(fraction) == recorder.percentile(fraction)
        edges = [edge for edge, _ in h.buckets()]
        assert edges == sorted(edges)

    def test_histogram_outlier_costs_one_sparse_bucket(self):
        h = Histogram("wild")
        h.observe(1e-6)
        h.observe(1e9)  # would saturate a fixed-width recorder
        assert h.count == 2
        assert h.percentile(1.0) == 1e9  # capped at the observed max
        assert h.as_dict()["max"] == 1e9

    def test_histogram_validation(self):
        with pytest.raises(InvalidParameterError):
            Histogram("bad", base=0.0)
        with pytest.raises(InvalidParameterError):
            Histogram("bad", growth=1.0)
        with pytest.raises(InvalidParameterError):
            Histogram("h").percentile(1.5)

    def test_histogram_concurrent_observe(self):
        h = Histogram("mt")

        def worker():
            for i in range(1000):
                h.observe(i * 1e-6)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8000


class TestRegistry:
    def test_collect_flattens_sources(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests")
        requests.inc(7)
        depth = registry.gauge("queue_depth")
        depth.set(2)
        stats = SearchStats()
        stats.nodes_accessed = 11
        registry.register("search", stats)
        registry.register("callable", lambda: {"live": 1.5})
        flat = registry.collect()
        assert flat["requests"] == 7  # bare name for single-value
        assert flat["queue_depth"] == 2.0
        assert flat["search.nodes_accessed"] == 11
        assert flat["search.p1_pruned"] == 0  # PruningStats flattened in
        assert flat["callable.live"] == 1.5
        assert registry.sources() == [
            "callable", "queue_depth", "requests", "search",
        ]

    def test_all_six_stats_classes_register(self):
        """The tentpole protocol: every stats class exports via as_dict."""
        from repro.core.pruning import PruningStats
        from repro.service.stats import EngineStats

        registry = MetricsRegistry()
        registry.register("search", SearchStats())
        registry.register("pruning", PruningStats())
        registry.register("cache", ResultCache(4).stats)
        registry.register("buffer", LruBufferPool(4).stats)
        tracker = CountingTracker()
        registry.register("access", lambda: tracker.stats)
        registry.register(
            "engine",
            EngineStats(
                queries=4, cache_hits=1, executed=3, cache_invalidated=0,
                epoch=0, workers=1, latency_p50_ms=0.0, latency_p95_ms=0.0,
                latency_p99_ms=0.0, latency_mean_ms=0.0, latency_max_ms=0.0,
                pages_per_query=0.0, physical_reads=0,
                objects_per_query=0.0, max_queue_depth=1,
            ),
        )
        flat = registry.collect()
        assert "search.nodes_accessed" in flat
        assert "pruning.p3_pruned" in flat
        assert "cache.hit_ratio" in flat
        assert "buffer.hit_ratio" in flat
        assert "access.total" in flat
        assert "engine.latency_max_ms" in flat

    def test_live_source_rereads_on_collect(self):
        registry = MetricsRegistry()
        cache = ResultCache(4)
        registry.register("cache", cache.stats)
        assert registry.collect()["cache.lookups"] == 0
        cache.get("missing")
        assert registry.collect()["cache.lookups"] == 1

    def test_register_validation_and_unregister(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError):
            registry.register("", Counter("x"))
        registry.register("a", {"v": 1})
        registry.unregister("a")
        assert registry.sources() == []

    def test_bad_source_fails_loudly_at_collect(self):
        registry = MetricsRegistry()
        registry.register("junk", object())
        with pytest.raises(InvalidParameterError):
            registry.collect()


class TestExporters:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        stats = SearchStats()
        stats.nodes_accessed = 4
        registry.register("search", stats)
        return registry

    def test_jsonl_is_one_sorted_compact_object(self):
        line = export_jsonl(self._registry(), extra={"run": "t1"})
        assert "\n" not in line
        record = json.loads(line)
        assert record["run"] == "t1"
        assert record["requests"] == 3
        assert record["search.nodes_accessed"] == 4
        assert list(record) == sorted(record)

    def test_prometheus_types_and_names(self):
        text = export_prometheus(self._registry())
        assert "# TYPE repro_requests counter" in text
        assert "repro_requests 3" in text
        assert "# TYPE repro_search_nodes_accessed gauge" in text
        assert text.endswith("\n")

    def test_prometheus_skips_non_numeric_values(self):
        registry = MetricsRegistry()
        registry.register("mixed", {"ok": 1, "label": "text", "flag": True})
        text = export_prometheus(registry)
        assert "repro_mixed_ok 1" in text
        assert "label" not in text
        assert "flag" not in text

    def test_histogram_exports_derived_figures(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        h.observe(0.004)
        flat = registry.collect()
        assert flat["lat.count"] == 1
        assert flat["lat.p99"] == pytest.approx(0.004, rel=0.25)
        edge = log_bucket_edge(0)
        assert flat["lat.p50"] >= edge or flat["lat.p50"] > 0
