"""The advisor: windowed registry deltas → structured recommendations."""

import pytest

from repro.datasets import uniform_points
from repro.datasets.queries import (
    query_points_clustered_sessions,
    query_points_uniform,
)
from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.obs import Advisor, MetricsRegistry, Recommendation
from repro.service.options import EngineOptions
from repro.shard import ShardedQueryEngine

pytestmark = pytest.mark.obs


class _FakeSource:
    """A mutable dict registered as a live metrics source."""

    def __init__(self, **values):
        self.values = dict(values)

    def __call__(self):
        return dict(self.values)

    def update(self, **values):
        self.values.update(values)


def _advisor(source_name, source, **kwargs):
    registry = MetricsRegistry()
    registry.register(source_name, source)
    kwargs.setdefault("min_queries", 10)
    return Advisor(registry, **kwargs)


class TestValidation:
    def test_window_too_small(self):
        with pytest.raises(InvalidParameterError):
            Advisor(MetricsRegistry(), window=1)

    @pytest.mark.parametrize("kwargs", [
        {"drift_ratio": 1.0}, {"drift_ratio": 0.5},
        {"skew_ratio": 1.0}, {"skew_ratio": 0.9},
    ])
    def test_ratios_must_exceed_one(self, kwargs):
        with pytest.raises(InvalidParameterError):
            Advisor(MetricsRegistry(), **kwargs)


class TestObservation:
    def test_needs_two_snapshots(self):
        advisor = _advisor("engine", _FakeSource(queries=0))
        assert advisor.recommendations() == []
        advisor.observe()
        assert advisor.recommendations() == []
        advisor.observe()
        assert advisor.snapshots == 2

    def test_window_is_bounded(self):
        advisor = _advisor("engine", _FakeSource(queries=0), window=3)
        for _ in range(10):
            advisor.observe()
        assert advisor.snapshots == 3

    def test_non_numeric_and_bool_values_skipped(self):
        source = _FakeSource(queries=1, ready=True, label="x")
        advisor = _advisor("engine", source)
        advisor.observe()
        snap = advisor._snapshots[0]
        assert "engine.queries" in snap
        assert "engine.ready" not in snap
        assert "engine.label" not in snap


class TestPagesDriftRule:
    def _drift(self, early_ppq, recent_ppq, queries_per_phase=100):
        source = _FakeSource(pages_per_query=0.0, executed=0)
        advisor = _advisor("engine", source, window=3)
        advisor.observe()
        # Phase 1: queries at early_ppq pages each.
        executed = queries_per_phase
        pages = early_ppq * queries_per_phase
        source.update(
            pages_per_query=pages / executed, executed=executed
        )
        advisor.observe()
        # Phase 2: same volume at recent_ppq pages each.
        executed += queries_per_phase
        pages += recent_ppq * queries_per_phase
        source.update(
            pages_per_query=pages / executed, executed=executed
        )
        advisor.observe()
        return advisor.recommendations()

    def test_fires_on_drift(self):
        recs = self._drift(early_ppq=10.0, recent_ppq=30.0)
        kinds = [r.kind for r in recs]
        assert "re-pack" in kinds
        (rec,) = [r for r in recs if r.kind == "re-pack"]
        assert rec.severity == "warn"
        assert rec.evidence["ratio"] == pytest.approx(3.0)
        assert rec.evidence["early_pages_per_query"] == pytest.approx(10.0)
        assert rec.evidence["recent_pages_per_query"] == pytest.approx(30.0)

    def test_quiet_on_steady_cost(self):
        assert self._drift(early_ppq=10.0, recent_ppq=11.0) == []

    def test_quiet_below_min_queries(self):
        assert self._drift(
            early_ppq=10.0, recent_ppq=30.0, queries_per_phase=4
        ) == []

    def test_quiet_when_idle(self):
        source = _FakeSource(pages_per_query=12.0, executed=500)
        advisor = _advisor("engine", source, window=3)
        for _ in range(3):  # no new work between snapshots
            advisor.observe()
        assert advisor.recommendations() == []


class TestShardSkewRule:
    def _skew(self, page_deltas, requests=200):
        values = {}
        for i in range(len(page_deltas)):
            values[f"shard{i}.pages"] = 0
            values[f"shard{i}.requests"] = 0
        source = _FakeSource(**values)
        advisor = _advisor("shards", source, window=2)
        advisor.observe()
        per_shard = requests // len(page_deltas)
        source.update(**{
            key: value
            for i, delta in enumerate(page_deltas)
            for key, value in {
                f"shard{i}.pages": delta,
                f"shard{i}.requests": per_shard,
            }.items()
        })
        advisor.observe()
        return advisor.recommendations()

    def test_fires_on_hot_shard(self):
        recs = self._skew([1000, 50, 50, 50])
        (rec,) = [r for r in recs if r.kind == "shard-rebalance"]
        assert rec.evidence["hot_shard"] == 0.0
        assert rec.evidence["ratio"] > 2.0
        assert "shard 0" in rec.message

    def test_quiet_on_balanced_shards(self):
        assert self._skew([100, 110, 95, 105]) == []

    def test_quiet_below_min_queries(self):
        assert self._skew([1000, 50, 50, 50], requests=8) == []


class TestCoalescerAndCacheRules:
    def test_coalesce_tune_fires_on_empty_windows(self):
        source = _FakeSource(window_fill_rate=0.01, requests=0)
        advisor = _advisor("server.coalescer", source, window=2)
        advisor.observe()
        source.update(requests=500)
        advisor.observe()
        (rec,) = advisor.recommendations()
        assert rec.kind == "coalesce-tune"
        assert rec.severity == "info"
        assert rec.evidence["window_fill_rate"] == pytest.approx(0.01)

    def test_coalesce_quiet_on_healthy_fill(self):
        source = _FakeSource(window_fill_rate=0.4, requests=0)
        advisor = _advisor("server.coalescer", source, window=2)
        advisor.observe()
        source.update(requests=500)
        advisor.observe()
        assert advisor.recommendations() == []

    def test_cache_tune_fires_on_cold_cache(self):
        source = _FakeSource(queries=0, cache_hits=0)
        advisor = _advisor("engine", source, window=2)
        advisor.observe()
        source.update(queries=400, cache_hits=3)
        advisor.observe()
        (rec,) = advisor.recommendations()
        assert rec.kind == "cache-tune"
        assert rec.evidence["hit_rate"] == pytest.approx(3 / 400)

    def test_cache_quiet_on_warm_cache(self):
        source = _FakeSource(queries=0, cache_hits=0)
        advisor = _advisor("engine", source, window=2)
        advisor.observe()
        source.update(queries=400, cache_hits=200)
        advisor.observe()
        assert advisor.recommendations() == []


class TestRendering:
    def test_render_no_advice(self):
        advisor = Advisor(MetricsRegistry())
        assert advisor.render() == "advisor: no recommendations"

    def test_render_includes_evidence(self):
        source = _FakeSource(queries=0, cache_hits=0)
        advisor = _advisor("engine", source, window=2)
        advisor.observe()
        source.update(queries=400, cache_hits=0)
        advisor.observe()
        text = advisor.render()
        assert "[info] cache-tune:" in text
        assert "hit_rate=0" in text

    def test_recommendation_as_dict(self):
        rec = Recommendation(
            kind="re-pack", severity="warn", message="m", evidence={"r": 2.0}
        )
        assert rec.as_dict() == {
            "kind": "re-pack",
            "severity": "warn",
            "message": "m",
            "evidence": {"r": 2.0},
        }


@pytest.mark.shard
class TestSeededWorkloadDrift:
    """The ISSUE's acceptance scenario: a workload that drifts from
    uniform queries to clustered sessions hammering one spatial region
    must trip the shard-rebalance advice on a real sharded engine."""

    def test_clustered_sessions_trip_shard_rebalance(self):
        points = uniform_points(1200, seed=31)
        items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
        # Cache off: clustered sessions re-ask identical points, and a
        # result-cache hit does no page work — the drift must reach the
        # shards to be measurable there.
        engine = ShardedQueryEngine(
            items=items,
            shards=4,
            processes=False,
            options=EngineOptions(cache_size=0),
        )
        registry = MetricsRegistry()
        engine.register_metrics(registry)
        advisor = Advisor(registry, window=4, min_queries=50)
        try:
            # Phase 1 — the workload the partition was planned for:
            # uniform queries spread page work across all shards.
            advisor.observe()
            for q in query_points_uniform(120, seed=32):
                engine.query(q, k=5)
            advisor.observe()
            assert not any(
                r.kind == "shard-rebalance"
                for r in advisor.recommendations()
            )

            # Phase 2 — drift: clustered sessions re-ask from hot spots
            # around one corner of the space, so one spatial shard
            # absorbs nearly all the traversal work.
            corner = [p for p in points if p[0] < 150 and p[1] < 150]
            assert len(corner) >= 5
            sessions = query_points_clustered_sessions(
                240, corner, distinct=6, seed=33, noise=5.0
            )
            for q in sessions:
                engine.query(q, k=5)
            advisor.observe()
        finally:
            engine.close()

        recs = advisor.recommendations()
        rebalance = [r for r in recs if r.kind == "shard-rebalance"]
        assert rebalance, advisor.render()
        assert rebalance[0].evidence["ratio"] >= advisor.skew_ratio
