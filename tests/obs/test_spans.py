"""Request-span primitives: context, sampler, log, assembly, JSONL."""

import io
import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.spans import (
    Span,
    SpanContext,
    SpanLog,
    SpanSampler,
    WIRE_PARENT,
    build_span_tree,
    group_traces,
    load_spans_jsonl,
    new_trace_id,
    render_spans,
)

pytestmark = pytest.mark.obs


class TestSpanContext:
    def test_start_end_records_a_span(self):
        ctx = SpanContext()
        open_span = ctx.start("http.request", path="/query")
        open_span.annotate(status=200)
        span_id = open_span.end(bytes_out=64)
        (span,) = ctx.spans()
        assert span.span_id == span_id
        assert span.trace_id == ctx.trace_id
        assert span.parent_id is None
        assert span.name == "http.request"
        assert span.attrs == {"path": "/query", "status": 200, "bytes_out": 64}
        assert span.duration_ms >= 0.0

    def test_parent_links_form_a_tree(self):
        ctx = SpanContext()
        root = ctx.start("root")
        child = ctx.start("child", parent=root.id)
        child.end()
        ctx.add("leaf", 0.0, 1.0, parent=child.id)
        root.end()
        by_name = {s.name: s for s in ctx.spans()}
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["leaf"].parent_id == by_name["child"].span_id

    def test_ids_are_unique_and_monotonic(self):
        ctx = SpanContext()
        ids = [ctx.start(f"s{i}").end() for i in range(32)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 32

    def test_add_records_premeasured_span(self):
        ctx = SpanContext()
        span_id = ctx.add(
            "queue", 123.0, 4.5, attrs={"policy": "lifo"}
        )
        (span,) = ctx.spans()
        assert span.span_id == span_id
        assert span.start_s == 123.0
        assert span.duration_ms == 4.5
        assert span.attrs == {"policy": "lifo"}

    def test_context_manager_records_errors(self):
        ctx = SpanContext()
        with pytest.raises(RuntimeError):
            with ctx.start("work"):
                raise RuntimeError("boom")
        (span,) = ctx.spans()
        assert span.attrs["error"] == "RuntimeError"

    def test_unsampled_context_is_inert(self):
        ctx = SpanContext(sampled=False)
        assert ctx.start("root") is None
        assert ctx.add("queue", 0.0, 1.0) is None
        ctx.graft([("w", WIRE_PARENT, 0.0, 1.0, ())])
        assert ctx.spans() == []

    def test_explicit_trace_id_is_kept(self):
        ctx = SpanContext(trace_id="deadbeefdeadbeef")
        assert ctx.trace_id == "deadbeefdeadbeef"

    def test_new_trace_ids_are_distinct_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            int(trace_id, 16)
            assert len(trace_id) == 16


class TestGraft:
    def test_wire_records_reroot_under_parent(self):
        ctx = SpanContext()
        rpc = ctx.start("shard0.rpc")
        ctx.graft(
            [
                ("shard.queue", WIRE_PARENT, 10.0, 1.0, (("depth", 2),)),
                ("shard.kernel", 0, 10.001, 3.0, (("pages", 7),)),
            ],
            parent=rpc.id,
        )
        rpc.end()
        by_name = {s.name: s for s in ctx.spans()}
        assert by_name["shard.queue"].parent_id == by_name["shard0.rpc"].span_id
        # Relative link 0 resolves to the first record *of the batch*.
        assert (
            by_name["shard.kernel"].parent_id
            == by_name["shard.queue"].span_id
        )
        assert by_name["shard.kernel"].attrs == {"pages": 7}

    def test_concurrent_batches_get_fresh_ids(self):
        ctx = SpanContext()
        for shard in range(3):
            ctx.graft(
                [("shard.kernel", WIRE_PARENT, 0.0, 1.0, ())], parent=None
            )
        ids = [s.span_id for s in ctx.spans()]
        assert len(set(ids)) == 3

    def test_forward_parent_rel_rejected(self):
        ctx = SpanContext()
        with pytest.raises(InvalidParameterError):
            ctx.graft([("bad", 0, 0.0, 1.0, ())])
        with pytest.raises(InvalidParameterError):
            ctx.graft(
                [
                    ("a", WIRE_PARENT, 0.0, 1.0, ()),
                    ("b", 5, 0.0, 1.0, ()),
                ]
            )


class TestSpanSampler:
    def test_rate_validation(self):
        with pytest.raises(InvalidParameterError):
            SpanSampler(-0.1)
        with pytest.raises(InvalidParameterError):
            SpanSampler(1.1)

    def test_rate_zero_never_samples(self):
        sampler = SpanSampler(0.0)
        assert not any(sampler.decide() for _ in range(100))

    def test_rate_one_always_samples(self):
        sampler = SpanSampler(1.0)
        assert all(sampler.decide() for _ in range(100))

    def test_seed_makes_decisions_reproducible(self):
        first = SpanSampler(0.5, seed=42)
        second = SpanSampler(0.5, seed=42)
        a = [first.decide() for _ in range(64)]
        b = [second.decide() for _ in range(64)]
        assert a == b
        assert any(a) and not all(a)


class TestSpanLog:
    def _trace(self, name="root"):
        ctx = SpanContext()
        ctx.start(name).end()
        return ctx

    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            SpanLog(0)

    def test_ring_keeps_most_recent_traces(self):
        log = SpanLog(capacity=2)
        first = self._trace("first")
        log.observe(first)
        log.observe(self._trace("second"))
        log.observe(self._trace("third"))
        names = [s.name for s in log.records()]
        assert names == ["second", "third"]
        assert log.stats() == {"observed": 3, "kept": 2}

    def test_empty_context_not_observed(self):
        log = SpanLog()
        log.observe(SpanContext(sampled=False))
        assert log.stats() == {"observed": 0, "kept": 0}

    def test_dump_jsonl_round_trips(self):
        log = SpanLog()
        log.observe(self._trace())
        buf = io.StringIO()
        assert log.dump_jsonl(buf) == 1
        buf.seek(0)
        (span,) = load_spans_jsonl(buf)
        assert span.name == "root"


class TestAssemblyAndRendering:
    def test_build_span_tree_children_and_orphans(self):
        ctx = SpanContext()
        root = ctx.start("root")
        ctx.add("child", 1.0, 1.0, parent=root.id)
        root.end()
        # A span whose parent never made it into the dump (truncated
        # trace) must be promoted to a root, not dropped.
        orphan = Span(ctx.trace_id, 99, 42, "orphan", 2.0, 1.0)
        roots = build_span_tree(ctx.spans() + [orphan])
        names = {node.span.name for node in roots}
        assert names == {"root", "orphan"}
        (root_node,) = [n for n in roots if n.span.name == "root"]
        assert [c.span.name for c in root_node.children] == ["child"]

    def test_group_traces_preserves_order(self):
        spans = [
            Span("t1", 1, None, "a", 0.0, 1.0),
            Span("t2", 1, None, "b", 0.0, 1.0),
            Span("t1", 2, 1, "c", 0.0, 1.0),
        ]
        groups = group_traces(spans)
        assert list(groups) == ["t1", "t2"]
        assert [s.name for s in groups["t1"]] == ["a", "c"]

    def test_render_spans_shows_names_attrs_and_limit(self):
        traces = []
        for i in range(3):
            ctx = SpanContext()
            span = ctx.start(f"req{i}", path="/query")
            ctx.add("kernel", 0.0, 1.0, parent=span.id, attrs={"pages": i})
            span.end()
            traces.extend(ctx.spans())
        text = render_spans(traces)
        assert "req0" in text and "req2" in text
        assert "pages=2" in text and "path=/query" in text
        tail = render_spans(traces, limit=1)
        assert "req2" in tail and "req0" not in tail

    def test_render_spans_empty_input(self):
        assert render_spans([]) == ""


class TestJsonl:
    def test_context_dump_and_load_round_trip(self):
        ctx = SpanContext()
        root = ctx.start("http.request", path="/batch")
        ctx.add("kernel", 5.0, 2.5, parent=root.id, attrs={"pages": 3})
        root.end(status=200)
        buf = io.StringIO()
        assert ctx.dump_jsonl(buf) == 2
        buf.seek(0)
        loaded = load_spans_jsonl(buf)
        assert [s.to_dict() for s in loaded] == ctx.to_dicts()

    def test_blank_lines_skipped(self):
        ctx = SpanContext()
        ctx.start("root").end()
        buf = io.StringIO()
        ctx.dump_jsonl(buf)
        buf.write("\n\n")
        buf.seek(0)
        assert len(load_spans_jsonl(buf)) == 1

    def test_malformed_line_reports_line_number(self):
        good = json.dumps(
            Span("t", 1, None, "a", 0.0, 1.0).to_dict()
        )
        buf = io.StringIO(good + "\n{not json}\n")
        with pytest.raises(ValueError, match="line 2"):
            load_spans_jsonl(buf)

    def test_span_dict_round_trip(self):
        span = Span("t", 3, 1, "kernel", 1.5, 2.0, {"pages": 4})
        assert Span.from_dict(span.to_dict()) == span
