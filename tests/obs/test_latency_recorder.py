"""LatencyRecorder: the conservative-percentile contract, under load.

The recorder promises percentiles that never under-report and carry at
most 25% relative error (one log bucket of growth 1.25).  These tests
pin that contract with a hypothesis property test, check the estimator
against a serial ground truth under 8-thread concurrent recording, and
exercise the saturation path added for unbounded samples.
"""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.service.stats import (
    LatencyRecorder,
    log_bucket_edge,
    log_bucket_index,
)

pytestmark = [pytest.mark.obs, pytest.mark.service]

#: Largest representable sample: the upper edge of the last bucket.
_LAST_EDGE = log_bucket_edge(95)


def _true_percentile(samples, fraction):
    """Smallest sample whose cumulative fraction reaches *fraction* —
    the same convention the recorder's cumulative-count scan uses."""
    ordered = sorted(samples)
    if fraction == 0.0:
        return ordered[0]
    rank = math.ceil(fraction * len(ordered) - 1e-9)
    return ordered[max(0, rank - 1)]


class TestConservativeEstimate:
    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-6, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
        fraction=st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    def test_never_under_reports_and_bounded_error(self, samples, fraction):
        recorder = LatencyRecorder()
        for s in samples:
            recorder.record(s)
        estimate = recorder.percentile(fraction)
        truth = _true_percentile(samples, fraction)
        # Conservative: the bucket's upper edge is >= every sample in it.
        assert estimate >= truth * (1.0 - 1e-12)
        # Bounded: one growth-1.25 bucket of slack (and the cap at max
        # can only pull the estimate down toward the truth).
        assert estimate <= truth * 1.25 * (1.0 + 1e-9)

    def test_percentile_one_is_exactly_the_max(self):
        recorder = LatencyRecorder()
        for s in (0.002, 0.017, 0.3):
            recorder.record(s)
        # Capped at the true max, not the containing bucket's edge.
        assert recorder.percentile(1.0) == 0.3
        assert log_bucket_edge(log_bucket_index(0.3)) > 0.3

    def test_fraction_validation(self):
        recorder = LatencyRecorder()
        with pytest.raises(InvalidParameterError):
            recorder.percentile(-0.1)
        with pytest.raises(InvalidParameterError):
            recorder.percentile(1.5)

    def test_empty_recorder_reads_zero(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(0.5) == 0.0
        snap = recorder.snapshot_ms()
        assert snap == (0.0, 0.0, 0.0, 0.0, 0.0)


class TestConcurrentRecording:
    def test_eight_threads_match_serial_ground_truth(self):
        per_thread = 2000
        threads = 8

        def samples_for(worker):
            # Deterministic, spread across ~5 decades, distinct per thread.
            return [
                1e-6 * (1.0 + ((worker * per_thread + i) * 7919) % 100000)
                for i in range(per_thread)
            ]

        all_samples = [samples_for(w) for w in range(threads)]

        concurrent = LatencyRecorder()
        barrier = threading.Barrier(threads)

        def worker(my_samples):
            barrier.wait()
            for s in my_samples:
                concurrent.record(s)

        pool = [
            threading.Thread(target=worker, args=(chunk,))
            for chunk in all_samples
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        serial = LatencyRecorder()
        for chunk in all_samples:
            for s in chunk:
                serial.record(s)

        assert concurrent.count == serial.count == threads * per_thread
        c_snap, s_snap = concurrent.snapshot_ms(), serial.snapshot_ms()
        assert c_snap.p50_ms == s_snap.p50_ms
        assert c_snap.p95_ms == s_snap.p95_ms
        assert c_snap.p99_ms == s_snap.p99_ms
        assert c_snap.max_ms == s_snap.max_ms
        # Mean is a float sum: addition order differs across schedules.
        assert c_snap.mean_ms == pytest.approx(s_snap.mean_ms, rel=1e-9)
        assert concurrent.mean() == pytest.approx(serial.mean(), rel=1e-9)
        assert concurrent.overflows == serial.overflows == 0


class TestSaturation:
    def test_overflow_saturates_with_observable_counter(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        huge = _LAST_EDGE * 1000.0
        recorder.record(huge)
        assert recorder.overflows == 1
        assert recorder.count == 2
        # max reports the true value even though the bucket saturated...
        assert recorder.snapshot_ms().max_ms == pytest.approx(huge * 1000.0)
        # ...while the percentile answers from the saturated bucket's
        # edge — bounded by construction, with the clipping visible in
        # ``overflows`` rather than silently absorbed.
        assert recorder.percentile(1.0) == _LAST_EDGE

    def test_in_range_samples_do_not_count_as_overflow(self):
        recorder = LatencyRecorder()
        recorder.record(_LAST_EDGE * 0.99)
        assert recorder.overflows == 0

    def test_negative_sample_clamps_to_zero(self):
        recorder = LatencyRecorder()
        recorder.record(-5.0)
        assert recorder.count == 1
        assert recorder.overflows == 0
        assert recorder.percentile(1.0) == 0.0

    def test_as_dict_reports_accounting(self):
        recorder = LatencyRecorder()
        recorder.record(0.004)
        recorder.record(_LAST_EDGE * 2.0)
        out = recorder.as_dict()
        assert out["count"] == 2
        assert out["overflows"] == 1
        assert out["max_ms"] == pytest.approx(_LAST_EDGE * 2.0 * 1000.0)
        assert out["mean_ms"] > 0.0
