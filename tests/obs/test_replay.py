"""Capture/replay harness: digests, config round-trip, recorder, replay."""

import io

import pytest

from repro.core.budget import Budget
from repro.core.config import QueryConfig
from repro.core.neighbors import Neighbor
from repro.core.pruning import PruningConfig
from repro.core.query import NNResult
from repro.core.stats import SearchStats
from repro.datasets import uniform_points
from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.obs.replay import (
    CaptureLog,
    CapturedQuery,
    QueryRecorder,
    config_from_dict,
    config_to_dict,
    digest_result,
    replay,
)
from repro.rtree.tree import RTree
from repro.service.engine import QueryEngine
from repro.service.options import EngineOptions

pytestmark = pytest.mark.obs


def _result(pairs, truncated=False):
    neighbors = [
        Neighbor(
            payload=payload,
            rect=Rect.from_point((0.0, 0.0)),
            distance=d_sq ** 0.5,
            distance_squared=d_sq,
        )
        for payload, d_sq in pairs
    ]
    stats = SearchStats()
    stats.truncated = truncated
    return NNResult(neighbors=neighbors, stats=stats)


def _build_engine(n=300, seed=5, **options):
    points = uniform_points(n, seed=seed)
    tree = RTree(max_entries=8)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    return QueryEngine(tree, options=EngineOptions(**options))


class TestDigest:
    def test_digest_is_deterministic(self):
        a = digest_result(_result([(1, 0.25), (2, 0.5)]))
        b = digest_result(_result([(1, 0.25), (2, 0.5)]))
        assert a == b

    def test_digest_covers_payload_distance_order_and_truncation(self):
        base = digest_result(_result([(1, 0.25), (2, 0.5)]))
        assert digest_result(_result([(9, 0.25), (2, 0.5)])) != base
        assert digest_result(_result([(1, 0.26), (2, 0.5)])) != base
        assert digest_result(_result([(2, 0.5), (1, 0.25)])) != base
        assert (
            digest_result(_result([(1, 0.25), (2, 0.5)], truncated=True))
            != base
        )

    def test_digest_excludes_stats_page_counts(self):
        # Backends disagree on page counts (sharding splits the
        # traversal); the digest must not see them.
        one = _result([(1, 0.25)])
        other = _result([(1, 0.25)])
        other.stats.nodes_accessed = 999
        assert digest_result(one) == digest_result(other)

    def test_digest_distinguishes_distance_bit_patterns(self):
        assert (
            digest_result(_result([(1, 0.1 + 0.2)]))
            != digest_result(_result([(1, 0.3)]))
        )


class TestConfigRoundTrip:
    @pytest.mark.parametrize(
        "cfg",
        [
            QueryConfig(),
            QueryConfig(k=7, algorithm="best-first", epsilon=0.25),
            QueryConfig(
                k=3,
                ordering="minmaxdist",
                pruning=PruningConfig(use_p1=False, use_p2=True, use_p3=True),
            ),
            QueryConfig(
                k=5, budget=Budget(max_pages=64, on_exhausted="truncate")
            ),
        ],
    )
    def test_round_trip(self, cfg):
        rebuilt = config_from_dict(config_to_dict(cfg))
        assert config_to_dict(rebuilt) == config_to_dict(cfg)
        assert rebuilt.k == cfg.k
        assert rebuilt.algorithm == cfg.algorithm
        assert rebuilt.epsilon == cfg.epsilon

    def test_object_distance_hook_rejected(self):
        cfg = QueryConfig(object_distance_sq=lambda q, rect: 0.0)
        with pytest.raises(InvalidParameterError):
            config_to_dict(cfg)

    def test_dict_is_json_safe(self):
        import json

        cfg = QueryConfig(k=2, budget=Budget(deadline_ms=10.0))
        json.dumps(config_to_dict(cfg))


class TestCaptureLog:
    def _record(self, i=0):
        return CapturedQuery(
            point=(float(i), 0.5),
            config=config_to_dict(QueryConfig(k=3)),
            epoch=1,
            digest="ab" * 32,
        )

    def test_jsonl_round_trip(self):
        log = CaptureLog([self._record(i) for i in range(4)])
        buf = io.StringIO()
        assert log.dump_jsonl(buf) == 4
        buf.seek(0)
        loaded = CaptureLog.load_jsonl(buf)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in log]

    def test_malformed_line_reports_line_number(self):
        buf = io.StringIO('{"point": [0, 0]}\n')
        with pytest.raises(ValueError, match="line 1"):
            CaptureLog.load_jsonl(buf)


class TestRecorderAndReplay:
    def test_recorder_captures_and_passes_through(self):
        engine = _build_engine(cache_size=0)
        recorder = QueryRecorder(engine)
        try:
            result = recorder.query((0.5, 0.5), config=QueryConfig(k=3))
            assert len(result.neighbors) == 3
            recorder.query_batch(
                [(0.1, 0.1), (0.9, 0.9)], config=QueryConfig(k=2)
            )
        finally:
            engine.close()
        assert len(recorder.log) == 3
        first = recorder.log.records[0]
        assert first.point == (0.5, 0.5)
        assert first.config["k"] == 3
        assert first.digest

    def test_recorder_delegates_unknown_attributes(self):
        engine = _build_engine(cache_size=0)
        recorder = QueryRecorder(engine)
        try:
            assert recorder.snapshot().epoch == engine.snapshot().epoch
        finally:
            engine.close()

    def test_replay_matches_against_fresh_identical_engine(self):
        first = _build_engine(cache_size=0)
        recorder = QueryRecorder(first)
        queries = uniform_points(20, seed=9)
        try:
            for q in queries:
                recorder.query(q, config=QueryConfig(k=5))
        finally:
            first.close()

        second = _build_engine(cache_size=0)
        try:
            report = replay(second, recorder.log)
        finally:
            second.close()
        assert report.ok, report.render()
        assert report.matched == len(queries)
        assert report.mismatches == []

    def test_replay_is_deterministic(self):
        engine = _build_engine(cache_size=0)
        recorder = QueryRecorder(engine)
        try:
            for q in uniform_points(15, seed=11):
                recorder.query(q, config=QueryConfig(k=4))
            first = replay(engine, recorder.log)
            second = replay(engine, recorder.log)
        finally:
            engine.close()
        assert first.stream_digest == second.stream_digest
        assert first.ok and second.ok

    def test_replay_detects_divergent_state(self):
        engine = _build_engine(seed=5, cache_size=0)
        recorder = QueryRecorder(engine)
        try:
            for q in uniform_points(10, seed=13):
                recorder.query(q, config=QueryConfig(k=3))
        finally:
            engine.close()

        other = _build_engine(seed=6, cache_size=0)  # different dataset
        try:
            report = replay(other, recorder.log)
        finally:
            other.close()
        assert not report.ok
        assert report.mismatches
        miss = report.mismatches[0]
        assert miss.expected != miss.actual
        assert "mismatch" in report.render()

    def test_replay_epoch_skip(self):
        engine = _build_engine(cache_size=0)
        recorder = QueryRecorder(engine)
        try:
            recorder.query((0.5, 0.5), config=QueryConfig(k=2))
            stale = CapturedQuery(
                point=(0.5, 0.5),
                config=config_to_dict(QueryConfig(k=2)),
                epoch=recorder.log.records[0].epoch + 7,
                digest="00" * 32,
            )
            recorder.log.append(stale)
            report = replay(engine, recorder.log, check_epoch=True)
        finally:
            engine.close()
        assert report.epoch_skipped == 1
        assert report.matched == 1
        assert report.ok

    def test_cache_does_not_change_digests(self):
        # A caching engine must replay identically: cached answers are
        # still the same answers.
        engine = _build_engine(cache_size=64)
        recorder = QueryRecorder(engine)
        try:
            for _ in range(2):  # second pass hits the cache
                recorder.query((0.25, 0.75), config=QueryConfig(k=3))
            report = replay(engine, recorder.log)
        finally:
            engine.close()
        assert report.ok, report.render()
        digests = [r.digest for r in recorder.log]
        assert digests[0] == digests[1]
