"""Promtool-style validation of the Prometheus exposition exporter.

Satellite of the observability PR: the registry's ``export()`` text is
what a real scraper ingests, so the exporter is held to the exposition
format by an in-repo linter — and the linter itself is proven against
crafted-bad documents for every rule it claims to check.
"""

import math

import pytest

from repro.obs import MetricsRegistry, export_prometheus, lint_prometheus

pytestmark = pytest.mark.obs


def _serving_registry():
    """A registry shaped like the full serving stack's wiring."""
    registry = MetricsRegistry()
    registry.counter("server.requests").inc(41)
    registry.gauge("server.connections_open").set(3)
    registry.histogram("server.latency_s").observe(0.004)
    registry.register(
        "engine",
        {
            "queries": 100,
            "cache_hits": 7,
            "pages_per_query": 11.25,
            "ready": True,  # skipped: booleans are not samples
        },
    )
    registry.register(
        "server.coalescer",
        {"requests": 90, "window_fill_rate": 0.31, "bypassed": 4},
    )
    registry.register(
        "shards", {"shard0.pages": 1200, "shard1.pages": 1180}
    )
    return registry


class TestExporterIsLintClean:
    def test_full_serving_registry_passes(self):
        text = export_prometheus(_serving_registry())
        assert lint_prometheus(text) == []

    def test_every_sample_has_help_and_type(self):
        text = export_prometheus(_serving_registry())
        samples = [
            line.split()[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert samples, text
        for name in samples:
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} " in text

    def test_help_carries_the_flat_key(self):
        text = export_prometheus(_serving_registry())
        assert "# HELP repro_server_coalescer_window_fill_rate " \
            "server.coalescer.window_fill_rate" in text

    def test_non_finite_values_render_as_exposition_tokens(self):
        registry = MetricsRegistry()
        registry.register(
            "edge",
            {
                "pos": math.inf,
                "neg": -math.inf,
                "nan": math.nan,
            },
        )
        text = export_prometheus(registry)
        assert "repro_edge_pos +Inf" in text
        assert "repro_edge_neg -Inf" in text
        assert "repro_edge_nan NaN" in text
        # Python float spellings must never leak into a scrape.
        assert " inf" not in text and " nan" not in text
        assert lint_prometheus(text) == []

    def test_sanitization_collision_emits_one_series(self):
        # "a.b" and "a_b" both sanitize to repro_a_b; two label-less
        # samples under one name are a protocol error, so the exporter
        # keeps the first flat key and drops the rest.
        registry = MetricsRegistry()
        registry.register("a", {"b": 1})
        registry.gauge("a_b").set(2)
        text = export_prometheus(registry)
        assert text.count("\nrepro_a_b ") + text.startswith("repro_a_b ") == 1
        assert lint_prometheus(text) == []

    def test_help_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.register("odd", {"k\\ey\nline": 1})
        text = export_prometheus(registry)
        for line in text.splitlines():
            if line.startswith("# HELP"):
                assert "\\n" in line or "\n" not in line
        assert lint_prometheus(text) == []

    def test_trailing_newline(self):
        assert export_prometheus(MetricsRegistry()).endswith("\n")


class TestLintCatchesBadDocuments:
    def test_clean_minimal_document(self):
        text = (
            "# HELP m a metric\n"
            "# TYPE m gauge\n"
            "m 1\n"
        )
        assert lint_prometheus(text) == []

    def test_missing_trailing_newline(self):
        text = "# HELP m x\n# TYPE m gauge\nm 1"
        assert any("newline" in p for p in lint_prometheus(text))

    def test_invalid_metric_name(self):
        text = "# HELP 9bad x\n# TYPE 9bad gauge\n9bad 1\n"
        problems = lint_prometheus(text)
        assert any("invalid metric name" in p for p in problems)

    def test_python_float_spellings_rejected(self):
        for bad in ("inf", "nan", "-inf"):
            text = f"# HELP m x\n# TYPE m gauge\nm {bad}\n"
            assert any(
                "invalid sample value" in p for p in lint_prometheus(text)
            ), bad

    def test_exposition_tokens_accepted(self):
        for good in ("+Inf", "-Inf", "NaN", "1.5e-3", "-2", ".5"):
            text = f"# HELP m x\n# TYPE m gauge\nm {good}\n"
            assert lint_prometheus(text) == [], good

    def test_duplicate_help_and_type(self):
        text = (
            "# HELP m x\n# HELP m y\n"
            "# TYPE m gauge\n# TYPE m gauge\nm 1\n"
        )
        problems = lint_prometheus(text)
        assert any("duplicate HELP" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)

    def test_duplicate_labelless_sample(self):
        text = "# HELP m x\n# TYPE m gauge\nm 1\nm 2\n"
        assert any(
            "duplicate sample" in p for p in lint_prometheus(text)
        )

    def test_type_after_samples(self):
        text = "m 1\n# TYPE m gauge\n"
        problems = lint_prometheus(text)
        assert any("after its samples" in p for p in problems)
        assert any("without a # TYPE" in p for p in problems)

    def test_invalid_metric_type(self):
        text = "# HELP m x\n# TYPE m metervalue\nm 1\n"
        assert any(
            "invalid metric type" in p for p in lint_prometheus(text)
        )

    def test_malformed_help_and_sample_lines(self):
        problems = lint_prometheus("# HELP m\nm 1 2 3 4\n")
        assert any("malformed HELP" in p for p in problems)
        assert any("malformed sample" in p for p in problems)

    def test_timestamped_sample_allowed(self):
        text = "# HELP m x\n# TYPE m gauge\nm 1 1700000000\n"
        assert lint_prometheus(text) == []

    def test_plain_comments_ignored(self):
        text = "# scraped by test\n# HELP m x\n# TYPE m gauge\nm 1\n"
        assert lint_prometheus(text) == []

    def test_empty_document_is_clean(self):
        assert lint_prometheus("") == []
        assert lint_prometheus("\n") == []
