"""Traced packed kernels and the corrupt-page propagation sweep.

Two contracts:

1. The traced packed kernels (``repro.packed.traced``) return the same
   neighbors and ``SearchStats`` as the untraced packed kernels and the
   object kernels, for every algorithm/ordering/pruning/epsilon combo —
   and their trace streams match the object kernels' event-for-event
   (modulo ``exit`` placement, which differs between recursion and an
   explicit stack).
2. ``pages_skipped_corrupt`` propagates through the packed kernels and
   the ``nearest_batch`` merge paths identically to the object kernels
   (the instrumenting-sweep bugfix), exercised with
   ``FaultInjectingPageFile``.
"""

import warnings

import pytest

from repro import bulk_load
from repro.core.batch import nearest_batch
from repro.core.knn_best_first import nearest_best_first
from repro.core.knn_dfs import nearest_dfs
from repro.core.pruning import PruningConfig
from repro.core.query import nearest
from repro.datasets.synthetic import uniform_points
from repro.errors import CorruptionWarning
from repro.obs import Trace
from repro.packed.kernels import packed_nearest_best_first, packed_nearest_dfs
from repro.packed.layout import PackedTree
from repro.rtree.disk import DiskRTree, write_tree
from repro.storage.faults import FaultInjectingPageFile, FaultPlan

pytestmark = [pytest.mark.obs, pytest.mark.packed]

QUERIES = [(500.0, 500.0), (50.0, 950.0), (700.0, 120.0)]


@pytest.fixture(scope="module")
def tree():
    points = uniform_points(800, seed=91)
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=8)


@pytest.fixture(scope="module")
def ptree(tree):
    return PackedTree.from_tree(tree)


class TestTracedEquivalence:
    @pytest.mark.parametrize("ordering", ["mindist", "minmaxdist"])
    @pytest.mark.parametrize(
        "pruning", [None, PruningConfig.none(), PruningConfig.all()]
    )
    @pytest.mark.parametrize("k", [1, 5])
    def test_traced_dfs_matches_untraced_and_object(
        self, tree, ptree, ordering, pruning, k
    ):
        for query in QUERIES:
            trace = Trace()
            tr_nb, tr_stats = packed_nearest_dfs(
                ptree, query, k=k, ordering=ordering, pruning=pruning,
                trace=trace,
            )
            un_nb, un_stats = packed_nearest_dfs(
                ptree, query, k=k, ordering=ordering, pruning=pruning
            )
            obj_nb, obj_stats = nearest_dfs(
                tree, query, k=k, ordering=ordering, pruning=pruning
            )
            assert [n.payload for n in tr_nb] == [n.payload for n in un_nb]
            assert [n.payload for n in tr_nb] == [n.payload for n in obj_nb]
            assert [n.distance for n in tr_nb] == [n.distance for n in obj_nb]
            assert tr_stats == un_stats == obj_stats
            counts = trace.counts()
            assert trace.pages_entered() == tr_stats.nodes_accessed
            assert counts.get("p1", 0) == tr_stats.pruning.p1_pruned
            assert counts.get("p2", 0) == tr_stats.pruning.p2_bound_updates
            assert counts.get("p3", 0) == tr_stats.pruning.p3_pruned

    @pytest.mark.parametrize("epsilon", [0.0, 0.5])
    def test_traced_best_first_matches(self, tree, ptree, epsilon):
        for query in QUERIES:
            trace = Trace()
            tr_nb, tr_stats = packed_nearest_best_first(
                ptree, query, k=4, epsilon=epsilon, trace=trace
            )
            un_nb, un_stats = packed_nearest_best_first(
                ptree, query, k=4, epsilon=epsilon
            )
            obj_nb, obj_stats = nearest_best_first(
                tree, query, k=4, epsilon=epsilon
            )
            assert [n.payload for n in tr_nb] == [n.payload for n in un_nb]
            assert [n.payload for n in tr_nb] == [n.payload for n in obj_nb]
            assert tr_stats == un_stats == obj_stats
            assert trace.pages_entered() == tr_stats.nodes_accessed

    def test_packed_trace_matches_object_trace(self, tree, ptree):
        """Same traversal → same events (exits excluded: recursion emits
        them post-subtree, the explicit stack pre-push)."""
        for k in (1, 5):
            for query in QUERIES:
                obj_trace = Trace()
                nearest_dfs(tree, query, k=k, trace=obj_trace)
                pk_trace = Trace()
                packed_nearest_dfs(ptree, query, k=k, trace=pk_trace)
                obj_events = [
                    e for e in obj_trace.events if e[0] != "exit"
                ]
                pk_events = [e for e in pk_trace.events if e[0] != "exit"]
                assert pk_events == obj_events

    def test_nd_general_traced_path(self):
        points = [(float(i % 17), float(i % 13), float(i % 7))
                  for i in range(300)]
        tree3 = bulk_load(
            [(p, i) for i, p in enumerate(points)], max_entries=8
        )
        ptree3 = PackedTree.from_tree(tree3)
        trace = Trace()
        tr_nb, tr_stats = packed_nearest_dfs(
            ptree3, (8.0, 6.0, 3.0), k=5, trace=trace
        )
        obj_nb, obj_stats = nearest_dfs(tree3, (8.0, 6.0, 3.0), k=5)
        assert [n.payload for n in tr_nb] == [n.payload for n in obj_nb]
        assert tr_stats == obj_stats
        assert trace.pages_entered() == tr_stats.nodes_accessed


class TestCorruptSkipPropagation:
    """pages_skipped_corrupt: packed == object, query by query."""

    N = 300
    PAGE_SIZE = 1024

    @pytest.fixture
    def disk_path(self, tmp_path):
        points = uniform_points(self.N, seed=92)
        tree = bulk_load(
            [(p, i) for i, p in enumerate(points)], max_entries=16
        )
        path = tmp_path / "tree.rnn"
        write_tree(tree, path, page_size=self.PAGE_SIZE)
        return path

    def _leaf_page(self, disk_path):
        with DiskRTree(disk_path, page_size=self.PAGE_SIZE) as disk:
            node = disk.root
            while not node.is_leaf:
                node = node.entries[0].child
            return node.node_id

    def _open_degraded(self, disk_path, leaf_page):
        pages = FaultInjectingPageFile(
            disk_path,
            page_size=self.PAGE_SIZE,
            plan=FaultPlan(flip_pages=frozenset([leaf_page])),
        )
        return DiskRTree(page_file=pages, on_corrupt="skip")

    def test_packed_query_reports_compile_time_skips(self, disk_path):
        leaf_page = self._leaf_page(disk_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CorruptionWarning)
            with self._open_degraded(disk_path, leaf_page) as disk:
                # Object kernel: a full traversal re-skips the page.
                obj = nearest(disk, (500.0, 500.0), k=self.N)
                assert obj.stats.pages_skipped_corrupt == 1
                ptree = PackedTree.from_tree(disk)
                assert ptree.pages_skipped_corrupt == 1
                for query in QUERIES:
                    obj_full = nearest(disk, query, k=self.N)
                    pk_nb, pk_stats = packed_nearest_dfs(
                        ptree, query, k=self.N
                    )
                    # Identical propagation: same count, same degraded
                    # flag, same (degraded) answer.
                    assert (
                        pk_stats.pages_skipped_corrupt
                        == obj_full.stats.pages_skipped_corrupt
                        == 1
                    )
                    assert pk_stats.degraded and obj_full.stats.degraded
                    assert [n.payload for n in pk_nb] == [
                        n.payload for n in obj_full
                    ]
                    bf_nb, bf_stats = packed_nearest_best_first(
                        ptree, query, k=self.N
                    )
                    assert bf_stats.pages_skipped_corrupt == 1
                    assert [n.payload for n in bf_nb] == [
                        n.payload for n in pk_nb
                    ]

    def test_traced_packed_records_skip_events(self, disk_path):
        leaf_page = self._leaf_page(disk_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CorruptionWarning)
            with self._open_degraded(disk_path, leaf_page) as disk:
                ptree = PackedTree.from_tree(disk)
        trace = Trace()
        _, stats = packed_nearest_dfs(ptree, (500.0, 500.0), k=3, trace=trace)
        assert stats.pages_skipped_corrupt == 1
        assert ("skips", 1) in trace.events

    def test_batch_merge_paths_agree(self, disk_path):
        leaf_page = self._leaf_page(disk_path)
        queries = QUERIES
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CorruptionWarning)
            with self._open_degraded(disk_path, leaf_page) as disk:
                obj_results, obj_combined, _ = nearest_batch(
                    disk, queries, k=self.N, packed=False
                )
            with self._open_degraded(disk_path, leaf_page) as disk:
                pk_results, pk_combined, _ = nearest_batch(
                    disk, queries, k=self.N, packed=True
                )
        assert all(r.stats.pages_skipped_corrupt == 1 for r in obj_results)
        assert all(r.stats.pages_skipped_corrupt == 1 for r in pk_results)
        assert (
            obj_combined.pages_skipped_corrupt
            == pk_combined.pages_skipped_corrupt
            == len(queries)
        )

    def test_all_corrupt_snapshot_compiles_empty_but_degraded(
        self, disk_path
    ):
        with DiskRTree(disk_path, page_size=self.PAGE_SIZE) as disk:
            root_page = disk.root.node_id
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CorruptionWarning)
            with self._open_degraded(disk_path, root_page) as disk:
                ptree = PackedTree.from_tree(disk)
        neighbors, stats = packed_nearest_dfs(ptree, (500.0, 500.0), k=3)
        assert neighbors == []
        assert stats.pages_skipped_corrupt >= 1
        assert stats.degraded
