"""QueryEngine forensics: request ids, tail sampling, the slow-query log."""

import io

import pytest

from repro import bulk_load
from repro.core.config import QueryConfig
from repro.datasets.synthetic import uniform_points
from repro.errors import InvalidParameterError
from repro.obs import Trace, load_jsonl
from repro.service.engine import QueryEngine

pytestmark = [pytest.mark.obs, pytest.mark.service]


@pytest.fixture(scope="module")
def tree():
    points = uniform_points(400, seed=93)
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=8)


QUERIES = [(100.0, 100.0), (500.0, 500.0), (900.0, 100.0)]


class TestRequestIds:
    def test_user_trace_gets_monotonic_request_id(self, tree):
        with QueryEngine(tree, config=QueryConfig(k=2), workers=1) as eng:
            seen = []
            for query in QUERIES:
                trace = Trace()
                eng.query(query, trace=trace)
                seen.append(trace.request_id)
            assert seen == sorted(seen)
            assert len(set(seen)) == len(seen)
            assert all(rid >= 1 for rid in seen)

    def test_cache_verdict_recorded_in_trace(self, tree):
        with QueryEngine(tree, config=QueryConfig(k=2), workers=1) as eng:
            miss = Trace()
            eng.query(QUERIES[0], trace=miss)
            hit = Trace()
            eng.query(QUERIES[0], trace=hit)
            assert ("cache", "miss") in miss.events
            assert ("cache", "hit") in hit.events
            # A hit runs no search: the trace holds only the verdict.
            assert hit.pages_entered() == 0
            assert miss.pages_entered() >= 1


class TestSlowQueryLog:
    def test_threshold_zero_logs_every_executed_query(self, tree):
        with QueryEngine(
            tree, config=QueryConfig(k=3), workers=1, slow_query_ms=0.0
        ) as eng:
            for query in QUERIES:
                eng.query(query)
            records = eng.slow_queries.records()
            assert len(records) == 3
            assert [r.request_id for r in records] == sorted(
                r.request_id for r in records
            )
            for record in records:
                # Tail sampling attaches a full trace to every offender.
                assert record.trace is not None
                assert record.trace.pages_entered() == record.stats[
                    "nodes_accessed"
                ]
                assert record.config == QueryConfig(k=3).describe()
                assert record.latency_ms >= 0.0

    def test_cache_hits_never_logged(self, tree):
        with QueryEngine(
            tree, config=QueryConfig(k=3), workers=1, slow_query_ms=0.0
        ) as eng:
            eng.query(QUERIES[0])
            eng.query(QUERIES[0])  # hit — executes nothing
            assert eng.slow_queries.observed == 1
            assert eng.stats().cache_hits == 1

    def test_unreachable_threshold_logs_nothing(self, tree):
        with QueryEngine(
            tree, config=QueryConfig(k=3), workers=1, slow_query_ms=1e9
        ) as eng:
            for query in QUERIES:
                eng.query(query)
            assert len(eng.slow_queries) == 0

    def test_forensics_disabled_by_default(self, tree):
        with QueryEngine(tree, workers=1) as eng:
            eng.query(QUERIES[0])
            assert eng.slow_queries is None

    def test_negative_threshold_rejected(self, tree):
        with pytest.raises(InvalidParameterError):
            QueryEngine(tree, slow_query_ms=-1.0)

    def test_user_trace_is_preserved_in_record(self, tree):
        with QueryEngine(
            tree, config=QueryConfig(k=2), workers=1, slow_query_ms=0.0
        ) as eng:
            trace = Trace(label="mine")
            eng.query(QUERIES[0], trace=trace)
            record = eng.slow_queries.records()[0]
            assert record.trace is trace
            assert record.request_id == trace.request_id

    def test_dump_then_cli_load_roundtrip(self, tree):
        with QueryEngine(
            tree, config=QueryConfig(k=3), workers=1, slow_query_ms=0.0
        ) as eng:
            for query in QUERIES:
                eng.query(query)
            buf = io.StringIO()
            eng.slow_queries.dump_jsonl(buf)
        buf.seek(0)
        loaded = load_jsonl(buf)
        assert len(loaded) == 3
        assert all(r.trace is not None for r in loaded)


class TestEngineStatsExport:
    def test_export_flattens_for_registry(self, tree):
        from repro.obs import MetricsRegistry

        with QueryEngine(tree, config=QueryConfig(k=2), workers=1) as eng:
            eng.query(QUERIES[0])
            eng.query(QUERIES[0])
            registry = MetricsRegistry()
            registry.register("engine", lambda: eng.stats())
            flat = registry.collect()
            assert flat["engine.queries"] == 2
            assert flat["engine.cache_hits"] == 1
            assert flat["engine.hit_ratio"] == pytest.approx(0.5)
            assert flat["engine.latency_max_ms"] >= flat[
                "engine.latency_p50_ms"
            ] * 0  # both present and numeric
            snap = eng.stats()
            assert snap.export() == snap.as_dict()
