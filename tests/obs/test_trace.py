"""Trace correctness: the event stream must be faithful evidence.

The load-bearing guarantee is equivalence with the audit's ``on_prune``
hook: for any query, ``trace.prune_events()`` reproduces the hook's
``(kind, node, value)`` stream event-for-event.  Everything else —
tree reconstruction, rendering, serialization — builds on that stream.
"""

import json

import pytest

from repro import bulk_load
from repro.audit.soundness import check_pruning_soundness
from repro.core.config import QueryConfig
from repro.core.knn_best_first import nearest_best_first, nearest_incremental
from repro.core.knn_dfs import nearest_dfs
from repro.core.pruning import PruningConfig
from repro.core.query import nearest
from repro.datasets.synthetic import gaussian_clusters, uniform_points
from repro.obs import Trace, build_trace_tree, render_trace

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def tree():
    points = uniform_points(600, seed=77)
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=8)


@pytest.fixture(scope="module")
def clustered_tree():
    points = gaussian_clusters(500, seed=78)
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=8)


QUERIES = [(500.0, 500.0), (10.0, 990.0), (250.0, 250.0)]


class TestTracePrimitives:
    def test_emitters_and_counts(self):
        trace = Trace()
        trace.enter(0, 7, False, 0.0)
        trace.bound(0, 12.5)
        trace.prune("p1", 1, 8, 20.0, 12.5)
        trace.enter(1, 9, True, 1.0)
        trace.accept(1, 2.0)
        trace.exit(1, 9)
        trace.prune("p3", 1, 10, 30.0, 2.0)
        trace.exit(0, 7)
        assert len(trace) == 8
        assert trace.counts() == {
            "enter": 2, "exit": 2, "p1": 1, "p2": 1, "p3": 1, "accept": 1,
        }
        assert trace.pages_entered() == 2
        assert trace.prune_events() == [
            ("p2", None, 12.5), ("p1", 8, 20.0), ("p3", 10, 30.0),
        ]

    def test_zero_skips_is_a_no_op(self):
        trace = Trace()
        trace.skips(0)
        assert trace.events == []
        trace.skips(3)
        assert trace.events == [("skips", 3)]

    def test_json_roundtrip(self):
        trace = Trace(request_id=42, label="demo")
        trace.meta["k"] = 3
        trace.enter(0, 1, False, 0.0)
        trace.prune("p3", 1, 2, 9.0, 4.0)
        trace.cache("miss")
        rebuilt = Trace.from_dict(json.loads(trace.to_json()))
        assert rebuilt.request_id == 42
        assert rebuilt.label == "demo"
        assert rebuilt.meta == {"k": 3}
        assert rebuilt.events == trace.events
        assert rebuilt.prune_events() == trace.prune_events()


class TestPruneEventEquivalence:
    """Trace events match the on_prune hook output event-for-event."""

    @pytest.mark.parametrize("ordering", ["mindist", "minmaxdist"])
    @pytest.mark.parametrize("k", [1, 4])
    def test_dfs_matches_hook(self, tree, ordering, k):
        for query in QUERIES:
            hooked = []
            trace = Trace()
            traced_nb, traced_stats = nearest_dfs(
                tree,
                query,
                k=k,
                ordering=ordering,
                on_prune=lambda kind, node, value: hooked.append(
                    (kind, node.node_id if node is not None else None, value)
                ),
                trace=trace,
            )
            assert trace.prune_events() == hooked
            # The traced run is still the exact search.
            plain_nb, plain_stats = nearest_dfs(
                tree, query, k=k, ordering=ordering
            )
            assert [n.payload for n in traced_nb] == [
                n.payload for n in plain_nb
            ]
            assert traced_stats == plain_stats

    @pytest.mark.parametrize(
        "pruning",
        [PruningConfig.all(), PruningConfig.none(), PruningConfig(
            use_p1=False, use_p2=False, use_p3=True)],
    )
    def test_pruning_ablation_matches_hook(self, clustered_tree, pruning):
        hooked = []
        trace = Trace()
        nearest_dfs(
            clustered_tree,
            (500.0, 500.0),
            k=1,
            pruning=pruning,
            on_prune=lambda kind, node, value: hooked.append(
                (kind, node.node_id if node is not None else None, value)
            ),
            trace=trace,
        )
        assert trace.prune_events() == hooked

    def test_prune_counts_match_stats(self, tree):
        trace = Trace()
        _, stats = nearest_dfs(tree, (333.0, 777.0), k=3, trace=trace)
        counts = trace.counts()
        assert counts.get("p1", 0) == stats.pruning.p1_pruned
        assert counts.get("p2", 0) == stats.pruning.p2_bound_updates
        assert counts.get("p3", 0) == stats.pruning.p3_pruned
        assert trace.pages_entered() == stats.nodes_accessed
        assert counts.get("accept", 0) >= 3


class TestKernelCoverage:
    def test_best_first_emits_enters_and_accepts(self, tree):
        trace = Trace()
        neighbors, stats = nearest_best_first(
            tree, (400.0, 600.0), k=5, trace=trace
        )
        assert trace.pages_entered() == stats.nodes_accessed
        assert trace.counts().get("accept", 0) >= len(neighbors)

    def test_incremental_emits_accept_per_yield(self, tree):
        trace = Trace()
        taken = []
        for neighbor in nearest_incremental(tree, (100.0, 100.0), trace=trace):
            taken.append(neighbor)
            if len(taken) == 7:
                break
        assert trace.counts().get("accept", 0) == 7
        assert trace.pages_entered() >= 1

    def test_facade_sets_meta_and_traces(self, tree):
        trace = Trace()
        result = nearest(
            tree, (222.0, 444.0), config=QueryConfig(k=2), trace=trace
        )
        assert trace.meta["k"] == 2
        assert trace.meta["algorithm"] == "dfs"
        assert trace.meta["point"] == (222.0, 444.0)
        assert trace.pages_entered() == result.stats.nodes_accessed


class TestTraceTreeAndRendering:
    def test_tree_reconstruction_accounts_every_visit(self, tree):
        trace = Trace()
        _, stats = nearest_dfs(tree, (500.0, 500.0), k=4, trace=trace)
        root = build_trace_tree(trace)
        assert root is not None
        assert root.depth == 0
        assert not root.is_leaf
        assert root.subtree_pages() == stats.nodes_accessed

    def test_render_lists_header_and_prunes(self, tree):
        trace = Trace(label="unit")
        nearest_dfs(tree, (500.0, 500.0), k=4, trace=trace)
        text = render_trace(trace)
        assert text.startswith("trace:")
        assert "unit" in text
        assert "[subtree pages:" in text
        if trace.counts().get("p3"):
            assert "pruned page=" in text

    def test_render_empty_trace(self):
        text = render_trace(Trace())
        assert "(no node visits recorded)" in text


class TestAuditIntegration:
    def test_soundness_check_accepts_trace_evidence(self, tree):
        items = [
            (entry.rect, entry.payload)
            for leaf in _leaves(tree.root)
            for entry in leaf.entries
        ]
        trace = Trace()
        violations = check_pruning_soundness(
            tree, items, (500.0, 500.0), k=3, trace=trace
        )
        assert violations == []
        assert trace.pages_entered() >= 1

    def test_tampered_trace_is_a_violation(self, tree):
        items = [
            (entry.rect, entry.payload)
            for leaf in _leaves(tree.root)
            for entry in leaf.entries
        ]

        class Tampered(Trace):
            """Evidence that drops its first prune event."""

            def prune_events(self):
                return super().prune_events()[1:]

        trace = Tampered()
        violations = check_pruning_soundness(
            tree, items, (500.0, 500.0), k=3, trace=trace
        )
        assert trace.prune_events()  # the run did prune something
        assert any(v.kind == "trace-mismatch" for v in violations)


def _leaves(node):
    if node.is_leaf:
        yield node
        return
    for entry in node.entries:
        yield from _leaves(entry.child)
