"""The ``python -m repro.obs`` command-line entry points."""

import io
import json

import pytest

from repro import bulk_load
from repro.core.config import QueryConfig
from repro.datasets.synthetic import uniform_points
from repro.obs.cli import main
from repro.service.engine import QueryEngine

pytestmark = pytest.mark.obs


class TestTraceCommand:
    def test_renders_tree_and_neighbors(self, capsys):
        code = main(
            ["trace", "--n", "300", "--seed", "4", "--k", "3",
             "--point", "500", "500"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("trace:")
        assert "3 nearest neighbors" in out
        assert "payload=" in out

    def test_json_output_is_a_trace_dict(self, capsys):
        code = main(["trace", "--n", "200", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["meta"]["k"] == 5
        assert any(event[0] == "enter" for event in data["events"])

    def test_best_first_algorithm(self, capsys):
        code = main(
            ["trace", "--n", "200", "--algorithm", "best-first", "--k", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm=best-first" in out


class TestTopCommand:
    def test_reads_engine_dump(self, tmp_path, capsys):
        points = uniform_points(400, seed=6)
        tree = bulk_load(
            [(p, i) for i, p in enumerate(points)], max_entries=8
        )
        path = tmp_path / "slow.jsonl"
        with QueryEngine(
            tree, config=QueryConfig(k=4), workers=1, slow_query_ms=0.0
        ) as eng:
            for query in [(10.0, 10.0), (990.0, 990.0)]:
                eng.query(query)
            with open(path, "w") as fp:
                eng.slow_queries.dump_jsonl(fp)
        code = main(["top", str(path), "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 record(s)" in out
        assert "worst 1:" in out

    def test_missing_file_fails_cleanly(self, capsys):
        code = main(["top", "/no/such/file.jsonl"])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot read" in captured.err

    def test_malformed_log_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        code = main(["top", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "line 1" in captured.err
