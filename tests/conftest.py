"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import os

import pytest
from hypothesis import settings

from repro import RTree, bulk_load
from repro.core.neighbors import Neighbor
from repro.datasets import gaussian_clusters, uniform_points


# Hypothesis effort profiles: default keeps the suite fast; set
# REPRO_HYPOTHESIS_PROFILE=thorough for a deeper soak (e.g. nightly runs).
settings.register_profile("default", deadline=None)
settings.register_profile("thorough", deadline=None, max_examples=500)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


def assert_same_distances(
    actual: Sequence[Neighbor],
    expected: Sequence[Neighbor],
    tolerance: float = 1e-9,
) -> None:
    """Two k-NN answers agree if their distance sequences agree.

    Payloads may legitimately differ under exact ties, so correctness is
    defined on distances (which is also how the paper defines the result).
    """
    assert len(actual) == len(expected), (
        f"result sizes differ: {len(actual)} vs {len(expected)}"
    )
    for i, (a, e) in enumerate(zip(actual, expected)):
        assert abs(a.distance - e.distance) <= tolerance, (
            f"distance #{i} differs: {a.distance} vs {e.distance}"
        )


def build_point_tree(
    points: Sequence[Sequence[float]],
    max_entries: int = 8,
    **kwargs,
) -> RTree:
    """Insert points one by one into a fresh tree, payload = index."""
    tree = RTree(max_entries=max_entries, **kwargs)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    return tree


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xBEEF)


@pytest.fixture
def small_points() -> List[Tuple[float, float]]:
    """100 uniform points — enough to force several node splits."""
    return uniform_points(100, seed=11)


@pytest.fixture
def medium_points() -> List[Tuple[float, float]]:
    """1500 uniform points — a tree of height >= 3 at fanout 8."""
    return uniform_points(1500, seed=12)


@pytest.fixture
def clustered_points() -> List[Tuple[float, float]]:
    return gaussian_clusters(800, seed=13)


@pytest.fixture
def small_tree(small_points) -> RTree:
    return build_point_tree(small_points)


@pytest.fixture
def medium_tree(medium_points) -> RTree:
    return build_point_tree(medium_points)


@pytest.fixture
def bulk_tree(medium_points) -> RTree:
    return bulk_load(
        [(p, i) for i, p in enumerate(medium_points)], max_entries=16
    )
