"""Fixtures for the multi-process sharded-engine suite.

The tie-heavy workload is the adversarial one for a cross-process
merge: grid-snapped duplicate points sit at *exactly* equal distances
from grid-aligned queries, and the STR partitioner is guaranteed to cut
straight through duplicate groups — so any slip in the merge's tie
discipline (or any float drift crossing the process boundary) shows up
as a distance-sequence mismatch against the single-tree packed kernel.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.datasets import uniform_points
from repro.geometry.rect import Rect


def grid_tie_items(
    side: int = 12, copies: int = 3
) -> List[Tuple[Rect, int]]:
    """``copies`` duplicate points on every cell of a ``side``x``side`` grid."""
    items: List[Tuple[Rect, int]] = []
    payload = 0
    for gx in range(side):
        for gy in range(side):
            for _ in range(copies):
                items.append(
                    (Rect.from_point((float(gx), float(gy))), payload)
                )
                payload += 1
    return items


def tie_queries(side: int = 12) -> List[Tuple[float, float]]:
    """Grid-aligned and cell-center queries — maximally tie-provoking."""
    queries = [(float(g), float(g)) for g in range(0, side, 3)]
    queries += [(g + 0.5, g + 0.5) for g in range(0, side - 1, 3)]
    queries += [(float(side) / 2.0, 0.0), (0.0, float(side) / 2.0)]
    return queries


@pytest.fixture(scope="module")
def tie_items() -> List[Tuple[Rect, int]]:
    return grid_tie_items()


@pytest.fixture(scope="module")
def uniform_items() -> List[Tuple[Rect, int]]:
    points = uniform_points(600, seed=77)
    return [(Rect.from_point(p), i) for i, p in enumerate(points)]
