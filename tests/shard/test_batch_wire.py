"""The batched shard path: columnar wire codec + `query_batch` parity.

`query_batch` is the amortized path the front door's micro-batch
coalescer dispatches through, so its contract is precise: **answers**
(payloads, distances, truncation verdicts, frontier bounds) must be
bit-identical to per-query `query` calls, while the **effort counters**
legitimately differ — the batch path skips the shard-level P3 prune, so
its `nodes_accessed` reflects the full fan-out.  Tests here therefore
assert answer parity and never stats equality.
"""

import time

import pytest

from repro.audit.oracle import check_truncated_result
from repro.baselines.linear_scan import linear_scan_items
from repro.core.budget import Budget
from repro.core.config import QueryConfig
from repro.errors import InvalidParameterError, ShardLostError
from repro.packed.kernels import run_packed_query
from repro.packed.layout import PackedTree
from repro.rtree.bulk import bulk_load
from repro.service.options import EngineOptions
from repro.shard import ShardedQueryEngine
from repro.shard.wire import (
    flatten_result,
    flatten_stats,
    inflate_result,
    inflate_stats,
)

from tests.shard.conftest import grid_tie_items, tie_queries

pytestmark = pytest.mark.shard

FAST = EngineOptions(workers=1, cache_size=0)


def _answer(result):
    """Everything `query_batch` promises bit-identical (never stats)."""
    return (
        [(n.payload, n.distance, n.distance_squared, n.rect) for n in result.neighbors],
        result.truncated,
        result.truncation_reason,
        result.frontier_distance,
    )


def _kill_worker(engine, index):
    handle = engine._handles[index]
    handle.proc.kill()
    handle.proc.join(timeout=10.0)
    deadline = time.monotonic() + 10.0
    while not handle.dead and time.monotonic() < deadline:
        time.sleep(0.01)
    assert handle.dead
    return handle


class TestWireCodec:
    """`inflate_*(flatten_*(x))` must round-trip bit-for-bit."""

    @pytest.fixture(scope="class")
    def results(self, tie_items):
        ptree = PackedTree.from_tree(bulk_load(list(tie_items), max_entries=8))
        return [
            run_packed_query(ptree, q, QueryConfig(k=k))
            for q in tie_queries()
            for k in (1, 7, 16)
        ]

    def test_result_round_trip_bit_identical(self, results):
        for result in results:
            back = inflate_result(flatten_result(result))
            assert back.neighbors == result.neighbors
            assert back.stats == result.stats

    def test_stats_round_trip_includes_pruning(self, results):
        for result in results:
            back = inflate_stats(flatten_stats(result.stats))
            assert back == result.stats
            assert back.pruning == result.stats.pruning

    def test_truncated_stats_survive_the_wire(self):
        ptree = PackedTree.from_tree(bulk_load(grid_tie_items(), max_entries=8))
        result = run_packed_query(
            ptree, (0.0, 0.0), QueryConfig(k=5, budget=Budget(max_pages=2))
        )
        assert result.stats.truncated
        back = inflate_stats(flatten_stats(result.stats))
        assert back.truncated
        assert back.truncation_reason == result.stats.truncation_reason
        assert back.frontier_sq == result.stats.frontier_sq


class TestBatchParity:
    """Batch answers == per-query answers; stats are allowed to differ.

    Two tiers, matching the engine-vs-single-tree contract: on the
    tie-free uniform workload the parity is bit-for-bit including
    payloads; on the adversarial tie workload it is the distance
    sequence plus truncation verdict and frontier — payloads may differ
    under *exact* cross-shard ties, because the per-query path's shard
    prune (P3 on shard MBRs) discards equal-distance candidates sitting
    exactly on the round-1 bound, which the batch fan-out merges in.
    """

    @pytest.fixture(scope="class")
    def engine(self, tie_items):
        with ShardedQueryEngine(
            items=tie_items, shards=3, options=FAST
        ) as eng:
            yield eng

    @pytest.mark.parametrize("k", [1, 3, 7, 16])
    def test_uniform_batch_bit_identical_to_per_query(
        self, uniform_items, k
    ):
        queries = [
            (0.12, 0.34), (0.5, 0.5), (0.91, 0.08), (0.33, 0.77),
            (0.05, 0.95), (0.62, 0.41),
        ]
        with ShardedQueryEngine(
            items=uniform_items, shards=3, options=FAST
        ) as engine:
            batch = engine.query_batch(queries, k=k)
            assert len(batch) == len(queries)
            for q, got in zip(queries, batch):
                assert _answer(got) == _answer(engine.query(q, k=k))

    @pytest.mark.parametrize("k", [1, 3, 7, 16])
    def test_tie_batch_matches_distance_sequence(self, engine, k):
        queries = tie_queries()
        batch = engine.query_batch(queries, k=k)
        for q, got in zip(queries, batch):
            single = engine.query(q, k=k)
            assert [n.distance_squared for n in got.neighbors] == [
                n.distance_squared for n in single.neighbors
            ]
            assert got.truncated == single.truncated
            assert got.frontier_distance == single.frontier_distance

    def test_tie_batch_is_deterministic(self, engine):
        queries = tie_queries()
        first = engine.query_batch(queries, k=7)
        second = engine.query_batch(queries, k=7)
        for a, b in zip(first, second):
            assert _answer(a) == _answer(b)

    def test_batch_fans_out_where_per_query_prunes(self, engine):
        """The documented stats asymmetry, pinned: batch effort >= query.

        The batch path sends every point to every live shard (no P3
        shard prune), so its per-point nodes_accessed can only meet or
        exceed the pruned per-query path — if this ever flips, the
        merge is reading the wrong replies.
        """
        queries = tie_queries()
        batch = engine.query_batch(queries, k=3)
        for q, got in zip(queries, batch):
            assert (
                got.stats.nodes_accessed
                >= engine.query(q, k=3).stats.nodes_accessed
            )

    def test_inline_engine_same_wire_shape_and_answers(self, tie_items):
        queries = tie_queries()
        with ShardedQueryEngine(
            items=tie_items, shards=3, options=FAST, processes=False
        ) as inline, ShardedQueryEngine(
            items=tie_items, shards=3, options=FAST
        ) as procs:
            inline_batch = inline.query_batch(queries, k=7)
            procs_batch = procs.query_batch(queries, k=7)
        for a, b in zip(inline_batch, procs_batch):
            assert _answer(a) == _answer(b)

    def test_empty_batch_rejected(self, engine):
        with pytest.raises(InvalidParameterError):
            engine.query_batch([], k=3)


class TestBatchCache:
    def test_cache_hits_skip_the_wire_and_stay_identical(self, tie_items):
        queries = tie_queries()
        with ShardedQueryEngine(
            items=tie_items,
            shards=2,
            options=EngineOptions(workers=1, cache_size=64),
        ) as engine:
            first = engine.query_batch(queries, k=5)
            second = engine.query_batch(queries, k=5)
            stats = engine.stats()
            assert stats.cache_hits == len(queries)
            assert stats.executed == len(queries)
            for a, b in zip(first, second):
                assert _answer(a) == _answer(b)

    def test_mixed_hit_miss_batch_keeps_order(self, tie_items):
        queries = tie_queries()
        warm, cold = queries[: len(queries) // 2], queries
        with ShardedQueryEngine(
            items=tie_items,
            shards=2,
            options=EngineOptions(workers=1, cache_size=64),
        ) as engine:
            engine.query_batch(warm, k=5)
            mixed = engine.query_batch(cold, k=5)
            for q, got in zip(cold, mixed):
                assert _answer(got) == _answer(engine.query(q, k=5))


class TestBatchDegradation:
    def test_dead_shard_degrades_whole_batch_soundly(self, uniform_items):
        queries = [(0.25, 0.25), (0.75, 0.75), (0.5, 0.1), (0.9, 0.4)]
        k = 5
        with ShardedQueryEngine(
            items=uniform_items, shards=3, options=FAST
        ) as engine:
            _kill_worker(engine, 0)
            batch = engine.query_batch(queries, k=k)
            for q, result in zip(queries, batch):
                assert result.truncated
                assert result.truncation_reason == "shard-lost"
                assert result.frontier_distance < float("inf")
                problems = check_truncated_result(
                    result.neighbors,
                    q,
                    k,
                    linear_scan_items(uniform_items, q, k=k),
                    combo="sharded-batch-lost",
                    frontier=result.frontier_distance,
                )
                assert problems == []
            # Degradation is per-point: the whole window counts.
            assert engine.stats().degraded >= len(queries)

    def test_all_workers_dead_raises(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items, shards=2, options=FAST
        ) as engine:
            _kill_worker(engine, 0)
            _kill_worker(engine, 1)
            with pytest.raises(ShardLostError):
                engine.query_batch([(0.5, 0.5)], k=3)
