"""The shard partitioner: balance, determinism, degeneracy fallback."""

import pytest

from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.shard.partition import PARTITION_METHODS, plan_shards

from tests.shard.conftest import grid_tie_items

pytestmark = pytest.mark.shard


class TestBalance:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 5, 7])
    def test_sizes_within_one(self, uniform_items, shards):
        plan = plan_shards(uniform_items, shards)
        sizes = plan.sizes()
        assert sum(sizes) == len(uniform_items)
        assert max(sizes) - min(sizes) <= 1
        assert all(s > 0 for s in sizes)

    def test_every_item_assigned_exactly_once(self, uniform_items):
        plan = plan_shards(uniform_items, 4)
        seen = [payload for group in plan.groups for _, payload in group]
        assert sorted(seen) == sorted(p for _, p in uniform_items)

    def test_mbrs_cover_their_groups(self, uniform_items):
        plan = plan_shards(uniform_items, 4)
        for group, mbr in zip(plan.groups, plan.mbrs):
            for rect, _ in group:
                assert mbr.contains_rect(rect)


class TestDeterminism:
    def test_same_input_same_plan(self, uniform_items):
        a = plan_shards(uniform_items, 4)
        b = plan_shards(list(uniform_items), 4)
        assert a.method == b.method
        assert a.mbrs == b.mbrs
        assert [
            [p for _, p in g] for g in a.groups
        ] == [[p for _, p in g] for g in b.groups]

    def test_tie_heavy_grid_is_deterministic(self):
        items = grid_tie_items(side=6, copies=2)
        a = plan_shards(items, 3)
        b = plan_shards(items, 3)
        assert a.groups == b.groups


class TestDegenerate:
    def test_auto_uses_str_on_spread_data(self, uniform_items):
        assert plan_shards(uniform_items, 3).method == "str"

    def test_auto_falls_back_to_hash_on_single_point(self):
        items = [(Rect.from_point((5.0, 5.0)), i) for i in range(40)]
        plan = plan_shards(items, 4)
        assert plan.method == "hash"
        sizes = plan.sizes()
        assert sum(sizes) == 40
        assert max(sizes) - min(sizes) <= 1

    def test_hash_never_leaves_an_empty_shard(self, uniform_items):
        plan = plan_shards(uniform_items, 5, method="hash")
        assert all(plan.sizes())
        assert max(plan.sizes()) - min(plan.sizes()) <= 1

    def test_fewer_items_than_shards(self):
        items = [(Rect.from_point((float(i), 0.0)), i) for i in range(3)]
        plan = plan_shards(items, 8)
        assert plan.shards == 3
        assert plan.sizes() == [1, 1, 1]


class TestValidation:
    def test_rejects_unknown_method(self, uniform_items):
        with pytest.raises(InvalidParameterError):
            plan_shards(uniform_items, 2, method="zorder")

    def test_rejects_bad_shard_count(self, uniform_items):
        with pytest.raises(InvalidParameterError):
            plan_shards(uniform_items, 0)

    def test_rejects_empty_items(self):
        with pytest.raises(InvalidParameterError):
            plan_shards([], 2)

    def test_method_never_reports_auto(self, uniform_items):
        plan = plan_shards(uniform_items, 2, method="auto")
        assert plan.method in PARTITION_METHODS
        assert plan.method != "auto"
