"""Worker-loss semantics: degraded answers must be *certified*, not hoped.

A dead worker loses requests, never data.  The engine folds the lost
shard's MBR MINDIST into the merged result's frontier and reports
``truncation_reason == "shard-lost"`` — which makes the degraded answer
checkable with the same :func:`check_truncated_result` contract the
budget machinery uses: a sound prefix, complete below the frontier.
"""

import glob
import os
import threading
import time

import pytest

from repro.audit.oracle import check_truncated_result
from repro.baselines.linear_scan import linear_scan_items
from repro.errors import ShardLostError
from repro.service.options import EngineOptions
from repro.shard import ShardedQueryEngine

pytestmark = pytest.mark.shard

FAST = EngineOptions(workers=1, cache_size=0)


def _kill_worker(engine, index):
    handle = engine._handles[index]
    handle.proc.kill()
    handle.proc.join(timeout=10.0)
    # The reader thread flips `dead` when it sees the pipe EOF; a query
    # racing that flip still degrades (the send fails instead), but
    # waiting keeps the assertions below deterministic.
    deadline = time.monotonic() + 10.0
    while not handle.dead and time.monotonic() < deadline:
        time.sleep(0.01)
    assert handle.dead
    return handle


def _certify_degraded(engine, items, point, k):
    exact = linear_scan_items(items, point, k=k)
    result = engine.query(point, k=k)
    assert result.truncated
    assert result.truncation_reason == "shard-lost"
    assert result.frontier_distance < float("inf")
    problems = check_truncated_result(
        result.neighbors,
        point,
        k,
        exact,
        combo="sharded-lost",
        frontier=result.frontier_distance,
    )
    assert problems == []
    return result


class TestWorkerLoss:
    def test_dead_worker_degrades_answer_soundly(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items, shards=3, options=FAST
        ) as engine:
            victim = _kill_worker(engine, 0)
            # Aim at the lost shard's region: the nearest shard can never
            # be pruned, so the loss must surface in the answer's frontier.
            point = victim.mbr.center
            _certify_degraded(engine, uniform_items, point, k=5)
            stats = engine.stats()
            assert stats.workers_alive == 2
            assert stats.degraded >= 1

    def test_kill_mid_query_resolves_inflight_future(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items, shards=3, options=FAST
        ) as engine:
            victim = engine._handles[1]
            point = tuple(victim.mbr.center)
            # Stall the worker's command loop, then query it: the request
            # sits behind the sleep, deterministically in flight.
            victim.conn.send(("sleep", 30.0))
            outcome = {}

            def ask():
                outcome["result"] = engine.query(point, k=4)

            t = threading.Thread(target=ask)
            t.start()
            time.sleep(0.3)
            victim.proc.kill()
            t.join(timeout=15.0)
            assert not t.is_alive(), "query hung on a killed worker"
            result = outcome["result"]
            assert result.truncated
            assert result.truncation_reason == "shard-lost"
            exact = linear_scan_items(uniform_items, point, k=4)
            assert (
                check_truncated_result(
                    result.neighbors,
                    point,
                    4,
                    exact,
                    combo="sharded-midquery",
                    frontier=result.frontier_distance,
                )
                == []
            )

    def test_all_workers_dead_raises(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items, shards=2, options=FAST
        ) as engine:
            _kill_worker(engine, 0)
            _kill_worker(engine, 1)
            with pytest.raises(ShardLostError):
                engine.query((500.0, 500.0), k=3)

    def test_republish_respawns_dead_worker(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items, shards=3, options=FAST
        ) as engine:
            _kill_worker(engine, 2)
            assert engine.stats().workers_alive == 2
            engine.republish(items=uniform_items)
            assert engine.stats().workers_alive == 3
            point = (500.0, 500.0)
            exact = linear_scan_items(uniform_items, point, k=5)
            result = engine.query(point, k=5)
            assert not result.truncated
            assert [n.distance for n in result.neighbors] == [
                n.distance for n in exact
            ]

    def test_no_segments_leak_even_after_worker_loss(self, uniform_items):
        engine = ShardedQueryEngine(
            items=uniform_items, shards=2, options=FAST
        )
        prefix = engine.name_prefix
        _kill_worker(engine, 0)
        engine.close()
        if os.path.isdir("/dev/shm"):
            assert glob.glob(f"/dev/shm/{prefix}*") == []
