"""Shared-memory slab export/attach: zero-copy fidelity and lifecycle."""

import glob
import os
import pickle

import pytest

from repro.core.config import QueryConfig
from repro.packed.kernels import run_packed_query
from repro.packed.layout import PackedTree
from repro.rtree.bulk import bulk_load
from repro.shard.slab import attach_slab, export_slab

pytestmark = pytest.mark.shard

_SEG_DIR = "/dev/shm"


def _leaked(name: str):
    if not os.path.isdir(_SEG_DIR):  # pragma: no cover - non-Linux
        return []
    return glob.glob(os.path.join(_SEG_DIR, name + "*"))


@pytest.fixture()
def ptree(uniform_items):
    tree = bulk_load(list(uniform_items), max_entries=8)
    packed = PackedTree.from_tree(tree)
    packed.epoch = 7
    return packed


class TestRoundTrip:
    def test_attached_tree_answers_identically(self, ptree, uniform_items):
        exported = export_slab(
            ptree, 0, None, "repro-test-slab-rt-%d" % os.getpid()
        )
        try:
            attached = attach_slab(exported.manifest)
            try:
                cfg = QueryConfig(k=5)
                for q in [(0.1, 0.2), (500.0, 500.0), (999.0, 1.0)]:
                    mine = run_packed_query(attached.ptree, q, cfg)
                    theirs = run_packed_query(ptree, q, cfg)
                    assert [
                        (n.payload, n.distance) for n in mine.neighbors
                    ] == [(n.payload, n.distance) for n in theirs.neighbors]
                    assert mine.stats == theirs.stats
            finally:
                attached.close()
        finally:
            exported.unlink()

    def test_slabs_and_payloads_survive_the_copy(self, ptree):
        exported = export_slab(
            ptree, 0, None, "repro-test-slab-bytes-%d" % os.getpid()
        )
        try:
            attached = attach_slab(exported.manifest)
            try:
                view = attached.ptree
                assert list(view.kinds) == list(ptree.kinds)
                assert list(view.starts) == list(ptree.starts)
                assert list(view.refs) == list(ptree.refs)
                assert list(view.coords) == list(ptree.coords)
                assert list(view.payloads) == list(ptree.payloads)
                assert view.epoch == ptree.epoch
                assert view.size == ptree.size
            finally:
                attached.close()
        finally:
            exported.unlink()

    def test_lazy_rects_match_eager_rects(self, ptree):
        exported = export_slab(
            ptree, 0, None, "repro-test-slab-rects-%d" % os.getpid()
        )
        try:
            attached = attach_slab(exported.manifest)
            try:
                lazy = attached.ptree.rects
                assert len(lazy) == len(ptree.rects)
                for ref in range(len(lazy)):
                    assert lazy[ref] == ptree.rects[ref]
            finally:
                attached.close()
        finally:
            exported.unlink()

    def test_manifest_is_plain_picklable_data(self, ptree):
        exported = export_slab(
            ptree, 3, ptree.rects[0], "repro-test-slab-pkl-%d" % os.getpid()
        )
        try:
            clone = pickle.loads(pickle.dumps(exported.manifest))
            assert clone == exported.manifest
            assert clone.mbr() == exported.manifest.mbr()
            assert clone.shard_index == 3
        finally:
            exported.unlink()


class TestLifecycle:
    def test_unlink_removes_the_segment(self, ptree):
        name = "repro-test-slab-unlink-%d" % os.getpid()
        exported = export_slab(ptree, 0, None, name)
        if os.path.isdir(_SEG_DIR):
            assert _leaked(name), "segment was never created?"
        exported.unlink()
        assert _leaked(name) == []
        exported.unlink()  # idempotent

    def test_close_is_idempotent_and_releases_views(self, ptree):
        exported = export_slab(
            ptree, 0, None, "repro-test-slab-close-%d" % os.getpid()
        )
        try:
            attached = attach_slab(exported.manifest)
            attached.close()
            attached.close()
            assert attached.ptree is None
        finally:
            exported.unlink()

    def test_attach_rejects_truncated_segment(self, ptree):
        from dataclasses import replace

        from repro.errors import InvalidParameterError

        exported = export_slab(
            ptree, 0, None, "repro-test-slab-trunc-%d" % os.getpid()
        )
        try:
            lying = replace(
                exported.manifest,
                total_bytes=exported.manifest.total_bytes + 4096,
            )
            with pytest.raises(InvalidParameterError):
                attach_slab(lying)
        finally:
            exported.unlink()
