"""ShardedQueryEngine correctness: merge fidelity, options, lifecycle.

The headline property: scatter-gather across worker processes is
*observationally identical* to the single-tree packed kernel on the
distance sequence (payloads may differ under exact ties — the merge
breaks them by ``(distance², shard, within-shard rank)``, the kernels by
accept order), and the process-hosted engine is bit-identical to the
inline one, payloads included, because partitioning and merging are
deterministic.
"""

import glob
import os

import pytest

from repro.baselines.linear_scan import linear_scan_items
from repro.audit.oracle import check_result, check_truncated_result
from repro.core.budget import Budget
from repro.core.config import QueryConfig
from repro.core.pruning import PruningConfig
from repro.errors import InvalidParameterError
from repro.packed.kernels import run_packed_query
from repro.packed.layout import PackedTree
from repro.rtree.bulk import bulk_load
from repro.service.options import EngineOptions
from repro.service.protocol import Engine, EngineSnapshot
from repro.shard import ShardedQueryEngine

from tests.shard.conftest import grid_tie_items, tie_queries

pytestmark = pytest.mark.shard

FAST = EngineOptions(workers=1, cache_size=0)


def _pairs(result):
    return [(n.payload, n.distance) for n in result.neighbors]


@pytest.fixture(scope="module")
def tie_engine(tie_items):
    with ShardedQueryEngine(items=tie_items, shards=3, options=FAST) as eng:
        yield eng


@pytest.fixture(scope="module")
def tie_packed(tie_items):
    return PackedTree.from_tree(bulk_load(list(tie_items), max_entries=8))


class TestTieHeavyMerge:
    @pytest.mark.parametrize("k", [1, 3, 7, 16])
    def test_distance_sequence_bit_identical_to_single_tree(
        self, tie_engine, tie_packed, k
    ):
        """Cross-shard merge == single packed tree, exact float equality.

        Distances are computed from the same coordinates by the same
        kernels on both sides, so nothing weaker than ``==`` (no
        tolerance) is acceptable even with duplicates straddling every
        shard boundary.
        """
        cfg = QueryConfig(k=k)
        for q in tie_queries():
            merged = tie_engine.query(q, config=cfg)
            single = run_packed_query(tie_packed, q, cfg)
            assert [n.distance for n in merged.neighbors] == [
                n.distance for n in single.neighbors
            ]
            assert len(merged.neighbors) == k

    @pytest.mark.parametrize("k", [3, 16])
    def test_oracle_clean_on_ties(self, tie_engine, tie_items, k):
        for q in tie_queries():
            exact = linear_scan_items(tie_items, q, k=k)
            result = tie_engine.query(q, k=k)
            assert (
                check_result(result.neighbors, q, k, exact, combo="sharded")
                == []
            )

    def test_process_and_inline_bit_identical(self, tie_items, tie_engine):
        """Same plan, same kernels, same merge — payloads included."""
        with ShardedQueryEngine(
            items=tie_items, shards=3, options=FAST, processes=False
        ) as inline:
            for q in tie_queries():
                for k in (1, 5, 12):
                    assert _pairs(inline.query(q, k=k)) == _pairs(
                        tie_engine.query(q, k=k)
                    )


class TestConfigSemantics:
    def test_epsilon_band_respected(self, uniform_items):
        eps = 0.5
        cfg = QueryConfig(k=5, epsilon=eps)
        with ShardedQueryEngine(
            items=uniform_items, shards=3, options=FAST
        ) as engine:
            for q in [(0.0, 0.0), (400.0, 600.0), (999.0, 999.0)]:
                exact = linear_scan_items(uniform_items, q, k=5)
                result = engine.query(q, config=cfg)
                assert (
                    check_result(
                        result.neighbors,
                        q,
                        5,
                        exact,
                        combo="sharded-eps",
                        epsilon=eps,
                    )
                    == []
                )

    def test_page_budget_truncates_soundly(self, uniform_items):
        cfg = QueryConfig(k=8, budget=Budget(max_pages=2))
        with ShardedQueryEngine(
            items=uniform_items, shards=3, options=FAST, processes=False
        ) as engine:
            truncated_seen = 0
            for q in [(0.0, 0.0), (500.0, 500.0), (999.0, 0.0)]:
                exact = linear_scan_items(uniform_items, q, k=8)
                result = engine.query(q, config=cfg)
                if result.truncated:
                    truncated_seen += 1
                    assert (
                        check_truncated_result(
                            result.neighbors,
                            q,
                            8,
                            exact,
                            combo="sharded-budget",
                            frontier=result.frontier_distance,
                        )
                        == []
                    )
            assert truncated_seen > 0, "2-page budget never truncated?"

    def test_pruning_config_p3_off_disables_shard_pruning(self, uniform_items):
        cfg = QueryConfig(k=3, pruning=PruningConfig(True, True, False))
        with ShardedQueryEngine(
            items=uniform_items, shards=4, options=FAST
        ) as engine:
            engine.query((500.0, 500.0), config=cfg)
            assert engine.stats().shards_pruned == 0
            engine.query((500.0, 500.0), k=3)
            assert engine.stats().shards_pruned > 0

    def test_object_distance_rejected(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items, shards=2, options=FAST, processes=False
        ) as engine:
            with pytest.raises(InvalidParameterError):
                engine.query(
                    (0.0, 0.0),
                    config=QueryConfig(
                        k=1, object_distance_sq=lambda q, p, r: 0.0
                    ),
                )


class TestLifecycle:
    def test_republish_swaps_snapshot_and_unlinks_old_epoch(
        self, uniform_items
    ):
        half = uniform_items[: len(uniform_items) // 2]
        engine = ShardedQueryEngine(items=half, shards=2, options=FAST)
        prefix = engine.name_prefix
        try:
            first_epoch = engine.snapshot().epoch
            before = engine.query((500.0, 500.0), k=3)
            new_epoch = engine.republish(items=uniform_items)
            assert new_epoch == first_epoch + 1
            assert engine.snapshot().size == len(uniform_items)
            exact = linear_scan_items(uniform_items, (500.0, 500.0), k=3)
            after = engine.query((500.0, 500.0), k=3)
            assert [n.distance for n in after.neighbors] == [
                n.distance for n in exact
            ]
            assert before is not after
            if os.path.isdir("/dev/shm"):
                live = glob.glob(f"/dev/shm/{prefix}*")
                assert live, "republish left no segments?"
                assert all(f"-e{new_epoch}-" in seg for seg in live)
        finally:
            engine.close()
        if os.path.isdir("/dev/shm"):
            assert glob.glob(f"/dev/shm/{prefix}*") == []

    def test_close_is_idempotent_and_query_after_close_raises(
        self, uniform_items
    ):
        engine = ShardedQueryEngine(items=uniform_items, shards=2, options=FAST)
        engine.close()
        engine.close()
        with pytest.raises(InvalidParameterError):
            engine.query((0.0, 0.0), k=1)

    def test_constructor_validation(self, uniform_items):
        with pytest.raises(InvalidParameterError):
            ShardedQueryEngine()
        with pytest.raises(InvalidParameterError):
            ShardedQueryEngine(items=uniform_items, shards=0)

    def test_result_cache_serves_repeats(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items,
            shards=2,
            options=EngineOptions(workers=1, cache_size=16),
        ) as engine:
            a = engine.query((1.0, 2.0), k=4)
            b = engine.query((1.0, 2.0), k=4)
            assert b is a
            assert engine.stats().cache_hits == 1


class TestProtocol:
    def test_sharded_engine_satisfies_engine_protocol(self, uniform_items):
        with ShardedQueryEngine(
            items=uniform_items, shards=2, options=FAST, processes=False
        ) as engine:
            assert isinstance(engine, Engine)
            snap = engine.snapshot()
            assert isinstance(snap, EngineSnapshot)
            assert snap.backend == "sharded"
            assert snap.size == len(uniform_items)
            assert snap.detail["shards"] == 2
            fut = engine.submit((3.0, 4.0), k=2)
            assert len(fut.result().neighbors) == 2

    def test_resilient_engine_wraps_sharded_backend(self, uniform_items):
        from repro.service.resilience import ResilientEngine

        inner = ShardedQueryEngine(
            items=uniform_items, shards=2, options=FAST, processes=False
        )
        with ResilientEngine(engine=inner, workers=1) as resilient:
            snap = resilient.snapshot()
            assert snap.backend == "resilient+sharded"
            direct = inner.query((250.0, 250.0), k=3)
            served = resilient.query((250.0, 250.0), k=3)
            assert _pairs(served.result) == _pairs(direct)
