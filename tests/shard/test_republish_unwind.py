"""Republish failure must not orphan the new epoch in ``/dev/shm``.

``republish`` exports the next epoch's segments *before* the
ack-before-unlink swap.  A fault between those two steps (an export
failing halfway through the shard loop, a worker never acking) used to
leak every already-exported new-epoch segment: the engine kept serving
the old epoch, nothing ever unlinked ``-e<new>-`` names, and the leak
survived ``close()`` — breaking the ``name_prefix`` contract the CI
shard job checks system-wide.  The fixed unwind unlinks exactly the
unpublished epoch's segments and re-raises; the old epoch keeps serving
untouched.
"""

import glob
import os

import pytest

import repro.shard.engine as shard_engine
from repro.shard import ShardedQueryEngine

pytestmark = pytest.mark.shard


def _segments(prefix):
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm to observe segment names")
    return sorted(glob.glob(f"/dev/shm/{prefix}*"))


class TestRepublishUnwind:
    def test_export_failure_midway_unlinks_only_the_new_epoch(
        self, uniform_items, monkeypatch
    ):
        eng = ShardedQueryEngine(
            items=uniform_items, shards=2, processes=True
        )
        try:
            prefix = eng.name_prefix
            before = _segments(prefix)
            assert len(before) == 2  # the published epoch's two shards
            baseline = eng.query((0.5, 0.5), k=3)

            real_export = shard_engine.export_slab
            calls = {"n": 0}

            def flaky_export(ptree, index, mbr, name):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise OSError("injected export failure on shard 1")
                return real_export(ptree, index, mbr, name)

            monkeypatch.setattr(shard_engine, "export_slab", flaky_export)
            with pytest.raises(OSError, match="injected export failure"):
                eng.republish(items=uniform_items)
            monkeypatch.setattr(shard_engine, "export_slab", real_export)

            # Exactly the old epoch's segments remain: the half-exported
            # new epoch was unwound, not orphaned.
            assert _segments(prefix) == before

            # The old epoch still serves, bit-identical to before.
            again = eng.query((0.5, 0.5), k=3)
            assert again.distances() == baseline.distances()

            # A clean republish afterwards works and swaps epochs.
            new_epoch = eng.republish(items=uniform_items)
            assert new_epoch == 2
            after = _segments(prefix)
            assert len(after) == 2
            assert after != before
        finally:
            eng.close()
        assert _segments(prefix) == []

    def test_ack_failure_after_full_export_unlinks_the_new_epoch(
        self, uniform_items, monkeypatch
    ):
        eng = ShardedQueryEngine(
            items=uniform_items, shards=2, processes=True
        )
        try:
            prefix = eng.name_prefix
            before = _segments(prefix)

            def no_ack(self, epoch):
                raise shard_engine.ShardLostError(
                    "injected: worker never acked the new epoch"
                )

            monkeypatch.setattr(
                shard_engine._ProcessShard, "wait_ready", no_ack
            )
            with pytest.raises(shard_engine.ShardLostError):
                eng.republish(items=uniform_items)
            monkeypatch.undo()

            # Both fully-exported new-epoch segments were unwound.
            assert _segments(prefix) == before
            assert len(eng.query((0.5, 0.5), k=3).neighbors) == 3
        finally:
            eng.close()
        assert _segments(prefix) == []
