"""Worker span shipping: the wire codec and the cross-process trace tree.

Worker processes cannot share the parent's span-id allocator, so they
ship compact 5-tuple records over the reply pipe and the parent grafts
them under its RPC span.  These tests hold the codec to its validation
contract and then prove the end-to-end property: one sampled query
through a real multi-process engine assembles into a single trace tree
whose worker spans carry the kernel's page accounting — while the
answers stay bit-identical to an unsampled run.
"""

import pytest

from repro.core.config import QueryConfig
from repro.datasets import uniform_points
from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.obs.spans import SpanContext, WIRE_PARENT, build_span_tree
from repro.shard import ShardedQueryEngine
from repro.shard.wire import flatten_spans, inflate_spans
from repro.service.options import EngineOptions

pytestmark = [pytest.mark.shard, pytest.mark.obs]


class TestWireCodec:
    def test_flatten_normalizes_attr_mappings(self):
        flat = flatten_spans(
            [
                ("shard.queue", WIRE_PARENT, 1.0, 0.5, {"depth": 2}),
                ("shard.kernel", 0, 1.001, 3.0, (("pages", 7),)),
            ]
        )
        assert flat == (
            ("shard.queue", WIRE_PARENT, 1.0, 0.5, (("depth", 2),)),
            ("shard.kernel", 0, 1.001, 3.0, (("pages", 7),)),
        )

    def test_round_trip_is_stable(self):
        records = [
            ("a", WIRE_PARENT, 0.0, 1.0, ()),
            ("b", 0, 0.5, 0.25, (("n", 1),)),
        ]
        flat = flatten_spans(records)
        assert tuple(inflate_spans(flat)) == flat

    def test_forward_and_self_parent_rejected(self):
        with pytest.raises(InvalidParameterError):
            flatten_spans([("a", 0, 0.0, 1.0, ())])  # self-reference
        with pytest.raises(InvalidParameterError):
            flatten_spans(
                [
                    ("a", WIRE_PARENT, 0.0, 1.0, ()),
                    ("b", 2, 0.0, 1.0, ()),  # forward reference
                ]
            )

    def test_primitives_coerced(self):
        (record,) = flatten_spans([("k", -1, 1, 2, {})])
        name, parent_rel, start_s, duration_ms, attrs = record
        assert isinstance(start_s, float)
        assert isinstance(duration_ms, float)
        assert attrs == ()


class TestCrossProcessTrace:
    @pytest.fixture(scope="class")
    def engine(self):
        points = uniform_points(500, seed=51)
        items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
        engine = ShardedQueryEngine(
            items=items,
            shards=2,
            options=EngineOptions(cache_size=0),
        )
        yield engine
        engine.close()

    def test_sampled_query_assembles_one_tree(self, engine):
        ctx = SpanContext()
        result = engine.query(
            (0.4, 0.6), config=QueryConfig(k=5), span_ctx=ctx
        )
        assert len(result.neighbors) == 5

        spans = ctx.spans()
        names = [s.name for s in spans]
        assert "engine.query" in names
        assert "scatter" in names
        assert "merge" in names
        assert any(n.startswith("shard") and n.endswith(".rpc")
                   for n in names)
        # Worker-side spans crossed the process boundary and were
        # grafted under their RPC span.
        kernel_spans = [s for s in spans if s.name == "shard.kernel"]
        assert kernel_spans
        by_id = {s.span_id: s for s in spans}
        for kernel in kernel_spans:
            assert kernel.attrs["pages"] >= 1
            parent = by_id[kernel.parent_id]
            assert parent.name.endswith(".rpc")
        # One trace, one root request tree below engine.query.
        assert len({s.trace_id for s in spans}) == 1
        roots = build_span_tree(spans)
        assert "engine.query" in {n.span.name for n in roots}

    def test_shard_page_attrs_sum_to_engine_accounting(self, engine):
        before = engine.stats().pages_per_query * engine.stats().executed
        ctx = SpanContext()
        engine.query((0.7, 0.2), config=QueryConfig(k=3), span_ctx=ctx)
        after = engine.stats().pages_per_query * engine.stats().executed
        kernel_pages = sum(
            s.attrs["pages"] for s in ctx.spans() if s.name == "shard.kernel"
        )
        assert kernel_pages == pytest.approx(after - before)

    def test_sampling_does_not_change_answers(self, engine):
        cfg = QueryConfig(k=7)
        for point in [(0.1, 0.9), (0.5, 0.5), (0.95, 0.05)]:
            plain = engine.query(point, config=cfg)
            ctx = SpanContext()
            traced = engine.query(point, config=cfg, span_ctx=ctx)
            assert (
                [n.payload for n in traced.neighbors]
                == [n.payload for n in plain.neighbors]
            )
            assert (
                [n.distance_squared for n in traced.neighbors]
                == [n.distance_squared for n in plain.neighbors]
            )
            assert ctx.spans()

    def test_unsampled_context_stays_empty(self, engine):
        ctx = SpanContext(sampled=False)
        engine.query((0.3, 0.3), config=QueryConfig(k=2), span_ctx=ctx)
        assert ctx.spans() == []

    def test_batch_spans_grafted_per_window(self, engine):
        ctx = SpanContext()
        points = [(0.2, 0.2), (0.8, 0.8), (0.5, 0.1)]
        results = engine.query_batch(
            points,
            config=QueryConfig(k=4, algorithm="best-first"),
            span_ctxs=[ctx] * len(points),
        )
        assert len(results) == len(points)
        names = [s.name for s in ctx.spans()]
        assert "engine.batch" in names
