"""HTTP/1.1 framing: parse edge cases and response rendering."""

import asyncio

import pytest

from repro.server.http import HTTPError, read_request, render_response

pytestmark = pytest.mark.server


def parse(raw: bytes, max_body: int = 1 << 20):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body=max_body)

    return asyncio.run(go())


def parse_error(raw: bytes, max_body: int = 1 << 20) -> HTTPError:
    with pytest.raises(HTTPError) as excinfo:
        parse(raw, max_body=max_body)
    return excinfo.value


class TestParsing:
    def test_get_with_query_string(self):
        request = parse(b"GET /stats?fmt=prom&x=1 HTTP/1.1\r\nHost: a\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/stats"
        assert request.query == {"fmt": "prom", "x": "1"}
        assert request.body == b""

    def test_post_with_content_length_body(self):
        body = b'{"point":[0.5,0.5],"k":3}'
        raw = (
            b"POST /query HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.body == body
        assert request.headers["content-type"] == "application/json"

    def test_header_names_are_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Foo-BAR:  baz \r\n\r\n")
        assert request.headers["x-foo-bar"] == "baz"

    def test_clean_eof_is_none_not_an_error(self):
        assert parse(b"") is None

    def test_method_is_uppercased(self):
        assert parse(b"get /healthz HTTP/1.1\r\n\r\n").method == "GET"

    def test_empty_path_defaults_to_root(self):
        # urlsplit("") yields an empty path; the parser normalizes it.
        request = parse(b"GET ?x=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/"


class TestRejections:
    def test_malformed_request_line_is_400(self):
        assert parse_error(b"GARBAGE\r\n\r\n").status == 400

    def test_unsupported_protocol_is_400(self):
        assert parse_error(b"GET / HTTP/2.0\r\n\r\n").status == 400
        assert parse_error(b"GET / SPDY/3\r\n\r\n").status == 400

    def test_chunked_transfer_encoding_is_501(self):
        raw = b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        assert parse_error(raw).status == 501

    def test_oversize_body_is_413(self):
        raw = b"POST /query HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"
        assert parse_error(raw, max_body=999).status == 413

    def test_malformed_content_length_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_negative_content_length_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_header_without_colon_is_400(self):
        raw = b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_too_many_headers_is_400(self):
        headers = "".join(f"H{i}: v\r\n" for i in range(80)).encode()
        raw = b"GET / HTTP/1.1\r\n" + headers + b"\r\n"
        assert parse_error(raw).status == 400


class TestKeepAliveSemantics:
    def test_http11_defaults_to_keep_alive(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive is True

    def test_connection_close_opts_out(self):
        raw = b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"
        assert parse(raw).keep_alive is False

    def test_http10_defaults_to_close(self):
        assert parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False

    def test_http10_can_opt_in_to_keep_alive(self):
        raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        assert parse(raw).keep_alive is True


class TestRenderResponse:
    def test_basic_shape(self):
        payload = render_response(200, b'{"ok":true}')
        head, _, body = payload.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 11" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok":true}'

    def test_close_and_extra_headers(self):
        payload = render_response(
            429,
            b"{}",
            keep_alive=False,
            extra_headers=(("Retry-After", "2"),),
        )
        head = payload.split(b"\r\n\r\n", 1)[0]
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Connection: close" in head
        assert b"Retry-After: 2" in head

    def test_unknown_status_still_renders(self):
        assert render_response(599, b"").startswith(b"HTTP/1.1 599 Unknown")
