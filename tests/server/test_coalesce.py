"""Micro-batch coalescing: windows, flush triggers, deadline bypass.

The deadline-vs-coalescing interaction is the satellite this file pins:
a request whose ``Budget.deadline_ms`` cannot survive the coalescing
window must bypass it (never queued behind the window timer), and every
answer — coalesced, bypassed, or truncated by its deadline — must stay
certifiable by the truncated-result oracle.
"""

import asyncio
import threading
from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro.core.budget import Budget
from repro.core.config import QueryConfig
from repro.server import Coalescer, ServerConfig

from tests.server.conftest import certify

pytestmark = pytest.mark.server


class _BatchEngine:
    """Fake engine recording every ``query_batch`` call."""

    def __init__(self):
        self.calls = []
        self.lock = threading.Lock()

    def query_batch(self, points, config=None):
        with self.lock:
            self.calls.append(list(points))
        return [("R", tuple(p)) for p in points]


class _SubmitEngine:
    """Fake engine with only per-request ``submit`` (resilient shape)."""

    def __init__(self, fail_for=()):
        self.fail_for = set(fail_for)
        self.submitted = []

    def submit(self, point, config=None):
        self.submitted.append(tuple(point))
        future = Future()
        if tuple(point) in self.fail_for:
            future.set_exception(RuntimeError(f"boom at {point}"))
        else:
            future.set_result(("R", tuple(point)))
        return future


def run_coalesced(engine, coro_fn, **kwargs):
    """Run *coro_fn(coalescer)* under a fresh loop + executor."""

    async def go():
        with ThreadPoolExecutor(max_workers=2) as executor:
            coalescer = Coalescer(engine, executor, **kwargs)
            result = await coro_fn(coalescer)
            await coalescer.drain()
            return coalescer, result

    return asyncio.run(go())


class TestWindows:
    def test_concurrent_arrivals_share_one_batch(self):
        engine = _BatchEngine()
        cfg = QueryConfig(k=2)
        points = [(float(i), 0.0) for i in range(8)]

        async def go(coalescer):
            return await asyncio.gather(
                *(coalescer.submit(p, cfg) for p in points)
            )

        coalescer, results = run_coalesced(
            engine, go, max_wait_ms=50.0, max_batch=64
        )
        assert len(engine.calls) == 1
        assert engine.calls[0] == [tuple(p) for p in points]
        # Answers land with their own waiters, in order.
        assert results == [("R", tuple(p)) for p in points]
        assert coalescer.flush_timer == 1
        assert coalescer.coalesced_requests == 8
        assert coalescer.largest_batch == 8

    def test_full_window_flushes_without_waiting_for_the_timer(self):
        engine = _BatchEngine()
        cfg = QueryConfig(k=1)

        async def go(coalescer):
            # A timer this long would hang the test; completing at all
            # proves the max_batch flush fired.
            return await asyncio.wait_for(
                asyncio.gather(
                    *(
                        coalescer.submit((float(i), 1.0), cfg)
                        for i in range(4)
                    )
                ),
                timeout=10.0,
            )

        coalescer, results = run_coalesced(
            engine, go, max_wait_ms=60_000.0, max_batch=4
        )
        assert coalescer.flush_full == 1
        assert len(results) == 4

    def test_distinct_configs_get_distinct_windows(self):
        engine = _BatchEngine()

        async def go(coalescer):
            return await asyncio.gather(
                coalescer.submit((0.0, 0.0), QueryConfig(k=1)),
                coalescer.submit((1.0, 1.0), QueryConfig(k=2)),
                coalescer.submit((2.0, 2.0), QueryConfig(k=1)),
            )

        coalescer, _ = run_coalesced(engine, go, max_wait_ms=50.0)
        assert coalescer.windows == 2
        batches = sorted(engine.calls, key=len)
        assert [len(b) for b in batches] == [1, 2]

    def test_submit_only_engine_pipelines_with_per_entry_verdicts(self):
        engine = _SubmitEngine(fail_for={(1.0, 0.0)})
        cfg = QueryConfig(k=1)
        points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]

        async def go(coalescer):
            return await asyncio.gather(
                *(coalescer.submit(p, cfg) for p in points),
                return_exceptions=True,
            )

        _, results = run_coalesced(engine, go, max_wait_ms=50.0)
        assert results[0] == ("R", (0.0, 0.0))
        assert isinstance(results[1], RuntimeError)
        assert results[2] == ("R", (2.0, 0.0))
        assert engine.submitted == points

    def test_drain_flushes_open_windows(self):
        engine = _BatchEngine()
        cfg = QueryConfig(k=1)

        async def go(coalescer):
            # Huge window: only drain() can flush it.
            tasks = [
                asyncio.ensure_future(coalescer.submit((float(i), 2.0), cfg))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let the window collect
            await coalescer.drain()
            return await asyncio.gather(*tasks)

        coalescer, results = run_coalesced(
            engine, go, max_wait_ms=60_000.0, max_batch=64
        )
        assert coalescer.flush_drain == 1
        assert len(results) == 3

    def test_parameter_validation(self):
        engine = _BatchEngine()
        with pytest.raises(ValueError):
            Coalescer(engine, None, max_wait_ms=0.0)
        with pytest.raises(ValueError):
            Coalescer(engine, None, max_batch=1)

    def test_window_key_built_once_per_request(self, monkeypatch):
        # The window key is the hot-path cost of submit(): hashing the
        # full frozen QueryConfig on every dict operation walks every
        # field, so the coalescer computes cache_key() exactly once per
        # arriving request and reuses it through lookup, insert and the
        # flush-time pop.
        calls = {"n": 0}
        real_cache_key = QueryConfig.cache_key

        def counting_cache_key(self):
            calls["n"] += 1
            return real_cache_key(self)

        monkeypatch.setattr(QueryConfig, "cache_key", counting_cache_key)
        engine = _BatchEngine()
        cfg = QueryConfig(k=2)
        points = [(float(i), 3.0) for i in range(6)]

        async def go(coalescer):
            return await asyncio.gather(
                *(coalescer.submit(p, cfg) for p in points)
            )

        coalescer, results = run_coalesced(
            engine, go, max_wait_ms=50.0, max_batch=64
        )
        assert len(results) == len(points)
        assert coalescer.requests == len(points)
        assert calls["n"] == len(points)


class TestDeadlineBypassRule:
    @pytest.mark.parametrize(
        "budget,expected",
        [
            (None, False),
            (Budget(max_pages=4), False),
            (Budget(deadline_ms=0.5), True),
            (Budget(deadline_ms=1.0), True),  # boundary: cannot survive
            (Budget(deadline_ms=5.0), False),
            (Budget(deadline_ms=0.5, max_pages=4), True),
        ],
    )
    def test_bypasses(self, budget, expected):
        coalescer = Coalescer(
            _BatchEngine(), None, max_wait_ms=1.0, max_batch=4
        )
        cfg = (
            QueryConfig(k=1)
            if budget is None
            else QueryConfig(k=1, budget=budget)
        )
        assert coalescer.bypasses(cfg) is expected


class TestEndToEndCoalescing:
    def test_concurrent_http_queries_share_engine_batches(self, serve):
        harness = serve(
            config=ServerConfig(max_wait_ms=40.0, max_batch=64)
        )
        point, k, fan = (0.5, 0.5), 3, 12
        bodies = [None] * fan
        barrier = threading.Barrier(fan)

        def fire(i):
            barrier.wait()
            status, _, body = harness.request_json(
                "POST", "/query", {"point": list(point), "k": k}
            )
            assert status == 200
            bodies[i] = body

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(fan)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        coalescer = harness.server.coalescer
        assert coalescer.requests == fan
        assert coalescer.largest_batch >= 2
        assert coalescer.coalesced_requests >= 2
        for body in bodies:
            assert body["coalesced"] is True
            certify(body, point, k, combo="coalesced")

    # -- the satellite: deadlines vs the coalescing window -------------
    @pytest.mark.parametrize("max_wait_ms", [0.5, 2.0, 25.0])
    def test_deadline_vs_window_property(self, serve, max_wait_ms):
        """Sweep window x deadline: a budget that cannot survive the
        window must bypass coalescing, and *every* served answer —
        coalesced, bypassed, or deadline-truncated — must be certified
        sound by the truncated-result oracle."""
        harness = serve(
            config=ServerConfig(max_wait_ms=max_wait_ms, max_batch=8)
        )
        deadlines = [0.05, 0.5, 2.0, 25.0, 500.0]
        probes = [(0.2, 0.8), (0.77, 0.33)]
        k = 5
        for deadline_ms in deadlines:
            for point in probes:
                status, _, body = harness.request_json(
                    "POST",
                    "/query",
                    {
                        "point": list(point),
                        "k": k,
                        "deadline_ms": deadline_ms,
                    },
                )
                assert status == 200
                if deadline_ms <= max_wait_ms:
                    # The budget cannot survive the window: the request
                    # must not have sat in it.
                    assert body["coalesced"] is False, (
                        f"deadline {deadline_ms}ms was coalesced into a "
                        f"{max_wait_ms}ms window"
                    )
                if body["truncated"]:
                    assert body["truncation_reason"] is not None
                certify(
                    body,
                    point,
                    k,
                    combo=f"w{max_wait_ms}-d{deadline_ms}",
                )

    def test_bypass_counter_increments(self, serve):
        harness = serve(config=ServerConfig(max_wait_ms=5.0))
        harness.request_json(
            "POST",
            "/query",
            {"point": [0.5, 0.5], "k": 1, "deadline_ms": 1.0},
        )
        collected = harness.server.registry.collect()
        assert collected["server.deadline_bypass"] >= 1
