"""Shared fixtures for the asyncio front-door tests.

The harness runs a real :class:`NNServer` on its own event loop in a
background thread and talks to it over real sockets with
``http.client`` — the tests exercise the exact wire path production
traffic takes, not a mocked transport.
"""

import asyncio
import http.client
import json
import math
import threading

import pytest

from repro.audit.oracle import check_truncated_result
from repro.baselines.linear_scan import linear_scan_items
from repro.core.neighbors import Neighbor
from repro.datasets import uniform_points
from repro.geometry.rect import Rect
from repro.rtree.tree import RTree
from repro.server import NNServer, ServerConfig
from repro.service.engine import QueryEngine
from repro.service.options import EngineOptions

#: One fixed dataset for the whole suite; trees are rebuilt per server
#: because a drained server closes its engine.
DATASET_N = 400
DATASET_SEED = 8
_POINTS = uniform_points(DATASET_N, seed=DATASET_SEED)
ITEMS = [(Rect.from_point(p), i) for i, p in enumerate(_POINTS)]


def build_tree(items=None):
    tree = RTree(max_entries=8)
    for rect, payload in items if items is not None else ITEMS:
        tree.insert(rect, payload=payload)
    return tree


def build_engine(workers=2):
    return QueryEngine(
        build_tree(), options=EngineOptions(packed=True, workers=workers)
    )


class ServerHarness:
    """One NNServer on a private event loop in a daemon thread."""

    def __init__(self, server: NNServer) -> None:
        self.server = server
        self.port = None
        self.loop = None
        self._stop = None
        self._ready = threading.Event()
        self._error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to the test thread
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def start(self) -> "ServerHarness":
        self._thread.start()
        assert self._ready.wait(15), "server failed to start in time"
        if self._error is not None:
            raise self._error
        return self

    def begin_stop(self) -> None:
        """Trigger the drain without waiting for it."""
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self._stop.set)

    def stop(self, timeout: float = 30.0) -> None:
        self.begin_stop()
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "server thread failed to drain"
        if self._error is not None:
            raise self._error

    # -- tiny synchronous HTTP client ---------------------------------
    def connection(self, timeout: float = 30.0) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )

    def request(self, method, path, payload=None, headers=None, timeout=30.0):
        conn = self.connection(timeout=timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def request_json(self, method, path, payload=None, **kwargs):
        status, headers, raw = self.request(method, path, payload, **kwargs)
        return status, headers, json.loads(raw)


@pytest.fixture
def serve():
    """Factory: boot a server (default engine unless given one)."""
    harnesses = []

    def _serve(engine=None, config=None, registry=None):
        if engine is None:
            engine = build_engine()
        harness = ServerHarness(NNServer(engine, config, registry))
        harnesses.append(harness)
        return harness.start()

    yield _serve
    for harness in harnesses:
        harness.stop()


# ---------------------------------------------------------------------
# Oracle certification of wire-format answers
# ---------------------------------------------------------------------
def neighbors_from_dicts(dicts):
    """Rebuild :class:`Neighbor` objects from ``/query`` response JSON."""
    return [
        Neighbor(
            payload=d["payload"],
            rect=Rect.from_point(d["point"]),
            distance=float(d["distance"]),
            distance_squared=float(d["distance"]) ** 2,
        )
        for d in dicts
    ]

def certify(body, point, k, combo="server", epsilon=0.0, items=None):
    """Every served answer must be oracle-certifiable from its JSON."""
    exact = linear_scan_items(
        items if items is not None else ITEMS, point, k=k
    )
    frontier = body["frontier_distance"]
    problems = check_truncated_result(
        neighbors_from_dicts(body["neighbors"]),
        point,
        k,
        exact,
        combo=combo,
        frontier=math.inf if frontier is None else float(frontier),
        epsilon=epsilon,
    )
    assert problems == [], problems
