"""Probes during a republish: no torn reads, honest shard liveness.

``ShardedQueryEngine.republish`` swaps the served snapshot under its
write lock while the front door keeps answering ``/readyz`` and
``/stats``.  These tests hammer both probes (and ``/query``) from
client threads across repeated epoch swaps and hold every single
response to the contract: readiness bodies are complete and internally
consistent, every ``/stats`` scrape is lint-clean Prometheus text, the
reported epoch is only ever one that was actually published, and a
killed shard worker shows up truthfully in the ``alive`` vector.
"""

import threading
import time

import pytest

from repro.obs.registry import MetricsRegistry, lint_prometheus
from repro.service.options import EngineOptions
from repro.shard import ShardedQueryEngine

from tests.server.conftest import ITEMS, certify

pytestmark = [pytest.mark.server, pytest.mark.shard]

SHARDS = 2


def _build_sharded(processes=False):
    return ShardedQueryEngine(
        items=ITEMS,
        shards=SHARDS,
        processes=processes,
        options=EngineOptions(cache_size=0),
    )


def _sample_value(text, name):
    """The value of a label-less sample in Prometheus exposition text."""
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    raise AssertionError(f"no sample {name} in scrape:\n{text}")


def _check_readyz(body, epochs):
    assert body["ready"] is True
    assert body["draining"] is False
    assert body["backend"] == "sharded"
    assert body["shards"] == SHARDS
    assert len(body["alive"]) == SHARDS
    assert all(isinstance(a, bool) for a in body["alive"])
    assert body["workers_alive"] == sum(body["alive"])
    assert body["epoch"] in epochs


class TestEpochSwapProbes:
    def test_readyz_tracks_republish_epoch(self, serve):
        engine = _build_sharded()
        harness = serve(engine=engine)
        status, _, before = harness.request_json("GET", "/readyz")
        assert status == 200
        _check_readyz(before, {engine.snapshot().epoch})

        new_epoch = engine.republish(items=ITEMS)
        assert new_epoch == before["epoch"] + 1
        status, _, after = harness.request_json("GET", "/readyz")
        assert status == 200
        _check_readyz(after, {new_epoch})

    def test_probes_coherent_under_concurrent_swaps(self, serve):
        engine = _build_sharded()
        registry = MetricsRegistry()
        harness = serve(engine=engine, registry=registry)
        first_epoch = engine.snapshot().epoch
        swaps = 6
        # Every epoch that will ever be published; a probe reporting
        # anything else has seen torn state.
        epochs = set(range(first_epoch, first_epoch + swaps + 1))

        stop = threading.Event()
        failures = []

        def _hammer_readyz():
            last = first_epoch
            while not stop.is_set():
                try:
                    status, _, body = harness.request_json("GET", "/readyz")
                    assert status == 200
                    _check_readyz(body, epochs)
                    # Epochs only move forward: a swap is atomic under
                    # the engine's write lock, never half-applied.
                    assert body["epoch"] >= last
                    last = body["epoch"]
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        def _hammer_stats():
            while not stop.is_set():
                try:
                    status, headers, raw = harness.request("GET", "/stats")
                    assert status == 200
                    assert headers.get("X-Content-Format") == "prometheus"
                    text = raw.decode("utf-8")
                    assert lint_prometheus(text) == []
                    assert _sample_value(text, "repro_engine_epoch") in epochs
                    for shard in range(SHARDS):
                        _sample_value(text, f"repro_shards_shard{shard}_pages")
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        def _hammer_query():
            while not stop.is_set():
                try:
                    status, _, body = harness.request_json(
                        "POST", "/query", {"point": [0.4, 0.6], "k": 5}
                    )
                    assert status == 200
                    # Every republish serves the same items, so answers
                    # are oracle-certifiable whichever epoch served them.
                    certify(body, (0.4, 0.6), 5, combo="mid-swap")
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        threads = [
            threading.Thread(target=t)
            for t in (_hammer_readyz, _hammer_stats, _hammer_query)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(swaps):
                engine.republish(items=ITEMS)
                time.sleep(0.02)  # let probes land between swaps too
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
        assert not failures, failures[0]
        assert engine.snapshot().epoch == first_epoch + swaps

        # Post-swap scrape agrees with the final published epoch.
        _, _, raw = harness.request("GET", "/stats")
        assert _sample_value(
            raw.decode("utf-8"), "repro_engine_epoch"
        ) == first_epoch + swaps


class TestHonestShardLiveness:
    def test_dead_worker_surfaces_in_readyz(self, serve):
        engine = _build_sharded(processes=True)
        harness = serve(engine=engine)
        status, _, body = harness.request_json("GET", "/readyz")
        assert status == 200
        assert body["alive"] == [True] * SHARDS

        victim = engine._handles[0]
        victim.proc.kill()
        victim.proc.join(timeout=10.0)
        deadline = time.monotonic() + 10.0
        while not victim.dead and time.monotonic() < deadline:
            time.sleep(0.01)
        assert victim.dead

        status, _, body = harness.request_json("GET", "/readyz")
        # Degraded, not down: the survivor keeps serving certified
        # truncated answers, and the probe says exactly which shard died.
        assert status == 200
        assert body["ready"] is True
        assert body["alive"] == [False, True]
        assert body["workers_alive"] == 1

        status, _, answer = harness.request_json(
            "POST", "/query", {"point": [0.5, 0.5], "k": 3}
        )
        assert status == 200
        assert answer["truncated"] is True
        assert answer["truncation_reason"] == "shard-lost"

    def test_republish_respawns_dead_worker(self, serve):
        engine = _build_sharded(processes=True)
        harness = serve(engine=engine)
        victim = engine._handles[0]
        victim.proc.kill()
        victim.proc.join(timeout=10.0)
        deadline = time.monotonic() + 10.0
        while not victim.dead and time.monotonic() < deadline:
            time.sleep(0.01)

        engine.republish(items=ITEMS)
        status, _, body = harness.request_json("GET", "/readyz")
        assert status == 200
        assert body["alive"] == [True] * SHARDS
        assert body["workers_alive"] == SHARDS

        status, _, answer = harness.request_json(
            "POST", "/query", {"point": [0.5, 0.5], "k": 3}
        )
        assert status == 200
        certify(answer, (0.5, 0.5), 3, combo="post-respawn")
