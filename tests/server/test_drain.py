"""Graceful drain: SIGTERM, in-flight completion, idle-connection abort."""

import json
import os
import queue
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future

import pytest

from repro.server import NNServer, ServerConfig
from repro.server.http import Request

from tests.server.conftest import build_engine

pytestmark = pytest.mark.server

WEDGE = (9.0, 9.0)
REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


class _GateSubmitEngine:
    """Delegates to a real engine, but wedges WEDGE submits on a gate."""

    def __init__(self, inner):
        self.inner = inner
        self.config = getattr(inner, "config", None)
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.close_called = threading.Event()

    def submit(self, point, config=None):
        if tuple(point) == WEDGE:
            future = Future()

            def run():
                self.entered.set()
                self.gate.wait(30)
                try:
                    future.set_result(
                        self.inner.query((0.5, 0.5), config=config)
                    )
                except BaseException as exc:  # pragma: no cover
                    future.set_exception(exc)

            threading.Thread(target=run, daemon=True).start()
            return future
        return self.inner.submit(point, config=config)

    def close(self, timeout=None):
        self.close_called.set()
        return self.inner.close()


def _wait_refused(port, timeout=10.0):
    """True once new connections to *port* are refused."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=1)
        except OSError:
            return True
        sock.close()
        time.sleep(0.02)
    return False


class TestDrainSequence:
    def test_inflight_request_completes_while_new_connections_refuse(
        self, serve
    ):
        engine = _GateSubmitEngine(build_engine(workers=1))
        harness = serve(
            engine=engine,
            config=ServerConfig(coalesce=False, drain_timeout=15.0),
        )
        port = harness.port
        outcome = {}

        def fire():
            outcome["response"] = harness.request_json(
                "POST", "/query", {"point": list(WEDGE), "k": 1}
            )

        inflight = threading.Thread(target=fire)
        inflight.start()
        assert engine.entered.wait(10), "wedged request never reached engine"

        harness.begin_stop()
        # Drain step 1: the listener closes before in-flight work is cut.
        assert _wait_refused(port), "listener stayed open during drain"
        assert not engine.close_called.is_set(), (
            "engine closed while a request was still in flight"
        )
        engine.gate.set()
        inflight.join(20)
        harness.stop()
        status, _, body = outcome["response"]
        assert status == 200
        assert body["neighbors"]
        assert engine.close_called.is_set()

    def test_idle_connection_is_aborted_at_drain_timeout(self, serve):
        harness = serve(
            config=ServerConfig(drain_timeout=0.5, coalesce=False)
        )
        # An idle keep-alive peer that never speaks and never hangs up.
        idle = socket.create_connection(("127.0.0.1", harness.port))
        try:
            started = time.monotonic()
            harness.stop(timeout=20.0)
            # Drain waited the 0.5 s grace then aborted the straggler
            # instead of hanging for the full join timeout.
            assert time.monotonic() - started < 15.0
        finally:
            idle.close()

    def test_routes_shed_while_draining(self):
        """During the drain window /query sheds 503 and /readyz flips."""

        async def go():
            server = NNServer(
                build_engine(workers=1),
                ServerConfig(drain_timeout=2.0),
            )
            await server.start()
            try:
                server._draining = True
                status, body, headers = await server._route(
                    Request(
                        method="POST",
                        path="/query",
                        body=b'{"point": [0.5, 0.5], "k": 1}',
                    )
                )
                assert status == 503
                assert dict(headers)["Retry-After"]
                assert "draining" in json.loads(body)["error"]

                status, body, _ = await server._route(
                    Request(method="GET", path="/readyz")
                )
                assert status == 503
                detail = json.loads(body)
                assert detail["ready"] is False
                assert detail["draining"] is True

                # Liveness stays 200: the pod is alive, just not ready.
                status, _, _ = await server._route(
                    Request(method="GET", path="/healthz")
                )
                assert status == 200
            finally:
                server._draining = False
                await server.shutdown()

        import asyncio

        asyncio.run(go())


class TestSignalDriven:
    def test_sigterm_drains_the_blocking_entry_point(self):
        """``python -m repro.server`` + SIGTERM = clean exit 0."""
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro.server",
                "--port",
                "0",
                "--n",
                "300",
                "--workers",
                "1",
            ],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        lines = queue.Queue()

        def pump():
            for line in proc.stdout:
                lines.put(line)
            lines.put(None)

        reader = threading.Thread(target=pump, daemon=True)
        reader.start()
        try:
            match = None
            deadline = time.monotonic() + 30.0
            while match is None and time.monotonic() < deadline:
                try:
                    line = lines.get(timeout=1.0)
                except queue.Empty:
                    continue
                assert line is not None, "server exited before listening"
                match = re.search(r"listening on .*:(\d+)", line)
            assert match is not None, "never saw the listening banner"
            port = int(match.group(1))

            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request(
                "POST", "/query", body='{"point": [0.5, 0.5], "k": 3}'
            )
            response = conn.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
            assert len(payload["neighbors"]) == 3
            conn.close()

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            output = []
            while True:
                line = lines.get(timeout=10.0)
                if line is None:
                    break
                output.append(line)
            text = "".join(output)
            assert "draining" in text
            assert "drained" in text
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)


class TestThreadedRun:
    def test_run_off_main_thread_serves_and_stop_drains(self):
        """run() in a worker thread (no signal handlers possible) must
        still serve, and stop() must trigger the identical drain."""
        engine = build_engine(workers=1)
        server = NNServer(engine, ServerConfig(port=0))
        thread = threading.Thread(target=server.run)
        thread.start()
        try:
            port = None
            deadline = time.monotonic() + 10.0
            while port is None and time.monotonic() < deadline:
                try:
                    port = server.port
                except RuntimeError:
                    time.sleep(0.01)
            assert port is not None, "run() never bound a socket"

            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request(
                "POST", "/query", body='{"point": [0.5, 0.5], "k": 3}'
            )
            response = conn.getresponse()
            assert response.status == 200
            assert len(json.loads(response.read())["neighbors"]) == 3
            conn.close()
        finally:
            server.stop()
            thread.join(timeout=20)
        assert not thread.is_alive(), "stop() did not drain run()"
        # Drain closed the engine (close_engine defaults to True).
        assert server._closed

    def test_stop_before_run_is_a_noop(self):
        engine = build_engine(workers=1)
        server = NNServer(engine, ServerConfig(port=0))
        server.stop()  # nothing serving: must not raise
        engine.close()
