"""Request spans at the front door: sampling, /spans, the E21 floor."""

import io
import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.registry import MetricsRegistry, lint_prometheus
from repro.obs.spans import load_spans_jsonl
from repro.server import ServerConfig
from repro.service.options import EngineOptions
from repro.shard import ShardedQueryEngine

from tests.server.conftest import ITEMS, certify

pytestmark = [pytest.mark.server, pytest.mark.obs]


class TestSampledTraces:
    def test_trace_flag_forces_sampling(self, serve):
        harness = serve(config=ServerConfig(span_sample=0.0))
        status, _, body = harness.request_json(
            "POST", "/query",
            {"point": [0.5, 0.5], "k": 3, "trace": True},
        )
        assert status == 200
        assert "trace" in body
        certify(body, (0.5, 0.5), 3, combo="span-forced")

        status, headers, raw = harness.request("GET", "/spans")
        assert status == 200
        assert headers.get("X-Content-Format") == "jsonl"
        spans = load_spans_jsonl(io.StringIO(raw.decode("utf-8")))
        trace = [s for s in spans if s.trace_id == body["trace"]]
        names = {s.name for s in trace}
        assert "http.request" in names
        assert "engine.query" in names
        assert "kernel" in names

    def test_span_tree_carries_kernel_page_accounting(self, serve):
        harness = serve(config=ServerConfig(span_sample=1.0))
        _, _, body = harness.request_json(
            "POST", "/query", {"point": [0.2, 0.8], "k": 5}
        )
        _, _, raw = harness.request("GET", "/spans")
        spans = load_spans_jsonl(io.StringIO(raw.decode("utf-8")))
        trace = [s for s in spans if s.trace_id == body["trace"]]
        (kernel,) = [s for s in trace if s.name == "kernel"]
        assert kernel.attrs["pages"] >= 1
        assert kernel.attrs["objects"] >= 5
        (http,) = [s for s in trace if s.name == "http.request"]
        assert http.attrs["status"] == 200
        assert http.parent_id is None

    def test_unsampled_request_emits_no_trace(self, serve):
        harness = serve(config=ServerConfig(span_sample=0.0))
        status, _, body = harness.request_json(
            "POST", "/query", {"point": [0.5, 0.5], "k": 2}
        )
        assert status == 200
        assert "trace" not in body
        status, _, raw = harness.request("GET", "/spans")
        assert status == 200
        assert raw == b""

    def test_batch_shares_one_trace(self, serve):
        harness = serve(config=ServerConfig(span_sample=1.0))
        points = [[0.1, 0.1], [0.9, 0.9]]
        status, _, body = harness.request_json(
            "POST", "/batch", {"points": points, "k": 3}
        )
        assert status == 200
        assert "trace" in body
        _, _, raw = harness.request("GET", "/spans")
        spans = load_spans_jsonl(io.StringIO(raw.decode("utf-8")))
        trace = [s for s in spans if s.trace_id == body["trace"]]
        (root,) = [s for s in trace if s.name == "http.request"]
        assert root.attrs["points"] == len(points)

    def test_seeded_sampler_is_deterministic(self, serve):
        decisions = []
        for _ in range(2):
            harness = serve(
                config=ServerConfig(span_sample=0.5, span_seed=7)
            )
            run = []
            for i in range(8):
                _, _, body = harness.request_json(
                    "POST", "/query", {"point": [0.5, 0.5], "k": 1}
                )
                run.append("trace" in body)
            decisions.append(run)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_span_log_stats_exported(self, serve):
        registry = MetricsRegistry()
        harness = serve(
            config=ServerConfig(span_sample=1.0), registry=registry
        )
        harness.request_json("POST", "/query", {"point": [0.5, 0.5], "k": 1})
        flat = registry.collect()
        assert flat["server.spans.observed"] == 1
        assert flat["server.spans.kept"] == 1


class TestSpansDisabledFloor:
    """ServerConfig(spans=False) is the pre-span serving path E21 floors."""

    def test_no_trace_machinery_when_disabled(self, serve):
        harness = serve(config=ServerConfig(spans=False))
        status, _, body = harness.request_json(
            "POST", "/query",
            {"point": [0.5, 0.5], "k": 3, "trace": True},  # ignored
        )
        assert status == 200
        assert "trace" not in body
        certify(body, (0.5, 0.5), 3, combo="spans-off")

    def test_spans_endpoint_404_when_disabled(self, serve):
        harness = serve(config=ServerConfig(spans=False))
        status, _, raw = harness.request("GET", "/spans")
        assert status == 404
        assert b"tracing is disabled" in raw

    def test_no_span_metrics_when_disabled(self, serve):
        registry = MetricsRegistry()
        harness = serve(config=ServerConfig(spans=False), registry=registry)
        harness.request_json("POST", "/query", {"point": [0.5, 0.5], "k": 1})
        assert not any(
            name.startswith("server.spans") for name in registry.collect()
        )


class TestSpansEndpoint:
    def test_get_only(self, serve):
        harness = serve()
        status, _, _ = harness.request("POST", "/spans")
        assert status == 405

    def test_jsonl_lines_are_sorted_compact_json(self, serve):
        harness = serve(config=ServerConfig(span_sample=1.0))
        harness.request_json("POST", "/query", {"point": [0.5, 0.5], "k": 2})
        _, _, raw = harness.request("GET", "/spans")
        for line in raw.decode("utf-8").splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)
            assert ": " not in line and ", " not in line

    def test_ring_bounded_by_span_log_config(self, serve):
        harness = serve(config=ServerConfig(span_sample=1.0, span_log=2))
        for _ in range(5):
            harness.request_json(
                "POST", "/query", {"point": [0.5, 0.5], "k": 1}
            )
        _, _, raw = harness.request("GET", "/spans")
        spans = load_spans_jsonl(io.StringIO(raw.decode("utf-8")))
        assert len({s.trace_id for s in spans}) == 2


class TestConfigValidation:
    def test_span_sample_range(self):
        with pytest.raises(InvalidParameterError):
            ServerConfig(span_sample=1.5)
        with pytest.raises(InvalidParameterError):
            ServerConfig(span_sample=-0.1)

    def test_span_log_floor(self):
        with pytest.raises(InvalidParameterError):
            ServerConfig(span_log=0)


class TestStatsGauges:
    """Satellite: coalescer fill/bypass and per-shard gauges on /stats."""

    def test_coalescer_gauges_exported_and_lint_clean(self, serve):
        registry = MetricsRegistry()
        harness = serve(
            config=ServerConfig(coalesce=True, max_wait_ms=1.0),
            registry=registry,
        )
        for _ in range(3):
            harness.request_json(
                "POST", "/query", {"point": [0.5, 0.5], "k": 3}
            )
        status, headers, raw = harness.request("GET", "/stats")
        assert status == 200
        assert headers.get("X-Content-Format") == "prometheus"
        text = raw.decode("utf-8")
        assert lint_prometheus(text) == []
        assert "repro_server_coalescer_window_fill_rate" in text
        assert "repro_server_coalescer_bypassed" in text
        assert "repro_server_coalescer_mean_batch" in text
        flat = registry.collect()
        assert 0.0 <= flat["server.coalescer.window_fill_rate"] <= 1.0

    def test_per_shard_gauges_exported(self, serve):
        engine = ShardedQueryEngine(
            items=ITEMS,
            shards=2,
            processes=False,
            options=EngineOptions(cache_size=0),
        )
        registry = MetricsRegistry()
        harness = serve(engine=engine, registry=registry)
        harness.request_json("POST", "/query", {"point": [0.5, 0.5], "k": 3})
        _, _, raw = harness.request("GET", "/stats")
        text = raw.decode("utf-8")
        assert lint_prometheus(text) == []
        for shard in (0, 1):
            assert f"repro_shards_shard{shard}_pages" in text
            assert f"repro_shards_shard{shard}_depth" in text
            assert f"repro_shards_shard{shard}_requests" in text
        flat = registry.collect()
        assert (
            flat["shards.shard0.pages"] + flat["shards.shard1.pages"] > 0
        )

    def test_deadline_bypass_counts_on_coalescer(self, serve):
        registry = MetricsRegistry()
        harness = serve(
            config=ServerConfig(coalesce=True, max_wait_ms=50.0),
            registry=registry,
        )
        # A deadline tighter than the window must bypass the coalescer
        # and be counted as such.
        status, _, body = harness.request_json(
            "POST", "/query",
            {"point": [0.5, 0.5], "k": 2, "deadline_ms": 5.0},
        )
        assert status == 200
        assert registry.collect()["server.coalescer.bypassed"] >= 1
