"""End-to-end front-door behavior over real sockets.

Every ``/query`` answer asserted here is also *certified* against a
linear-scan oracle — the server must never emit an answer the audit
machinery cannot vouch for.
"""

import threading
import time

import pytest

from repro.obs.registry import MetricsRegistry
from repro.server import ServerConfig
from repro.service.resilience import ResilientEngine

from tests.server.conftest import ITEMS, build_engine, certify

pytestmark = pytest.mark.server

WEDGE = (9.0, 9.0)


class TestQueryEndpoint:
    def test_answers_match_the_oracle(self, serve):
        harness = serve()
        for point in [(0.5, 0.5), (0.05, 0.9), (0.99, 0.01)]:
            for k in (1, 3, 10):
                status, _, body = harness.request_json(
                    "POST", "/query", {"point": list(point), "k": k}
                )
                assert status == 200
                assert len(body["neighbors"]) == k
                assert body["truncated"] is False
                certify(body, point, k, combo=f"query-k{k}")

    def test_neighbors_are_rank_ordered(self, serve):
        harness = serve()
        _, _, body = harness.request_json(
            "POST", "/query", {"point": [0.3, 0.7], "k": 5}
        )
        distances = [n["distance"] for n in body["neighbors"]]
        assert distances == sorted(distances)
        assert [n["rank"] for n in body["neighbors"]] == [1, 2, 3, 4, 5]

    def test_epsilon_is_honored_and_certified(self, serve):
        harness = serve()
        point, k, epsilon = (0.42, 0.17), 5, 0.25
        status, _, body = harness.request_json(
            "POST", "/query",
            {"point": list(point), "k": k, "epsilon": epsilon},
        )
        assert status == 200
        certify(body, point, k, combo="query-eps", epsilon=epsilon)

    def test_page_budget_truncation_is_reported_and_sound(self, serve):
        harness = serve()
        point, k = (0.5, 0.5), 20
        status, _, body = harness.request_json(
            "POST", "/query",
            {"point": list(point), "k": k, "max_pages": 2},
        )
        assert status == 200
        if body["truncated"]:
            assert body["truncation_reason"] is not None
            assert body["frontier_distance"] is not None
        certify(body, point, k, combo="query-budget")

    def test_batch_endpoint(self, serve):
        harness = serve()
        points = [[0.1, 0.1], [0.9, 0.9], [0.5, 0.25]]
        status, _, body = harness.request_json(
            "POST", "/batch", {"points": points, "k": 4}
        )
        assert status == 200
        assert len(body["results"]) == len(points)
        for point, result in zip(points, body["results"]):
            certify(result, tuple(point), 4, combo="batch")

    def test_keep_alive_serves_many_requests_per_connection(self, serve):
        harness = serve()
        conn = harness.connection()
        try:
            for _ in range(3):
                conn.request(
                    "POST", "/query", body='{"point": [0.5, 0.5], "k": 1}'
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestValidation:
    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ({}, "point"),
            ({"point": []}, "point"),
            ({"point": "oops"}, "point"),
            ({"point": [1, "x"]}, "point"),
            ({"point": [0.5, 0.5], "k": "three"}, "k"),
        ],
    )
    def test_bad_query_payloads_are_400(self, serve, payload, fragment):
        harness = serve()
        status, _, body = harness.request_json("POST", "/query", payload)
        assert status == 400
        assert fragment in body["error"]

    def test_invalid_k_value_is_400(self, serve):
        harness = serve()
        status, _, body = harness.request_json(
            "POST", "/query", {"point": [0.5, 0.5], "k": 0}
        )
        assert status == 400

    def test_non_json_body_is_400(self, serve):
        harness = serve()
        status, _, raw = harness.request("POST", "/query", headers={})
        assert status == 400  # empty body
        conn = harness.connection()
        try:
            conn.request("POST", "/query", body="this is not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_route_is_404(self, serve):
        harness = serve()
        status, _, body = harness.request_json("GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, serve):
        harness = serve()
        assert harness.request("GET", "/query")[0] == 405
        assert harness.request("POST", "/healthz")[0] == 405
        assert harness.request("POST", "/stats")[0] == 405

    def test_oversize_body_is_413_via_config(self, serve):
        harness = serve(config=ServerConfig(max_body_bytes=64))
        big = {"point": [0.5] * 200, "k": 1}
        status, _, _ = harness.request_json("POST", "/query", big)
        assert status == 413

    def test_batch_requires_points_array(self, serve):
        harness = serve()
        assert harness.request_json("POST", "/batch", {})[0] == 400
        assert (
            harness.request_json("POST", "/batch", {"points": []})[0] == 400
        )


class _StubEngine:
    """Minimal engine with a controllable ``liveness()`` hook."""

    config = None

    def __init__(self, ready=True):
        self.ready = ready
        self.closed = False

    def liveness(self):
        return {"ready": self.ready, "backend": "stub", "epoch": 7}

    def submit(self, point, config=None):  # pragma: no cover - unused
        raise NotImplementedError

    def close(self, timeout=None):
        self.closed = True


class TestHealthAndReadiness:
    def test_healthz(self, serve):
        harness = serve()
        status, _, body = harness.request_json("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_readyz_reports_engine_liveness(self, serve):
        harness = serve()
        status, _, body = harness.request_json("GET", "/readyz")
        assert status == 200
        assert body["ready"] is True
        assert body["backend"] == "thread"
        assert body["draining"] is False

    def test_readyz_is_503_when_the_engine_is_not_ready(self, serve):
        harness = serve(engine=_StubEngine(ready=False))
        status, _, body = harness.request_json("GET", "/readyz")
        assert status == 503
        assert body["ready"] is False
        assert body["backend"] == "stub"
        assert body["epoch"] == 7

    def test_shutdown_closes_the_engine(self, serve):
        engine = _StubEngine()
        harness = serve(engine=engine)
        harness.stop()
        assert engine.closed


class TestStats:
    def test_prometheus_export_includes_server_metrics(self, serve):
        registry = MetricsRegistry()
        harness = serve(registry=registry)
        harness.request_json("POST", "/query", {"point": [0.5, 0.5], "k": 1})
        status, headers, raw = harness.request("GET", "/stats")
        assert status == 200
        text = raw.decode("utf-8")
        assert "repro_server_requests" in text
        assert "repro_server_connections" in text
        assert "repro_server_coalescer_requests" in text
        assert "repro_server_responses_200" in text
        # The engine's own stats ride along in the same registry.
        assert "repro_engine_" in text


class _GateBackend:
    """Delegating backend whose ``query`` blocks on a gate for WEDGE."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()
        self.entered = threading.Event()

    def query(self, point, config=None):
        if tuple(point) == WEDGE:
            self.entered.set()
            self.gate.wait(30)
        return self.inner.query(point, config=config)

    def close(self, timeout=None):
        return self.inner.close()


class TestAdmissionMapping:
    def test_quota_breach_is_429_with_retry_after(self, serve):
        engine = ResilientEngine(
            engine=build_engine(workers=1),
            workers=1,
            queue_capacity=16,
            quota_rate=0.001,
            quota_burst=1,
        )
        harness = serve(engine=engine)
        payload = {"point": [0.5, 0.5], "k": 1, "client": "alice"}
        first = harness.request_json("POST", "/query", payload)
        assert first[0] == 200
        status, headers, body = harness.request_json(
            "POST", "/query", payload
        )
        assert status == 429
        assert "Retry-After" in headers
        assert float(headers["Retry-After"]) > 0
        assert "quota" in body["error"]
        assert body["retry_after"] > 0

    def test_queue_full_shedding_is_503_with_retry_after(self, serve):
        backend = _GateBackend(build_engine(workers=1))
        engine = ResilientEngine(
            engine=backend,
            workers=1,
            queue_capacity=1,
            shed_policy="reject-newest",
        )
        harness = serve(
            engine=engine,
            config=ServerConfig(coalesce=False, drain_timeout=5.0),
        )
        responses = {}

        def fire(name, point):
            responses[name] = harness.request_json(
                "POST", "/query", {"point": list(point), "k": 1}
            )

        wedged = threading.Thread(target=fire, args=("wedged", WEDGE))
        wedged.start()
        assert backend.entered.wait(10)
        queued = threading.Thread(target=fire, args=("queued", (0.5, 0.5)))
        queued.start()
        # Give the queued request time to occupy the single slot.
        deadline = time.monotonic() + 5.0
        while engine.stats().pending < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        status, headers, body = harness.request_json(
            "POST", "/query", {"point": [0.25, 0.25], "k": 1}
        )
        assert status == 503
        assert "Retry-After" in headers
        backend.gate.set()
        wedged.join(20)
        queued.join(20)
        assert responses["wedged"][0] == 200
        assert responses["queued"][0] == 200

    def test_resilient_responses_carry_serving_telemetry(self, serve):
        engine = ResilientEngine(engine=build_engine(workers=1), workers=1)
        harness = serve(engine=engine)
        point, k = (0.6, 0.4), 3
        status, _, body = harness.request_json(
            "POST", "/query", {"point": list(point), "k": k}
        )
        assert status == 200
        assert body["wait_ms"] >= 0.0
        assert body["service_ms"] >= 0.0
        assert body["brownout_level"] == 0
        certify(body, point, k, combo="resilient")
