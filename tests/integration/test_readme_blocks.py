"""The README's Python code blocks must actually run.

Broken quickstart snippets are the most common open-source documentation
failure; this test extracts every fenced ```python block from README.md
and executes them in one shared namespace (so later blocks can use earlier
blocks' variables, as a reader would).
"""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    return _BLOCK_RE.findall(README.read_text())


def test_readme_has_python_blocks():
    assert len(_python_blocks()) >= 2


def test_readme_blocks_execute():
    namespace = {}
    # Seed names the snippets use illustratively.
    preamble = (
        "from repro import RTree\n"
        "tree = RTree()\n"
        "tree.insert((0.0, 0.0), payload='seed')\n"
        "p = (1.0, 1.0)\n"
        "p1, p2, p3 = (0.0, 0.0), (1.0, 0.0), (0.0, 1.0)\n"
    )
    exec(preamble, namespace)
    for index, block in enumerate(_python_blocks()):
        try:
            exec(block, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"README python block #{index} failed: {exc}\n---\n{block}"
            ) from exc
