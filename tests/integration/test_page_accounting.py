"""Page accounting end-to-end: the paper's metric must be exact.

These tests pin down the accounting chain tracker -> buffer -> stats that
every experiment number rests on.
"""

import pytest

from repro import (
    CountingTracker,
    LruBufferPool,
    PageModel,
    bulk_load,
    nearest,
)
from repro.datasets import uniform_points


@pytest.fixture(scope="module")
def tree():
    points = uniform_points(3000, seed=51)
    model = PageModel(page_size=1024, dimension=2)
    return bulk_load(
        [(p, i) for i, p in enumerate(points)],
        max_entries=model.max_entries(),
        min_entries=model.min_entries(),
    )


class TestDeterminism:
    def test_same_query_same_pages(self, tree):
        counts = set()
        for _ in range(3):
            tracker = CountingTracker()
            nearest(tree, (400.0, 600.0), k=4, tracker=tracker)
            counts.add(tracker.stats.total)
        assert len(counts) == 1

    def test_stats_equal_tracker_for_all_algorithms(self, tree):
        for algorithm in ("dfs", "best-first"):
            tracker = CountingTracker()
            result = nearest(
                tree, (123.0, 456.0), k=3, algorithm=algorithm, tracker=tracker
            )
            assert tracker.stats.total == result.stats.nodes_accessed


class TestPageIdentity:
    def test_each_page_visited_once_per_query(self, tree):
        # A single NN query never revisits a node (tree traversal).
        tracker = CountingTracker()
        nearest(tree, (777.0, 111.0), k=2, tracker=tracker)
        assert all(c == 1 for c in tracker.stats.per_page.values())

    def test_root_page_always_accessed(self, tree):
        tracker = CountingTracker()
        nearest(tree, (0.0, 0.0), k=1, tracker=tracker)
        assert tree.root.node_id in tracker.stats.per_page

    def test_node_ids_are_unique_pages(self, tree):
        ids = [node.node_id for node in tree.nodes()]
        assert len(ids) == len(set(ids)) == tree.node_count


class TestBufferComposition:
    def test_pool_inner_counts_misses_only(self, tree):
        pool = LruBufferPool(16, inner=CountingTracker())
        for x in (100.0, 110.0, 120.0):
            nearest(tree, (x, 500.0), k=2, tracker=pool)
        assert pool.inner.stats.total == pool.stats.misses
        assert pool.stats.hits + pool.stats.misses == pool.stats.accesses

    def test_infinite_buffer_reads_each_page_once(self, tree):
        pool = LruBufferPool(10_000, inner=CountingTracker())
        for x in range(0, 1000, 50):
            nearest(tree, (float(x), float(x)), k=3, tracker=pool)
        # With capacity above the page count, every page is read at most once.
        assert pool.inner.stats.total == pool.inner.stats.unique_pages
        assert pool.inner.stats.total <= tree.node_count

    def test_bigger_buffer_never_more_misses(self, tree):
        queries = [(float(x), 500.0) for x in range(0, 1000, 20)]
        misses = []
        for capacity in (0, 8, 64, 512):
            pool = LruBufferPool(capacity)
            for q in queries:
                nearest(tree, q, k=2, tracker=pool)
            misses.append(pool.stats.misses)
        assert misses == sorted(misses, reverse=True)
