"""Documentation/registry consistency: the docs must not drift.

DESIGN.md's experiment index, EXPERIMENTS.md's sections and the
``benchmarks/`` directory must all agree with the live experiment
registry — a cheap guard against the most common doc-rot failure in
research code.
"""

import pathlib
import re

from repro.bench.experiments import EXPERIMENTS

ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_design_lists_every_experiment():
    design = (ROOT / "DESIGN.md").read_text()
    for identifier in EXPERIMENTS:
        assert re.search(
            rf"\|\s*{identifier}\s*\|", design
        ), f"{identifier} missing from DESIGN.md's experiment index"


def test_experiments_md_covers_every_experiment():
    recorded = (ROOT / "EXPERIMENTS.md").read_text()
    for identifier in EXPERIMENTS:
        assert f"## {identifier} " in recorded or f"## {identifier}—" in recorded or \
            f"## {identifier} —" in recorded, (
                f"{identifier} has no section in EXPERIMENTS.md"
            )


def test_benchmark_file_exists_per_experiment():
    bench_dir = ROOT / "benchmarks"
    bench_names = {p.name for p in bench_dir.glob("bench_*.py")}
    for identifier in EXPERIMENTS:
        stem = identifier.lower()
        assert any(
            name.startswith(f"bench_{stem}_") for name in bench_names
        ), f"no benchmarks/bench_{stem}_*.py for {identifier}"


def test_registry_descriptions_are_substantive():
    for experiment in EXPERIMENTS.values():
        assert len(experiment.title) > 10
        assert len(experiment.description) > 30
        assert experiment.paper_ref


def test_readme_mentions_key_documents():
    readme = (ROOT / "README.md").read_text()
    for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHM.md",
                "docs/API.md", "docs/REPRODUCING.md"):
        assert doc.split("/")[-1] in readme, f"README does not mention {doc}"
