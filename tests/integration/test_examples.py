"""Every example script must run cleanly end-to-end.

These are the repository's executable documentation; a broken example is a
broken promise.  Each example prints its findings, so we also assert it
produced output.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert {"quickstart.py", "poi_finder.py", "road_network_nn.py"} <= names
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
)
def test_example_runs(script, capsys, monkeypatch):
    # Examples call main() under `if __name__ == "__main__"`; run_path with
    # run_name="__main__" triggers it exactly like `python examples/x.py`.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"
