"""Statistical sanity: measured NN behaviour matches spatial theory.

Independent of any oracle comparison, uniform random data has known
nearest-neighbor statistics.  If the index returned subtly wrong neighbors
these aggregate checks would drift, so they serve as an extra, orthogonal
line of defence (loose bounds; deterministic seeds, so no flakiness).
"""

import math
import statistics

from repro import bulk_load, nearest
from repro.datasets import uniform_points
from repro.datasets.queries import query_points_uniform


def _uniform_tree(n, seed=91):
    points = uniform_points(n, seed=seed)
    return bulk_load([(p, i) for i, p in enumerate(points)], max_entries=16)


class TestNearestNeighborDistanceTheory:
    def test_mean_nn_distance_matches_poisson_prediction(self):
        # For a 2-D Poisson process of intensity lambda, the expected
        # distance from a random location to the nearest point is
        # 1 / (2 * sqrt(lambda)).  Uniform points approximate this away
        # from the border.
        n = 8000
        extent = 1000.0
        tree = _uniform_tree(n)
        intensity = n / extent**2
        expected = 1.0 / (2.0 * math.sqrt(intensity))

        # Interior queries only (border effects inflate distances).
        queries = [
            q
            for q in query_points_uniform(600, seed=92)
            if 100.0 <= q[0] <= 900.0 and 100.0 <= q[1] <= 900.0
        ]
        measured = statistics.mean(
            nearest(tree, q, k=1).distances()[0] for q in queries
        )
        assert 0.8 * expected < measured < 1.2 * expected

    def test_kth_distance_scales_like_sqrt_k(self):
        # In 2-D the k-th NN distance grows ~ sqrt(k): the ratio of the
        # 16th to the 1st should be near 4, certainly between 2 and 8.
        tree = _uniform_tree(8000)
        queries = [
            q
            for q in query_points_uniform(300, seed=93)
            if 100.0 <= q[0] <= 900.0 and 100.0 <= q[1] <= 900.0
        ]
        ratios = []
        for q in queries:
            distances = nearest(tree, q, k=16).distances()
            if distances[0] > 0:
                ratios.append(distances[-1] / distances[0])
        ratio = statistics.median(ratios)
        assert 2.0 < ratio < 8.0

    def test_doubling_density_shrinks_nn_distance_by_sqrt2(self):
        sparse = _uniform_tree(4000, seed=94)
        dense = _uniform_tree(16000, seed=95)
        queries = [
            q
            for q in query_points_uniform(400, seed=96)
            if 100.0 <= q[0] <= 900.0 and 100.0 <= q[1] <= 900.0
        ]
        mean_sparse = statistics.mean(
            nearest(sparse, q).distances()[0] for q in queries
        )
        mean_dense = statistics.mean(
            nearest(dense, q).distances()[0] for q in queries
        )
        # 4x the density -> half the expected distance.
        ratio = mean_sparse / mean_dense
        assert 1.6 < ratio < 2.4
