"""Randomized long-horizon consistency checks (seeded, deterministic).

These go beyond the hypothesis property tests by driving one index through
hundreds of mixed operations and cross-checking *every* query type against
brute force at checkpoints — the closest thing to a miniature production
soak test the suite has.
"""

import random

import pytest

from repro import (
    RTree,
    linear_scan,
    nearest,
    validate_tree,
    within_distance,
)
from repro.core.aggregate import aggregate_nearest
from repro.core.farthest import farthest_best_first
from repro.geometry.point import euclidean
from tests.conftest import assert_same_distances

SEEDS = [101, 202, 303]


@pytest.mark.parametrize("seed", SEEDS)
def test_mixed_workload_soak(seed):
    rng = random.Random(seed)
    tree = RTree(max_entries=rng.choice([4, 6, 8]))
    live = {}
    next_id = 0

    for step in range(600):
        roll = rng.random()
        if roll < 0.55 or not live:
            point = (rng.uniform(-100, 100), rng.uniform(-100, 100))
            tree.insert(point, payload=next_id)
            live[next_id] = point
            next_id += 1
        elif roll < 0.85:
            victim = rng.choice(list(live))
            assert tree.delete(live.pop(victim), payload=victim)
        else:
            _checkpoint(tree, live, rng)

    validate_tree(tree)
    _checkpoint(tree, live, rng)


def _checkpoint(tree, live, rng):
    validate_tree(tree)
    assert len(tree) == len(live)
    if not live:
        return
    q = (rng.uniform(-120, 120), rng.uniform(-120, 120))
    k = rng.randint(1, min(6, len(live)))

    oracle = linear_scan(tree, q, k=k)
    for algorithm in ("dfs", "best-first"):
        got = nearest(tree, q, k=k, algorithm=algorithm)
        assert_same_distances(got.neighbors, oracle, tolerance=1e-6)

    radius = rng.uniform(0, 60)
    got_ids = sorted(n.payload for n in within_distance(tree, q, radius))
    want_ids = sorted(
        i for i, p in live.items() if euclidean(q, p) <= radius + 1e-9
    )
    loose_ids = sorted(
        i for i, p in live.items() if euclidean(q, p) <= radius * (1 + 1e-9) + 1e-6
    )
    assert set(want_ids) - set(loose_ids) == set()
    assert set(got_ids) <= set(loose_ids)
    assert set(w for w in want_ids if w not in got_ids) <= (
        set(loose_ids) - set(want_ids)
    )

    far, _ = farthest_best_first(tree, q, k=1)
    true_far = max(euclidean(q, p) for p in live.values())
    assert far[0].distance == pytest.approx(true_far, rel=1e-9, abs=1e-6)

    group = [
        (rng.uniform(-100, 100), rng.uniform(-100, 100)) for _ in range(2)
    ]
    agg, _ = aggregate_nearest(tree, group, k=1, aggregate="sum")
    true_best = min(
        sum(euclidean(g, p) for g in group) for p in live.values()
    )
    assert agg[0].distance == pytest.approx(true_best, rel=1e-9, abs=1e-6)


@pytest.mark.parametrize("seed", SEEDS)
def test_serialize_fuzz_roundtrip(seed, tmp_path):
    from repro import load_tree, save_tree

    rng = random.Random(seed)
    tree = RTree(max_entries=5)
    for i in range(rng.randint(1, 300)):
        tree.insert(
            (rng.uniform(0, 50), rng.uniform(0, 50)), payload=i
        )
    path = tmp_path / f"fuzz-{seed}.json"
    save_tree(tree, path)
    restored = load_tree(path)
    validate_tree(restored)
    q = (rng.uniform(0, 50), rng.uniform(0, 50))
    assert_same_distances(
        nearest(restored, q, k=3).neighbors,
        nearest(tree, q, k=3).neighbors,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_disk_fuzz_roundtrip(seed, tmp_path):
    from repro.rtree.disk import DiskRTree, write_tree

    rng = random.Random(seed)
    tree = RTree(max_entries=6)
    n = rng.randint(1, 400)
    for i in range(n):
        tree.insert((rng.uniform(0, 50), rng.uniform(0, 50)), payload=i)
    path = tmp_path / f"fuzz-{seed}.rnn"
    write_tree(tree, path, page_size=1024)
    with DiskRTree(path, page_size=1024, cache_nodes=3) as disk:
        assert len(disk) == n
        for _ in range(5):
            q = (rng.uniform(-10, 60), rng.uniform(-10, 60))
            k = rng.randint(1, 4)
            assert_same_distances(
                nearest(disk, q, k=k).neighbors,
                linear_scan(tree, q, k=k),
            )
