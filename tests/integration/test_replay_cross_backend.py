"""The observability PR's acceptance bar: one captured query stream
replays digest-identically through every serving backend.

A stream captured at the engine boundary (thread backend) is replayed
through a fresh :class:`QueryEngine`, a :class:`ResilientEngine`, and a
:class:`ShardedQueryEngine` built over the same items.  Every backend
must reproduce every answer bit-for-bit — same payloads, same squared
distances, same rank order, same truncation — which the chained
``stream_digest`` condenses into one comparable value.  Sharding splits
the traversal and resilience wraps answers in ``Served`` records; the
answers themselves must not notice.
"""

import io

import pytest

from repro.core.config import QueryConfig
from repro.datasets import uniform_points
from repro.datasets.queries import query_points_uniform
from repro.geometry.rect import Rect
from repro.obs.replay import CaptureLog, QueryRecorder, replay
from repro.rtree.tree import RTree
from repro.service.engine import QueryEngine
from repro.service.options import EngineOptions
from repro.service.resilience import ResilientEngine
from repro.shard import ShardedQueryEngine

pytestmark = [pytest.mark.obs, pytest.mark.shard]

N = 600
SEED = 17
_POINTS = uniform_points(N, seed=SEED)
ITEMS = [(Rect.from_point(p), i) for i, p in enumerate(_POINTS)]


def _tree():
    tree = RTree(max_entries=8)
    for rect, payload in ITEMS:
        tree.insert(rect, payload=payload)
    return tree


def _thread_engine():
    return QueryEngine(_tree(), options=EngineOptions(cache_size=0))


def _resilient_engine():
    return ResilientEngine(
        engine=QueryEngine(_tree(), options=EngineOptions(cache_size=0))
    )


def _sharded_engine():
    return ShardedQueryEngine(
        items=ITEMS,
        shards=3,
        processes=False,
        options=EngineOptions(cache_size=0),
    )


@pytest.fixture(scope="module")
def captured():
    """One stream, mixed k and algorithms, captured on the thread path."""
    engine = _thread_engine()
    recorder = QueryRecorder(engine)
    queries = query_points_uniform(40, seed=19)
    try:
        for i, q in enumerate(queries):
            recorder.query(
                q,
                config=QueryConfig(
                    k=1 + (i % 10),
                    algorithm="best-first" if i % 2 else "dfs",
                ),
            )
    finally:
        engine.close()
    assert len(recorder.log) == 40
    return recorder.log


class TestCrossBackendReplay:
    @pytest.mark.parametrize(
        "build",
        [_thread_engine, _resilient_engine, _sharded_engine],
        ids=["thread", "resilient", "sharded"],
    )
    def test_backend_reproduces_captured_answers(self, captured, build):
        engine = build()
        try:
            report = replay(engine, captured)
        finally:
            engine.close()
        assert report.ok, report.render()
        assert report.matched == len(captured)
        assert report.mismatches == []

    def test_stream_digest_identical_across_backends(self, captured):
        digests = {}
        for name, build in (
            ("thread", _thread_engine),
            ("resilient", _resilient_engine),
            ("sharded", _sharded_engine),
        ):
            engine = build()
            try:
                digests[name] = replay(engine, captured).stream_digest
            finally:
                engine.close()
        assert len(set(digests.values())) == 1, digests

    def test_round_tripped_log_replays_identically(self, captured):
        # The JSONL persistence layer must not perturb the stream: a
        # dumped-and-reloaded log replays to the same chained digest.
        buf = io.StringIO()
        captured.dump_jsonl(buf)
        buf.seek(0)
        reloaded = CaptureLog.load_jsonl(buf)
        engine = _thread_engine()
        try:
            first = replay(engine, captured)
            second = replay(engine, reloaded)
        finally:
            engine.close()
        assert first.stream_digest == second.stream_digest
        assert second.ok
