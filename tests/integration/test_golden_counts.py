"""Golden-number regression guard.

Page counts and distances are pure functions of the seeded workloads, so
they are pinned exactly.  If a refactor changes any number here, it
changed the *algorithm* (traversal order, pruning, tree construction) —
which must be a deliberate decision, not an accident.  Update the
constants only alongside an explanation in the commit.
"""

import pytest

from repro import CountingTracker, bulk_load, nearest
from repro.bench.experiments import segment_distance_sq
from repro.datasets import road_segments, uniform_points


@pytest.fixture(scope="module")
def uniform_tree():
    points = uniform_points(4096, seed=1995)
    return bulk_load(
        [(p, i) for i, p in enumerate(points)], max_entries=28, min_entries=11
    )


@pytest.fixture(scope="module")
def road_tree():
    segments = road_segments(4096, seed=1995)
    return bulk_load(
        [(s.mbr(), s) for s in segments], max_entries=28, min_entries=11
    )


class TestGoldenStructure:
    def test_packed_tree_shape(self, uniform_tree):
        assert uniform_tree.node_count == 154
        assert uniform_tree.height == 3

    def test_road_tree_shape(self, road_tree):
        assert road_tree.node_count == 154


GOLDEN_QUERIES = [
    # (query, k, algorithm, ordering, pages, first_dist, last_dist)
    ((500.0, 500.0), 1, "dfs", "mindist", 6, 9.599166, 9.599166),
    ((500.0, 500.0), 1, "dfs", "minmaxdist", 4, 9.599166, 9.599166),
    ((500.0, 500.0), 8, "dfs", "mindist", 7, 9.599166, 35.073575),
    ((500.0, 500.0), 1, "best-first", "mindist", 4, 9.599166, 9.599166),
    ((0.0, 0.0), 4, "dfs", "mindist", 3, 10.780562, 39.918159),
]


class TestGoldenQueries:
    @pytest.mark.parametrize(
        "query,k,algorithm,ordering,pages,first,last", GOLDEN_QUERIES
    )
    def test_uniform_query_counts_and_distances(
        self, uniform_tree, query, k, algorithm, ordering, pages, first, last
    ):
        tracker = CountingTracker()
        result = nearest(
            uniform_tree,
            query,
            k=k,
            algorithm=algorithm,
            ordering=ordering,
            tracker=tracker,
        )
        assert tracker.stats.total == pages
        assert result.distances()[0] == pytest.approx(first, abs=1e-6)
        assert result.distances()[-1] == pytest.approx(last, abs=1e-6)

    def test_road_query_with_exact_segment_distances(self, road_tree):
        tracker = CountingTracker()
        result = nearest(
            road_tree,
            (500.0, 500.0),
            k=4,
            object_distance_sq=segment_distance_sq,
            tracker=tracker,
        )
        assert tracker.stats.total == 5
        assert result.distances() == pytest.approx(
            [14.829188, 51.991488, 63.520325, 64.243999], abs=1e-6
        )
