"""Cross-algorithm agreement: every search strategy, one truth."""

import pytest

from repro import KdTree, bulk_load, linear_scan
from repro.core.knn_best_first import nearest_best_first, nearest_incremental
from repro.core.knn_dfs import nearest_dfs
from repro.datasets import gaussian_clusters, skewed_points, uniform_points
from tests.conftest import assert_same_distances, build_point_tree

DISTRIBUTIONS = {
    "uniform": uniform_points,
    "clustered": gaussian_clusters,
    "skewed": skewed_points,
}


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("k", [1, 4, 9])
def test_five_ways_agree(name, k):
    points = DISTRIBUTIONS[name](700, seed=41)
    items = [(p, i) for i, p in enumerate(points)]
    dynamic = build_point_tree(points, max_entries=8)
    packed = bulk_load(items, max_entries=8)
    kd = KdTree(items)

    for q in [(0.0, 0.0), (500.0, 500.0), (31.0, 977.0)]:
        oracle = linear_scan(dynamic, q, k=k)
        candidates = {
            "dfs/dynamic": nearest_dfs(dynamic, q, k=k)[0],
            "dfs/packed": nearest_dfs(packed, q, k=k)[0],
            "dfs/minmaxdist": nearest_dfs(dynamic, q, k=k, ordering="minmaxdist")[0],
            "best-first": nearest_best_first(dynamic, q, k=k)[0],
            "incremental": _take(nearest_incremental(dynamic, q), k),
            "kd-tree": kd.nearest(q, k=k)[0],
        }
        for label, got in candidates.items():
            assert_same_distances(got, oracle), label


def _take(stream, k):
    out = []
    for neighbor in stream:
        out.append(neighbor)
        if len(out) == k:
            break
    return out


def test_three_dimensional_agreement():
    import random

    rng = random.Random(42)
    points = [
        (rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100))
        for _ in range(500)
    ]
    tree = build_point_tree(points, max_entries=8)
    kd = KdTree([(p, i) for i, p in enumerate(points)])
    for q in [(50.0, 50.0, 50.0), (0.0, 100.0, 0.0)]:
        oracle = linear_scan(tree, q, k=6)
        assert_same_distances(nearest_dfs(tree, q, k=6)[0], oracle)
        assert_same_distances(kd.nearest(q, k=6)[0], oracle)


def test_rect_data_dfs_vs_best_first():
    from repro.datasets.synthetic import uniform_rects

    rects = uniform_rects(600, seed=43)
    tree = bulk_load([(r, i) for i, r in enumerate(rects)], max_entries=10)
    for q in [(1.0, 1.0), (500.0, 250.0)]:
        a, _ = nearest_dfs(tree, q, k=5)
        b, _ = nearest_best_first(tree, q, k=5)
        assert_same_distances(a, b)
