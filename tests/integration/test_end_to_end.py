"""Integration tests: whole-library flows a downstream user would run."""

import pytest

from repro import (
    CountingTracker,
    LruBufferPool,
    PageModel,
    RTree,
    bulk_load,
    linear_scan,
    nearest,
    nearest_incremental,
    validate_tree,
)
from repro.bench.experiments import segment_distance_sq
from repro.datasets import (
    gaussian_clusters,
    query_points_near_data,
    road_segments,
    uniform_points,
)
from tests.conftest import assert_same_distances


class TestPoiScenario:
    """Build a POI index, query it, update it — the quickstart flow."""

    def test_full_lifecycle(self):
        pois = gaussian_clusters(600, seed=31)
        tree = RTree(max_entries=8)
        for i, p in enumerate(pois):
            tree.insert(p, payload={"id": i, "kind": "cafe"})
        validate_tree(tree)

        user = (500.0, 500.0)
        result = nearest(tree, user, k=5)
        assert len(result) == 5
        assert all(n.payload["kind"] == "cafe" for n in result)

        # The closest POI closes down; the next query must not return it.
        gone = result[0]
        assert tree.delete(gone.rect, payload=gone.payload)
        after = nearest(tree, user, k=5)
        assert gone.payload not in after.payloads()
        assert after.distances()[0] >= result.distances()[0]


class TestRoadScenario:
    """Index street segments with exact object distances (paper's TIGER)."""

    def test_segment_index_matches_brute_force(self):
        segments = road_segments(1500, seed=32)
        tree = bulk_load(
            [(s.mbr(), s) for s in segments],
            max_entries=PageModel().max_entries(),
        )
        queries = query_points_near_data(
            20, [s.midpoint() for s in segments], seed=33
        )
        for q in queries:
            got = nearest(
                tree, q, k=3, object_distance_sq=segment_distance_sq
            )
            expected = linear_scan(
                tree, q, k=3, object_distance_sq=segment_distance_sq
            )
            assert_same_distances(got.neighbors, expected)

    def test_exact_distance_differs_from_mbr_distance(self):
        # A long diagonal segment's MBR can be much closer than the segment.
        segments = road_segments(800, seed=34)
        tree = bulk_load([(s.mbr(), s) for s in segments], max_entries=16)
        q = (500.0, 500.0)
        exact = nearest(tree, q, k=1, object_distance_sq=segment_distance_sq)
        approx = nearest(tree, q, k=1)
        assert exact.distances()[0] >= approx.distances()[0] - 1e-9


class TestBufferedWorkload:
    """A query stream against a page-accurate buffered index."""

    def test_correlated_stream_hits_buffer(self):
        points = uniform_points(4000, seed=35)
        tree = bulk_load(
            [(p, i) for i, p in enumerate(points)],
            max_entries=PageModel(page_size=1024).max_entries(),
        )
        pool = LruBufferPool(32)
        # Queries near each other reuse the same subtree pages.
        stream = query_points_near_data(
            60, [points[0]], seed=36, noise=10.0
        )
        for q in stream:
            nearest(tree, q, k=2, tracker=pool)
        assert pool.stats.hit_ratio > 0.5

    def test_logical_counts_are_buffer_independent(self):
        points = uniform_points(1000, seed=37)
        tree = bulk_load([(p, i) for i, p in enumerate(points)])
        q = (500.0, 500.0)
        plain = CountingTracker()
        nearest(tree, q, k=3, tracker=plain)
        pool = LruBufferPool(128)
        nearest(tree, q, k=3, tracker=pool)
        assert plain.stats.total == pool.stats.accesses


class TestIncrementalScenario:
    def test_distance_browsing_consumes_lazily(self):
        points = uniform_points(2000, seed=38)
        tree = bulk_load([(p, i) for i, p in enumerate(points)])
        stream = nearest_incremental(tree, (321.0, 123.0))
        # "Find the first neighbor more than 30 units away" — unknown k.
        found = None
        for rank, neighbor in enumerate(stream):
            if neighbor.distance > 30.0:
                found = (rank, neighbor)
                break
        assert found is not None
        rank, neighbor = found
        oracle = linear_scan(tree, (321.0, 123.0), k=rank + 1)
        assert neighbor.distance == pytest.approx(oracle[-1].distance)


class TestConcurrentReaders:
    """Reads are pure: interleaved consumers must not interfere."""

    def test_interleaved_incremental_generators(self):
        points = uniform_points(800, seed=39)
        tree = bulk_load([(p, i) for i, p in enumerate(points)])
        stream_a = nearest_incremental(tree, (100.0, 100.0))
        stream_b = nearest_incremental(tree, (900.0, 900.0))
        got_a, got_b = [], []
        for _ in range(50):  # strict interleaving
            got_a.append(next(stream_a))
            got_b.append(next(stream_b))
        expected_a = linear_scan(tree, (100.0, 100.0), k=50)
        expected_b = linear_scan(tree, (900.0, 900.0), k=50)
        assert_same_distances(got_a, expected_a)
        assert_same_distances(got_b, expected_b)

    def test_query_during_iteration_is_safe(self):
        points = uniform_points(500, seed=40)
        tree = bulk_load([(p, i) for i, p in enumerate(points)])
        stream = nearest_incremental(tree, (500.0, 500.0))
        first = next(stream)
        # A full query between generator steps must not disturb it.
        nearest(tree, (0.0, 0.0), k=10)
        second = next(stream)
        assert first.distance <= second.distance
