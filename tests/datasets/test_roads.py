"""Unit tests for the TIGER-like road network generator."""

import pytest

from repro.datasets.roads import RoadNetworkConfig, road_segments
from repro.errors import InvalidParameterError
from repro.geometry.segment import Segment


class TestConfig:
    def test_defaults_valid(self):
        RoadNetworkConfig()

    def test_rejects_bad_towns(self):
        with pytest.raises(InvalidParameterError):
            RoadNetworkConfig(towns=0)

    def test_rejects_fraction_overflow(self):
        with pytest.raises(InvalidParameterError):
            RoadNetworkConfig(arterial_fraction=0.6, rural_fraction=0.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(InvalidParameterError):
            RoadNetworkConfig(jitter=-0.1)


class TestGenerator:
    def test_exact_count(self):
        for n in [0, 1, 10, 500, 3333]:
            assert len(road_segments(n, seed=1)) == n

    def test_deterministic(self):
        assert road_segments(200, seed=2) == road_segments(200, seed=2)
        assert road_segments(200, seed=2) != road_segments(200, seed=3)

    def test_all_segments_valid_and_in_bounds(self):
        config = RoadNetworkConfig(bounds=(0.0, 500.0))
        segments = road_segments(1000, seed=4, config=config)
        for seg in segments:
            assert isinstance(seg, Segment)
            # Towns sit well inside the map; grid jitter may poke slightly
            # past the nominal bounds but never far.
            for c in seg.start + seg.end:
                assert -50.0 <= c <= 550.0

    def test_segments_are_short_streets(self):
        segments = road_segments(2000, seed=5)
        lengths = sorted(s.length() for s in segments)
        median = lengths[len(lengths) // 2]
        # Street segments are tiny relative to the 1000-unit map.
        assert median < 50.0

    def test_clustered_structure(self):
        # Urban clustering: a large fraction of segment midpoints should
        # fall into a small fraction of the map's area.
        segments = road_segments(2000, seed=6)
        cell = 100.0
        histogram = {}
        for seg in segments:
            mid = seg.midpoint()
            key = (int(mid[0] // cell), int(mid[1] // cell))
            histogram[key] = histogram.get(key, 0) + 1
        occupied = len(histogram)
        top_5 = sorted(histogram.values(), reverse=True)[:5]
        # The 5 densest cells (of ~100) hold a third or more of all streets.
        assert sum(top_5) > len(segments) / 3
        assert occupied < 100

    def test_rejects_negative_count(self):
        with pytest.raises(InvalidParameterError):
            road_segments(-5)
