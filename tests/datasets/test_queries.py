"""Unit tests for query-point samplers."""

import pytest

from repro.datasets.queries import query_points_near_data, query_points_uniform
from repro.errors import InvalidParameterError


class TestUniformQueries:
    def test_count_bounds_determinism(self):
        qs = query_points_uniform(100, seed=1, bounds=(0.0, 10.0))
        assert len(qs) == 100
        assert all(0.0 <= c <= 10.0 for q in qs for c in q)
        assert qs == query_points_uniform(100, seed=1, bounds=(0.0, 10.0))

    def test_dimension(self):
        qs = query_points_uniform(5, dimension=3)
        assert all(len(q) == 3 for q in qs)

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            query_points_uniform(-1)


class TestNearDataQueries:
    def test_queries_cluster_near_data(self):
        data = [(0.0, 0.0), (1000.0, 1000.0)]
        qs = query_points_near_data(200, data, seed=2, noise=1.0)
        assert len(qs) == 200
        for q in qs:
            near_a = abs(q[0]) < 10 and abs(q[1]) < 10
            near_b = abs(q[0] - 1000) < 10 and abs(q[1] - 1000) < 10
            assert near_a or near_b

    def test_zero_noise_returns_data_points(self):
        data = [(5.0, 5.0)]
        qs = query_points_near_data(10, data, seed=3, noise=0.0)
        assert all(q == (5.0, 5.0) for q in qs)

    def test_rejects_empty_data(self):
        with pytest.raises(InvalidParameterError):
            query_points_near_data(5, [])

    def test_rejects_negative_noise(self):
        with pytest.raises(InvalidParameterError):
            query_points_near_data(5, [(0.0, 0.0)], noise=-1.0)
