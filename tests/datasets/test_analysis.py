"""Tests for the workload characterization module — these pin the
generators' distributional claims from DESIGN.md."""

import pytest

from repro.datasets import gaussian_clusters, road_segments, uniform_points
from repro.datasets.analysis import describe_points, describe_segments
from repro.errors import InvalidParameterError


class TestDescribePoints:
    def test_rejects_empty_and_non_2d(self):
        with pytest.raises(InvalidParameterError):
            describe_points([])
        with pytest.raises(InvalidParameterError):
            describe_points([(1.0, 2.0, 3.0)])

    def test_uniform_data_is_even(self):
        summary = describe_points(uniform_points(4000, seed=171))
        assert summary.count == 4000
        assert summary.occupancy > 0.5          # most cells occupied
        # Poisson cell counts (mean ~1) have Gini ~0.5; anything well
        # below the clustered regime (~0.99) counts as even.
        assert summary.gini < 0.6
        assert summary.top_cells_share < 0.25

    def test_clustered_data_is_skewed(self):
        summary = describe_points(
            gaussian_clusters(4000, seed=172, clusters=4, spread=10.0)
        )
        assert summary.occupancy < 0.4          # most cells empty
        assert summary.gini > 0.9               # heavy concentration
        assert summary.top_cells_share > 0.15

    def test_uniform_vs_clustered_ordering(self):
        uniform = describe_points(uniform_points(3000, seed=173))
        clustered = describe_points(gaussian_clusters(3000, seed=173))
        assert clustered.gini > uniform.gini
        assert clustered.occupancy < uniform.occupancy

    def test_single_point(self):
        summary = describe_points([(5.0, 5.0)])
        assert summary.count == 1
        assert summary.bounds.is_degenerate()


class TestDescribeSegments:
    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            describe_segments([])

    def test_roads_have_tiger_like_character(self):
        # The DESIGN.md substitution claim, quantified: many *short*
        # segments (relative to the map) with *clustered* midpoints.
        summary = describe_segments(road_segments(5000, seed=174))
        assert summary.count == 5000
        assert summary.relative_median_length < 0.02   # short streets
        assert summary.midpoint_gini > 0.6             # urban clustering

    def test_road_clustering_exceeds_uniform_scatter(self):
        import random

        from repro.geometry.segment import Segment

        rng = random.Random(175)
        scattered = [
            Segment(
                (rng.uniform(0, 1000), rng.uniform(0, 1000)),
                (rng.uniform(0, 1000), rng.uniform(0, 1000)),
            )
            for _ in range(2000)
        ]
        roads = road_segments(2000, seed=175)
        assert (
            describe_segments(roads).midpoint_gini
            > describe_segments(scattered).midpoint_gini
        )

    def test_length_stats_consistent(self):
        summary = describe_segments(road_segments(1000, seed=176))
        assert summary.mean_length > 0
        assert summary.median_length > 0
