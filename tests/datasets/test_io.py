"""Unit tests for the CSV loaders."""

import pytest

from repro.datasets.io import load_points_csv, load_segments_csv
from repro.errors import InvalidParameterError


@pytest.fixture
def points_csv(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text("x,y,name\n1.0,2.0,alpha\n3.5,-4.0,beta\n")
    return path


@pytest.fixture
def segments_csv(tmp_path):
    path = tmp_path / "segments.csv"
    path.write_text(
        "x1,y1,x2,y2,road\n0,0,10,0,main-st\n5,5,5,9,oak-ave\n"
    )
    return path


class TestLoadPoints:
    def test_basic(self, points_csv):
        items = load_points_csv(points_csv)
        assert items == [((1.0, 2.0), 0), ((3.5, -4.0), 1)]

    def test_payload_column(self, points_csv):
        items = load_points_csv(points_csv, payload_column="name")
        assert [payload for _, payload in items] == ["alpha", "beta"]

    def test_custom_columns_and_dimension(self, tmp_path):
        path = tmp_path / "3d.csv"
        path.write_text("lon,lat,alt\n1,2,3\n")
        items = load_points_csv(path, coordinate_columns=("lon", "lat", "alt"))
        assert items[0][0] == (1.0, 2.0, 3.0)

    def test_semicolon_delimiter(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("x;y\n1;2\n")
        items = load_points_csv(path, delimiter=";")
        assert items[0][0] == (1.0, 2.0)

    def test_missing_column_reported(self, points_csv):
        with pytest.raises(InvalidParameterError, match="missing column"):
            load_points_csv(points_csv, coordinate_columns=("x", "z"))

    def test_bad_value_reports_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\nnope,4\n")
        with pytest.raises(InvalidParameterError, match="row 2"):
            load_points_csv(path)

    def test_empty_columns_rejected(self, points_csv):
        with pytest.raises(InvalidParameterError):
            load_points_csv(points_csv, coordinate_columns=())

    def test_loads_into_tree(self, points_csv):
        from repro import RTree, nearest

        tree = RTree()
        for point, payload in load_points_csv(points_csv, payload_column="name"):
            tree.insert(point, payload=payload)
        assert nearest(tree, (1.0, 2.0)).payloads() == ["alpha"]


class TestLoadSegments:
    def test_basic(self, segments_csv):
        items = load_segments_csv(segments_csv, payload_column="road")
        assert len(items) == 2
        segment, payload = items[0]
        assert payload == "main-st"
        assert segment.start == (0.0, 0.0)
        assert segment.end == (10.0, 0.0)

    def test_mismatched_endpoint_columns(self, segments_csv):
        with pytest.raises(InvalidParameterError):
            load_segments_csv(segments_csv, start_columns=("x1",))

    def test_missing_column(self, segments_csv):
        with pytest.raises(InvalidParameterError, match="missing column"):
            load_segments_csv(
                segments_csv, end_columns=("x9", "y9")
            )

    def test_index_payload_by_default(self, segments_csv):
        items = load_segments_csv(segments_csv)
        assert [payload for _, payload in items] == [0, 1]
