"""Unit tests for the synthetic workload generators."""

import pytest

from repro.datasets.synthetic import (
    gaussian_clusters,
    skewed_points,
    uniform_points,
    uniform_rects,
)
from repro.errors import InvalidParameterError


class TestUniformPoints:
    def test_count_and_bounds(self):
        pts = uniform_points(500, seed=1, bounds=(0.0, 10.0))
        assert len(pts) == 500
        assert all(0.0 <= c <= 10.0 for p in pts for c in p)

    def test_deterministic_by_seed(self):
        assert uniform_points(50, seed=7) == uniform_points(50, seed=7)
        assert uniform_points(50, seed=7) != uniform_points(50, seed=8)

    def test_dimension(self):
        pts = uniform_points(10, seed=1, dimension=4)
        assert all(len(p) == 4 for p in pts)

    def test_zero_count(self):
        assert uniform_points(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            uniform_points(-1)


class TestUniformRects:
    def test_rects_within_bounds(self):
        rects = uniform_rects(200, seed=2, bounds=(0.0, 100.0), max_side=5.0)
        assert len(rects) == 200
        for r in rects:
            assert all(0.0 <= c <= 100.0 for c in r.lo + r.hi)
            assert all(s <= 5.0 for s in r.sides())

    def test_rejects_negative_side(self):
        with pytest.raises(InvalidParameterError):
            uniform_rects(5, max_side=-1.0)


class TestGaussianClusters:
    def test_count_bounds_and_determinism(self):
        pts = gaussian_clusters(300, seed=3, bounds=(0.0, 100.0))
        assert len(pts) == 300
        assert all(0.0 <= c <= 100.0 for p in pts for c in p)
        assert pts == gaussian_clusters(300, seed=3, bounds=(0.0, 100.0))

    def test_clustering_is_real(self):
        # Clustered data should have much lower mean nearest-pair distance
        # than uniform data of the same size.
        from repro.geometry.point import euclidean_squared

        def mean_nn(points):
            total = 0.0
            for i, p in enumerate(points):
                total += min(
                    euclidean_squared(p, q)
                    for j, q in enumerate(points)
                    if i != j
                )
            return total / len(points)

        clustered = gaussian_clusters(150, seed=4, clusters=3, spread=5.0)
        uniform = uniform_points(150, seed=4)
        assert mean_nn(clustered) < mean_nn(uniform)

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            gaussian_clusters(10, clusters=0)
        with pytest.raises(InvalidParameterError):
            gaussian_clusters(10, spread=-1.0)


class TestSkewedPoints:
    def test_density_rises_toward_lower_corner(self):
        pts = skewed_points(2000, seed=5, bounds=(0.0, 1000.0), exponent=3.0)
        below = sum(1 for p in pts if p[0] < 500.0)
        assert below > 1500  # heavily skewed toward the low end

    def test_rejects_bad_exponent(self):
        with pytest.raises(InvalidParameterError):
            skewed_points(10, exponent=0.0)
