"""The differ itself must be trustworthy: it catches planted lies."""

import pytest

from repro.audit.backends import build_backends
from repro.audit.oracle import check_result, diff_backends, exact_neighbors
from repro.core.neighbors import Neighbor
from repro.datasets.synthetic import gaussian_clusters, uniform_points
from repro.geometry.rect import Rect

pytestmark = pytest.mark.audit


def _neighbor(point, payload, distance):
    return Neighbor(
        payload=payload,
        rect=Rect.from_point(point),
        distance=distance,
        distance_squared=distance * distance,
    )


class TestCheckResult:
    def setup_method(self):
        self.points = [(0.0, 0.0), (3.0, 4.0), (6.0, 8.0)]
        self.items = [(Rect.from_point(p), i) for i, p in enumerate(self.points)]
        self.query = (0.0, 0.0)
        self.exact = exact_neighbors(self.items, self.query, 2)

    def test_clean_result_passes(self):
        problems = check_result(
            self.exact, self.query, 2, self.exact, "self", points=self.points
        )
        assert problems == []

    def test_size_mismatch_detected(self):
        problems = check_result(
            self.exact[:1], self.query, 2, self.exact, "combo",
            points=self.points,
        )
        assert [p.kind for p in problems] == ["size-mismatch"]

    def test_distance_mismatch_detected(self):
        wrong = [self.exact[0], _neighbor((6.0, 8.0), 2, 10.0)]
        problems = check_result(
            wrong, self.query, 2, self.exact, "combo", points=self.points
        )
        assert "distance-mismatch" in {p.kind for p in problems}

    def test_self_inconsistent_distance_detected(self):
        # Claimed distance does not match the reported rect.
        lying = [self.exact[0], _neighbor((3.0, 4.0), 1, 4.0)]
        problems = check_result(
            lying, self.query, 2, self.exact, "combo", points=self.points
        )
        assert "self-inconsistent" in {p.kind for p in problems}

    def test_wrong_payload_mapping_detected(self):
        # Right distance, but the payload points at a different point.
        forged = [self.exact[0], _neighbor((3.0, 4.0), 2, 5.0)]
        problems = check_result(
            forged, self.query, 2, self.exact, "combo", points=self.points
        )
        assert "payload-mismatch" in {p.kind for p in problems}

    def test_epsilon_band_accepts_slack_and_rejects_beyond(self):
        approx = [self.exact[0], _neighbor((6.0, 8.0), 2, 10.0)]
        # exact ranks: 0.0, 5.0; returned 10.0 at rank 1 is within 5*(1+1):
        ok = check_result(
            approx, self.query, 2, self.exact, "combo",
            points=self.points, epsilon=1.0,
        )
        assert ok == []
        # ... but violates a tight epsilon:
        bad = check_result(
            approx, self.query, 2, self.exact, "combo",
            points=self.points, epsilon=0.1,
        )
        assert "epsilon-violation" in {p.kind for p in bad}


class TestDiffBackends:
    @pytest.mark.parametrize("generator,seed", [
        (uniform_points, 101),
        (gaussian_clusters, 202),
    ])
    def test_all_combos_agree_on_real_workloads(self, generator, seed, tmp_path):
        points = generator(60, seed=seed)
        with build_backends(points, tmp_dir=str(tmp_path)) as backends:
            for query in [(500.0, 500.0), points[7], (-100.0, 1200.0)]:
                for k in (1, 3, 10):
                    assert diff_backends(
                        backends, points, query, k, epsilon=0.5
                    ) == []

    def test_detects_corrupted_backend(self, tmp_path):
        # Swap two payloads in the raw item list: the oracle's own ground
        # truth now disagrees with every tree backend, so the differ must
        # light up (this simulates an index returning the wrong object).
        points = uniform_points(40, seed=33)
        with build_backends(points, tmp_dir=str(tmp_path)) as backends:
            shifted = points[1:] + points[:1]
            problems = diff_backends(backends, shifted, (500.0, 500.0), 3)
            assert problems
            assert "payload-mismatch" in {p.kind for p in problems}
