"""Pruning soundness certification — and proof it catches unsound prunes."""

import pytest

from repro.audit.backends import build_memory_tree
from repro.audit.soundness import (
    check_pruning_soundness,
    subtree_min_distance_sq,
)
from repro.core.knn_dfs import _set_prune_slack, nearest_dfs
from repro.datasets.synthetic import gaussian_clusters, uniform_points
from repro.geometry.rect import Rect

pytestmark = pytest.mark.audit


def _items(points):
    return [(Rect.from_point(p), i) for i, p in enumerate(points)]


class TestSubtreeScan:
    def test_min_distance_matches_brute_force(self):
        points = uniform_points(80, seed=5)
        tree = build_memory_tree(points)
        query = (321.0, 654.0)
        expected = min(
            sum((a - b) ** 2 for a, b in zip(query, p)) for p in points
        )
        assert subtree_min_distance_sq(tree.root, query) == pytest.approx(
            expected, rel=1e-12
        )


class TestSoundCertification:
    @pytest.mark.parametrize("generator,seed", [
        (uniform_points, 11),
        (gaussian_clusters, 22),
    ])
    @pytest.mark.parametrize("ordering", ["mindist", "minmaxdist"])
    def test_healthy_search_certifies_clean(self, generator, seed, ordering):
        points = generator(120, seed=seed)
        tree = build_memory_tree(points)
        items = _items(points)
        for query in [(500.0, 500.0), points[3], (1500.0, -200.0)]:
            for k in (1, 4):
                assert check_pruning_soundness(
                    tree, items, query, k=k, ordering=ordering
                ) == []

    def test_pruning_actually_happened(self):
        # Guard against a vacuous certificate: the instrumented search on
        # this workload must actually record prune events.
        points = uniform_points(200, seed=44)
        tree = build_memory_tree(points)
        _, stats = nearest_dfs(tree, (500.0, 500.0), k=1)
        assert stats.total_pruned > 0


class TestBrokenPruneCaught:
    def test_unsound_slack_produces_violations(self):
        points = uniform_points(150, seed=77)
        tree = build_memory_tree(points)
        items = _items(points)
        queries = [(500.0, 500.0), (250.0, 750.0), (100.0, 100.0)]
        previous = _set_prune_slack(0.25)
        try:
            violations = []
            for query in queries:
                for k in (1, 3):
                    violations += check_pruning_soundness(
                        tree, items, query, k=k
                    )
        finally:
            _set_prune_slack(previous)
        assert violations, "a 0.25x prune slack must drop true neighbors"
        kinds = {v.kind for v in violations}
        assert kinds & {"p1-dropped-neighbor", "p3-dropped-neighbor"}

    def test_slack_is_restored(self):
        # The seam restores cleanly: a healthy run after the broken one.
        points = uniform_points(60, seed=88)
        tree = build_memory_tree(points)
        assert check_pruning_soundness(
            tree, _items(points), (500.0, 500.0), k=2
        ) == []
