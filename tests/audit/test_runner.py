"""End-to-end audit runs: clean pass, planted-bug catch, report contract."""

import json

import pytest

from repro.audit.runner import AuditConfig, run_audit
from repro.audit.workloads import make_workload
from repro.core.knn_dfs import _set_prune_slack
from repro.errors import InvalidParameterError

pytestmark = pytest.mark.audit


class TestWorkloads:
    def test_deterministic_per_seed_and_case(self):
        a = make_workload(1995, 7, "clustered")
        b = make_workload(1995, 7, "clustered")
        assert a.points == b.points
        assert a.queries == b.queries
        assert a.ks == b.ks
        assert a.max_entries == b.max_entries

    def test_distinct_cases_differ(self):
        a = make_workload(1995, 0, "uniform")
        b = make_workload(1995, 1, "uniform")
        assert a.points != b.points

    def test_rejects_unknown_distribution(self):
        with pytest.raises(InvalidParameterError):
            make_workload(0, 0, "adversarial")

    def test_degenerate_queries_present(self):
        workload = make_workload(1995, 3, "uniform")
        # One query sits exactly on an indexed point by construction.
        assert any(q in workload.points for q in workload.queries)


class TestRunAudit:
    def test_short_run_is_clean_and_counts_checks(self):
        report = run_audit(AuditConfig(seed=1995, cases=6))
        assert report.clean
        assert report.oracle_checks > 0
        assert report.soundness_checks > 0
        assert report.metamorphic_checks > 0
        assert report.total_checks == (
            report.oracle_checks
            + report.soundness_checks
            + report.metamorphic_checks
        )

    def test_json_report_round_trips(self):
        report = run_audit(AuditConfig(seed=3, cases=2))
        payload = json.loads(report.to_json())
        assert payload["clean"] is True
        assert payload["seed"] == 3
        assert payload["checks"]["total"] == report.total_checks
        assert payload["failures"] == []

    def test_invalid_config_rejected(self):
        with pytest.raises(InvalidParameterError):
            AuditConfig(cases=0)
        with pytest.raises(InvalidParameterError):
            AuditConfig(distributions=("uniform", "nope"))

    def test_planted_broken_prune_is_caught_and_shrunk(self):
        previous = _set_prune_slack(0.25)
        try:
            report = run_audit(
                AuditConfig(seed=1995, cases=10, shrink=True, max_failures=2)
            )
        finally:
            _set_prune_slack(previous)
        assert not report.clean
        shrunk = [f for f in report.failures if f.shrunk_points is not None]
        assert shrunk, "failures must carry a shrunk minimal repro"
        smallest = min(shrunk, key=lambda f: len(f.shrunk_points))
        # A minimal repro is dramatically smaller than the ~20-90 point
        # workload it came from, and still names the query and k.
        assert len(smallest.shrunk_points) <= 15
        assert smallest.shrunk_query is not None
        assert smallest.shrunk_k >= 1
        # The report serializes the repro for machine consumption.
        payload = json.loads(report.to_json())
        assert any("shrunk" in f for f in payload["failures"])
