"""ddmin behavior: minimal, still-failing, deterministic."""

import pytest

from repro.audit.shrink import shrink_k, shrink_points

pytestmark = pytest.mark.audit


class TestShrinkPoints:
    def test_shrinks_to_single_culprit(self):
        points = [(float(i), 0.0) for i in range(50)]
        culprit = (13.0, 0.0)

        def fails(candidate):
            return culprit in candidate

        minimal = shrink_points(points, fails)
        assert minimal == [culprit]

    def test_shrinks_pairwise_interaction(self):
        # Failure needs BOTH halves of a pair — ddmin must keep both.
        points = [(float(i), float(i)) for i in range(40)]
        a, b = (5.0, 5.0), (31.0, 31.0)

        def fails(candidate):
            return a in candidate and b in candidate

        minimal = shrink_points(points, fails)
        assert sorted(minimal) == sorted([a, b])

    def test_non_failing_input_returned_unchanged(self):
        points = [(1.5, 2.5), (3.5, 4.5)]
        assert shrink_points(points, lambda c: False) == points

    def test_result_always_fails_predicate(self):
        points = [(float(i), 1.0) for i in range(30)]

        def fails(candidate):
            return len(candidate) >= 7

        minimal = shrink_points(points, fails)
        assert fails(minimal)
        assert len(minimal) == 7

    def test_coordinates_simplified_when_possible(self):
        points = [(13.37, 42.01), (99.99, 0.5)]

        def fails(candidate):
            return len(candidate) >= 1  # any nonempty subset fails

        minimal = shrink_points(points, fails)
        assert len(minimal) == 1
        assert all(c == round(c) for p in minimal for c in p)


class TestShrinkK:
    def test_finds_smallest_failing_k(self):
        assert shrink_k(10, lambda k: k >= 4) == 4

    def test_keeps_original_when_nothing_smaller_fails(self):
        assert shrink_k(5, lambda k: k == 5) == 5
