"""Unit and property tests for aggregate (group) nearest neighbors."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import RTree
from repro.core.aggregate import aggregate_nearest
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import euclidean
from tests.conftest import build_point_tree

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


def brute_force(points, group, k, combine):
    scored = sorted(
        (combine([euclidean(q, p) for q in group]), i)
        for i, p in enumerate(points)
    )
    return scored[:k]


class TestValidation:
    def test_empty_group_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            aggregate_nearest(small_tree, [], k=1)

    def test_bad_aggregate_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            aggregate_nearest(small_tree, [(0.0, 0.0)], aggregate="median")

    def test_bad_k_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            aggregate_nearest(small_tree, [(0.0, 0.0)], k=0)

    def test_dimension_mismatch(self, small_tree):
        with pytest.raises(DimensionMismatchError):
            aggregate_nearest(small_tree, [(0.0, 0.0), (1.0,)])

    def test_empty_tree(self):
        neighbors, _ = aggregate_nearest(RTree(), [(0.0, 0.0)])
        assert neighbors == []


class TestSemantics:
    def test_single_point_group_equals_plain_nn(self, small_tree):
        from repro import nearest

        q = (444.0, 222.0)
        group_result, _ = aggregate_nearest(small_tree, [q], k=3)
        plain = nearest(small_tree, q, k=3)
        assert [n.distance for n in group_result] == pytest.approx(
            plain.distances()
        )

    def test_sum_picks_central_object(self):
        tree = RTree()
        tree.insert((5.0, 5.0), payload="center")
        tree.insert((0.0, 0.0), payload="corner")
        group = [(0.0, 10.0), (10.0, 0.0), (10.0, 10.0)]
        got, _ = aggregate_nearest(tree, group, k=1, aggregate="sum")
        assert got[0].payload == "center"

    def test_max_minimizes_worst_member(self):
        tree = RTree()
        # "close" is very close to one member but far from the other;
        # "balanced" is moderately far from both.
        tree.insert((0.0, 1.0), payload="close")
        tree.insert((0.0, 50.0), payload="balanced")
        group = [(0.0, 0.0), (0.0, 100.0)]
        by_max, _ = aggregate_nearest(tree, group, k=1, aggregate="max")
        by_sum, _ = aggregate_nearest(tree, group, k=1, aggregate="sum")
        assert by_max[0].payload == "balanced"
        assert by_sum[0].payload == "close"

    def test_matches_brute_force(self, medium_points):
        tree = build_point_tree(medium_points)
        group = [(100.0, 100.0), (900.0, 100.0), (500.0, 900.0)]
        for aggregate, combine in (("sum", sum), ("max", max)):
            got, _ = aggregate_nearest(tree, group, k=5, aggregate=aggregate)
            expected = brute_force(medium_points, group, 5, combine)
            assert [n.distance for n in got] == pytest.approx(
                [d for d, _ in expected]
            )

    def test_prunes(self, medium_points):
        tree = build_point_tree(medium_points)
        group = [(480.0, 500.0), (520.0, 500.0)]
        _, stats = aggregate_nearest(tree, group, k=1)
        assert stats.nodes_accessed < tree.node_count / 3


@settings(max_examples=40, deadline=None)
@given(
    st.lists(point2d, min_size=1, max_size=80),
    st.lists(point2d, min_size=1, max_size=4),
    st.integers(1, 5),
    st.sampled_from(["sum", "max"]),
)
def test_property_matches_brute_force(points, group, k, aggregate):
    tree = RTree(max_entries=4)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    combine = sum if aggregate == "sum" else max
    got, _ = aggregate_nearest(tree, group, k=k, aggregate=aggregate)
    expected = brute_force(points, group, k, combine)
    assert len(got) == len(expected)
    for neighbor, (distance, _) in zip(got, expected):
        assert abs(neighbor.distance - distance) <= 1e-6 * (1.0 + distance)
