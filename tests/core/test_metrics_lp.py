"""Tests for the general L_p metrics and the L_p k-NN search."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import RTree, Rect
from repro.core.metrics import mindist, minmaxdist
from repro.core.metrics_lp import (
    lp_distance,
    mindist_lp,
    minmaxdist_lp,
    nearest_dfs_lp,
)
from repro.errors import DimensionMismatchError, InvalidParameterError

INF = float("inf")

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)
p_values = st.sampled_from([1.0, 1.5, 2.0, 3.0, INF])


class TestLpDistance:
    def test_p1_is_manhattan(self):
        assert lp_distance((0, 0), (3, -4), p=1) == 7.0

    def test_p2_is_euclidean(self):
        assert lp_distance((0, 0), (3, 4), p=2) == 5.0

    def test_pinf_is_chebyshev(self):
        assert lp_distance((0, 0), (3, -4), p=INF) == 4.0

    def test_rejects_p_below_one(self):
        with pytest.raises(InvalidParameterError):
            lp_distance((0, 0), (1, 1), p=0.5)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            lp_distance((0.0,), (1.0, 2.0))

    def test_norms_are_monotone_in_p(self):
        a, b = (1.0, -2.0, 3.0), (4.0, 0.0, -1.0)
        d1 = lp_distance(a, b, 1)
        d2 = lp_distance(a, b, 2)
        d3 = lp_distance(a, b, 3)
        dinf = lp_distance(a, b, INF)
        assert d1 >= d2 >= d3 >= dinf


class TestLpRectMetrics:
    RECT = Rect((2.0, 2.0), (4.0, 6.0))

    def test_p2_matches_euclidean_module(self):
        for q in [(0.0, 0.0), (3.0, 4.0), (5.0, 7.0), (-1.0, 3.0)]:
            assert mindist_lp(q, self.RECT, 2) == pytest.approx(
                mindist(q, self.RECT)
            )
            assert minmaxdist_lp(q, self.RECT, 2) == pytest.approx(
                minmaxdist(q, self.RECT)
            )

    def test_inside_point_has_zero_mindist_any_p(self):
        for p in (1, 2, 3, INF):
            assert mindist_lp((3.0, 4.0), self.RECT, p) == 0.0

    def test_manhattan_mindist(self):
        # Gaps: x gap 2 (to lo.x=2 from 0), y gap 0 (inside slab).
        assert mindist_lp((0.0, 4.0), self.RECT, 1) == 2.0
        # Corner case: both gaps add.
        assert mindist_lp((0.0, 0.0), self.RECT, 1) == 4.0

    def test_chebyshev_mindist(self):
        assert mindist_lp((0.0, 0.0), self.RECT, INF) == 2.0

    @given(point2d, p_values)
    def test_mindist_le_minmaxdist(self, q, p):
        assert mindist_lp(q, self.RECT, p) <= minmaxdist_lp(q, self.RECT, p) + 1e-9

    @given(st.data())
    def test_minmaxdist_upper_bounds_nearest_point_of_true_mbr(self, data):
        pts = data.draw(st.lists(point2d, min_size=1, max_size=10))
        q = data.draw(point2d)
        p = data.draw(p_values)
        mbr = Rect.from_points(pts)
        nearest_true = min(lp_distance(q, x, p) for x in pts)
        assert nearest_true <= minmaxdist_lp(q, mbr, p) * (1 + 1e-9) + 1e-6


class TestLpSearch:
    def _tree(self, points):
        tree = RTree(max_entries=4)
        for i, pt in enumerate(points):
            tree.insert(pt, payload=i)
        return tree

    def test_empty_tree(self):
        neighbors, _ = nearest_dfs_lp(RTree(), (0.0, 0.0))
        assert neighbors == []

    def test_validation(self):
        tree = self._tree([(0.0, 0.0)])
        with pytest.raises(InvalidParameterError):
            nearest_dfs_lp(tree, (0.0, 0.0), k=0)
        with pytest.raises(InvalidParameterError):
            nearest_dfs_lp(tree, (0.0, 0.0), p=0.2)
        with pytest.raises(DimensionMismatchError):
            nearest_dfs_lp(tree, (0.0,))

    def test_different_norms_pick_different_neighbors(self):
        # (6, 0): L1 dist 6, Linf dist 6.  (4, 4): L1 dist 8, Linf dist 4.
        tree = self._tree([(6.0, 0.0), (4.0, 4.0)])
        by_l1, _ = nearest_dfs_lp(tree, (0.0, 0.0), p=1)
        by_linf, _ = nearest_dfs_lp(tree, (0.0, 0.0), p=INF)
        assert by_l1[0].payload == 0
        assert by_linf[0].payload == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(point2d, min_size=1, max_size=100),
        point2d,
        st.integers(1, 6),
        p_values,
    )
    def test_property_matches_brute_force(self, points, query, k, p):
        tree = self._tree(points)
        got, _ = nearest_dfs_lp(tree, query, k=k, p=p)
        expected = sorted(lp_distance(query, x, p) for x in points)
        expected = expected[: min(k, len(points))]
        assert len(got) == len(expected)
        for neighbor, want in zip(got, expected):
            assert abs(neighbor.distance - want) <= 1e-6 * (1 + want)

    def test_pruning_happens(self):
        from repro.datasets import uniform_points

        points = uniform_points(1500, seed=131)
        tree = self._tree(points)
        for p in (1, 2, INF):
            _, stats = nearest_dfs_lp(tree, (500.0, 500.0), k=1, p=p)
            assert stats.nodes_accessed < tree.node_count / 3
