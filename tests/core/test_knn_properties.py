"""Property-based correctness: every search config vs the linear-scan oracle.

This is the single most important test in the repository: for random data,
random queries, random k, every algorithm/ordering/pruning combination must
return exactly the oracle's distance sequence.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import PruningConfig, RTree, bulk_load, linear_scan
from repro.core.knn_best_first import nearest_best_first, nearest_incremental
from repro.core.knn_dfs import nearest_dfs
from tests.conftest import assert_same_distances

coord = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


@st.composite
def tree_and_query(draw):
    points = draw(st.lists(point2d, min_size=1, max_size=120))
    max_entries = draw(st.integers(2, 12))
    use_bulk = draw(st.booleans())
    if use_bulk:
        tree = bulk_load(
            [(p, i) for i, p in enumerate(points)], max_entries=max_entries
        )
    else:
        tree = RTree(max_entries=max_entries)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
    query = draw(point2d)
    k = draw(st.integers(1, min(len(points) + 2, 15)))
    return tree, query, k


@settings(max_examples=60, deadline=None)
@given(tree_and_query())
def test_dfs_mindist_matches_oracle(case):
    tree, query, k = case
    got, _ = nearest_dfs(tree, query, k=k, ordering="mindist")
    assert_same_distances(got, linear_scan(tree, query, k=k), tolerance=1e-6)


@settings(max_examples=60, deadline=None)
@given(tree_and_query())
def test_dfs_minmaxdist_matches_oracle(case):
    tree, query, k = case
    got, _ = nearest_dfs(tree, query, k=k, ordering="minmaxdist")
    assert_same_distances(got, linear_scan(tree, query, k=k), tolerance=1e-6)


@settings(max_examples=60, deadline=None)
@given(tree_and_query())
def test_best_first_matches_oracle(case):
    tree, query, k = case
    got, _ = nearest_best_first(tree, query, k=k)
    assert_same_distances(got, linear_scan(tree, query, k=k), tolerance=1e-6)


@settings(max_examples=40, deadline=None)
@given(tree_and_query())
def test_incremental_stream_is_sorted_and_complete(case):
    tree, query, _ = case
    stream = list(nearest_incremental(tree, query))
    assert len(stream) == len(tree)
    distances = [n.distance for n in stream]
    assert distances == sorted(distances)


@settings(max_examples=40, deadline=None)
@given(
    tree_and_query(),
    st.sampled_from(
        [
            PruningConfig.all(),
            PruningConfig.none(),
            PruningConfig.only_p3(),
            PruningConfig(True, False, True),
            PruningConfig(False, True, True),
        ]
    ),
)
def test_all_pruning_configs_match_oracle(case, config):
    tree, query, k = case
    got, _ = nearest_dfs(tree, query, k=k, pruning=config)
    assert_same_distances(got, linear_scan(tree, query, k=k), tolerance=1e-6)


@settings(max_examples=40, deadline=None)
@given(tree_and_query())
def test_result_payloads_are_real_items(case):
    tree, query, k = case
    got, _ = nearest_dfs(tree, query, k=k)
    valid_payloads = {payload for _, payload in tree.items()}
    assert all(n.payload in valid_payloads for n in got)


@settings(max_examples=40, deadline=None)
@given(tree_and_query())
def test_distances_are_finite_and_sorted(case):
    tree, query, k = case
    got, _ = nearest_dfs(tree, query, k=k)
    distances = [n.distance for n in got]
    assert all(math.isfinite(d) and d >= 0.0 for d in distances)
    assert distances == sorted(distances)
