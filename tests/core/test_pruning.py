"""Unit tests for pruning configuration and statistics."""

from repro.core.pruning import PruningConfig, PruningStats


class TestPruningConfig:
    def test_all_enables_everything(self):
        config = PruningConfig.all()
        assert config.use_p1 and config.use_p2 and config.use_p3

    def test_none_disables_everything(self):
        config = PruningConfig.none()
        assert not (config.use_p1 or config.use_p2 or config.use_p3)

    def test_only_p3(self):
        config = PruningConfig.only_p3()
        assert not config.use_p1 and not config.use_p2 and config.use_p3

    def test_effective_for_k1_is_unchanged(self):
        config = PruningConfig.all()
        assert config.effective_for_k(1) is config

    def test_effective_for_k2_drops_minmaxdist_prunes(self):
        effective = PruningConfig.all().effective_for_k(2)
        assert not effective.use_p1
        assert not effective.use_p2
        assert effective.use_p3

    def test_effective_for_k2_preserves_p3_setting(self):
        effective = PruningConfig(True, True, False).effective_for_k(5)
        assert not effective.use_p3

    def test_effective_noop_when_nothing_to_drop(self):
        config = PruningConfig.only_p3()
        assert config.effective_for_k(7) is config

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            PruningConfig.all().use_p1 = False


class TestSearchStatsTotals:
    def test_total_pruned_property(self):
        from repro.core.stats import SearchStats

        stats = SearchStats()
        stats.pruning.p1_pruned = 2
        stats.pruning.p3_pruned = 5
        assert stats.total_pruned == 7


class TestPruningStats:
    def test_total_counts_discards_only(self):
        stats = PruningStats(p1_pruned=3, p2_bound_updates=5, p3_pruned=7)
        assert stats.total == 10

    def test_merge(self):
        a = PruningStats(1, 2, 3)
        b = PruningStats(10, 20, 30)
        a.merge(b)
        assert (a.p1_pruned, a.p2_bound_updates, a.p3_pruned) == (11, 22, 33)
