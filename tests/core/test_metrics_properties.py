"""Property-based tests for the paper's metric theorems (hypothesis).

These encode Theorems 1 and 2 of the paper directly:

- MINDIST lower-bounds the distance to *every* point of the rectangle.
- MINMAXDIST upper-bounds the distance to the nearest of any object set
  that makes the rectangle a true *minimum* bounding rectangle (every face
  touched).
- MINDIST <= MINMAXDIST always.
"""

import math

from hypothesis import given, strategies as st

from repro.core.metrics import mindist_squared, minmaxdist_squared
from repro.geometry.point import euclidean_squared
from repro.geometry.rect import Rect

coord = st.floats(
    min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False
)


@st.composite
def rect_and_query(draw, max_dim=4):
    dim = draw(st.integers(1, max_dim))
    lo = [draw(coord) for _ in range(dim)]
    hi = [c + draw(st.floats(min_value=0.0, max_value=1e4)) for c in lo]
    query = tuple(draw(coord) for _ in range(dim))
    return Rect(lo, hi), query


@st.composite
def mbr_points_query(draw, max_dim=3):
    """A point set, its true MBR, and a query point.

    By construction the Rect is a *minimum* bounding rectangle of the point
    set, which is exactly the precondition of the MINMAXDIST theorem.
    """
    dim = draw(st.integers(1, max_dim))
    pts = draw(
        st.lists(
            st.tuples(*[coord] * dim).map(tuple), min_size=1, max_size=12
        )
    )
    query = tuple(draw(coord) for _ in range(dim))
    return Rect.from_points(pts), pts, query


@given(rect_and_query())
def test_mindist_le_minmaxdist(case):
    rect, query = case
    assert mindist_squared(query, rect) <= minmaxdist_squared(query, rect) * (
        1 + 1e-9
    ) + 1e-9


@given(rect_and_query())
def test_mindist_zero_iff_inside(case):
    # "iff" up to float underflow: squaring a subnormal gap can round the
    # outside-distance to exactly 0, so only the two sound implications are
    # asserted.
    rect, query = case
    md = mindist_squared(query, rect)
    if rect.contains_point(query):
        assert md == 0.0
    if md > 0.0:
        assert not rect.contains_point(query)


@given(st.data())
def test_mindist_lower_bounds_every_interior_point(data):
    rect, query = data.draw(rect_and_query(max_dim=3))
    # Sample interior points via per-axis interpolation parameters.
    t = [
        data.draw(st.floats(min_value=0.0, max_value=1.0))
        for _ in range(rect.dimension)
    ]
    interior = tuple(
        lo + (hi - lo) * ti for lo, hi, ti in zip(rect.lo, rect.hi, t)
    )
    assert mindist_squared(query, rect) <= euclidean_squared(
        query, interior
    ) * (1 + 1e-9) + 1e-9


@given(mbr_points_query())
def test_minmaxdist_upper_bounds_nearest_object(case):
    rect, pts, query = case
    nearest_sq = min(euclidean_squared(query, p) for p in pts)
    assert nearest_sq <= minmaxdist_squared(query, rect) * (1 + 1e-9) + 1e-6


@given(mbr_points_query())
def test_paper_sandwich_theorem(case):
    """MINDIST <= dist(nearest object) <= MINMAXDIST for a true MBR."""
    rect, pts, query = case
    nearest_sq = min(euclidean_squared(query, p) for p in pts)
    slack = 1e-6 + 1e-9 * abs(nearest_sq)
    assert mindist_squared(query, rect) <= nearest_sq + slack
    assert nearest_sq <= minmaxdist_squared(query, rect) + slack


@given(rect_and_query())
def test_metrics_nonnegative_and_finite(case):
    rect, query = case
    md = mindist_squared(query, rect)
    mmd = minmaxdist_squared(query, rect)
    assert md >= 0.0 and math.isfinite(md)
    assert mmd >= 0.0 and math.isfinite(mmd)


@given(rect_and_query())
def test_degenerate_rect_metrics_coincide(case):
    rect, query = case
    point_rect = Rect.from_point(rect.lo)
    md = mindist_squared(query, point_rect)
    mmd = minmaxdist_squared(query, point_rect)
    assert math.isclose(md, mmd, rel_tol=1e-9, abs_tol=1e-9)


@given(st.data())
def test_translation_invariance(data):
    rect, query = data.draw(rect_and_query(max_dim=3))
    offset = [
        data.draw(st.floats(min_value=-1e4, max_value=1e4))
        for _ in range(rect.dimension)
    ]
    moved_rect = Rect(
        [lo + o for lo, o in zip(rect.lo, offset)],
        [hi + o for hi, o in zip(rect.hi, offset)],
    )
    moved_query = tuple(q + o for q, o in zip(query, offset))
    original = mindist_squared(query, rect)
    moved = mindist_squared(moved_query, moved_rect)
    assert math.isclose(original, moved, rel_tol=1e-6, abs_tol=1e-3)
