"""Unit tests for the batched query API."""

import pytest

from repro import bulk_load, linear_scan, nearest_batch
from repro.datasets import uniform_points
from repro.datasets.queries import query_points_near_data
from repro.errors import InvalidParameterError
from tests.conftest import assert_same_distances


@pytest.fixture(scope="module")
def tree():
    points = uniform_points(2000, seed=151)
    return bulk_load([(p, i) for i, p in enumerate(points)])


class TestNearestBatch:
    def test_empty_batch_rejected(self, tree):
        with pytest.raises(InvalidParameterError):
            nearest_batch(tree, [])

    def test_negative_buffer_rejected(self, tree):
        with pytest.raises(InvalidParameterError):
            nearest_batch(tree, [(0.0, 0.0)], buffer_pages=-1)

    def test_one_result_per_point_all_exact(self, tree):
        queries = uniform_points(20, seed=152)
        results, combined, _ = nearest_batch(tree, queries, k=3)
        assert len(results) == 20
        total_pages = 0
        for q, result in zip(queries, results):
            assert_same_distances(result.neighbors, linear_scan(tree, q, k=3))
            total_pages += result.stats.nodes_accessed
        assert combined.nodes_accessed == total_pages

    def test_buffering_cuts_disk_reads(self, tree):
        anchor = uniform_points(1, seed=153)[0]
        queries = query_points_near_data(40, [anchor], seed=154, noise=15.0)
        _, combined, buffered_reads = nearest_batch(
            tree, queries, k=2, buffer_pages=64
        )
        _, _, unbuffered_reads = nearest_batch(
            tree, queries, k=2, buffer_pages=0
        )
        logical_per_query = combined.nodes_accessed / len(queries)
        assert unbuffered_reads == pytest.approx(logical_per_query)
        assert buffered_reads < unbuffered_reads / 2

    def test_algorithm_and_epsilon_flow_through(self, tree):
        queries = uniform_points(5, seed=155)
        exact, _, _ = nearest_batch(tree, queries, k=4, algorithm="best-first")
        approx, _, _ = nearest_batch(
            tree, queries, k=4, algorithm="best-first", epsilon=1.0
        )
        for e, a in zip(exact, approx):
            for want, got in zip(e.neighbors, a.neighbors):
                assert got.distance <= want.distance * 2.0 + 1e-9
