"""Per-query budgets: deadlines, page caps, truncation soundness.

The acceptance properties pinned here:

- a ``Budget`` must carry at least one limit and validates its fields;
- the ``BudgetClock`` charges deterministically (deadline checked
  *before* a page is spent; the exhaustion reason is sticky);
- every algorithm in the audit grid (the six ``ALGORITHM_COMBOS``), on
  both the in-memory and disk backends, honors a page budget and
  returns a *sound prefix*: ``check_truncated_result`` finds nothing;
- a generous budget changes nothing (bit-identical to the unbudgeted
  run);
- packed kernels truncate at the *same point* as the object kernels
  under the same ``max_pages`` — identical neighbors, stats, frontier;
- ``on_exhausted="raise"`` raises ``DeadlineExceeded`` with the frontier;
- ``SearchStats.merge`` folds truncation flags conservatively.
"""

import math

import pytest

from repro.audit.oracle import (
    ALGORITHM_COMBOS,
    check_truncated_result,
    exact_neighbors,
)
from repro.core.budget import Budget, BudgetClock
from repro.core.config import QueryConfig
from repro.core.knn_best_first import nearest_best_first, nearest_incremental
from repro.core.knn_dfs import nearest_dfs
from repro.core.pruning import PruningConfig
from repro.core.query import nearest
from repro.core.stats import SearchStats
from repro.datasets import uniform_points
from repro.errors import DeadlineExceeded, InvalidParameterError
from repro.geometry.rect import Rect
from repro.packed.kernels import packed_nearest_best_first, packed_nearest_dfs
from repro.rtree.disk import build_disk_index

from tests.conftest import build_point_tree

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def workload():
    points = uniform_points(1200, seed=5)
    tree = build_point_tree(points, max_entries=8)
    items = [(Rect(p, p), i) for i, p in enumerate(points)]
    return points, tree, items


class TestBudgetValidation:
    def test_needs_at_least_one_limit(self):
        with pytest.raises(InvalidParameterError):
            Budget()

    @pytest.mark.parametrize("bad", [0, -5.0])
    def test_deadline_must_be_positive(self, bad):
        with pytest.raises(InvalidParameterError):
            Budget(deadline_ms=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_max_pages_must_be_positive(self, bad):
        with pytest.raises(InvalidParameterError):
            Budget(max_pages=bad)

    def test_bad_exhaustion_mode(self):
        with pytest.raises(InvalidParameterError):
            Budget(max_pages=1, on_exhausted="explode")

    def test_budget_is_hashable_for_cache_keys(self):
        a = Budget(deadline_ms=5.0, max_pages=10)
        b = Budget(deadline_ms=5.0, max_pages=10)
        assert hash(a) == hash(b) and a == b

    def test_describe(self):
        assert "5" in Budget(deadline_ms=5.0).describe()
        assert "pg" in Budget(max_pages=3).describe()


class TestBudgetClock:
    def test_pages_count_down_then_exhaust(self):
        clock = Budget(max_pages=2).start()
        assert clock.charge() == ""
        assert clock.charge() == ""
        assert clock.charge() == "pages"

    def test_reason_is_sticky(self):
        clock = Budget(max_pages=1).start()
        clock.charge()
        assert clock.charge() == "pages"
        assert clock.charge() == "pages"

    def test_deadline_uses_injected_clock(self):
        t = [0.0]
        clock = BudgetClock(
            Budget(deadline_ms=10.0), clock=lambda: t[0]
        )
        assert clock.charge() == ""
        t[0] = 0.011
        assert clock.charge() == "deadline"

    def test_deadline_checked_before_spending_a_page(self):
        t = [0.0]
        clock = BudgetClock(
            Budget(deadline_ms=10.0, max_pages=5), clock=lambda: t[0]
        )
        t[0] = 1.0
        assert clock.charge() == "deadline"
        assert clock.pages_left == 5  # the expired charge spent nothing


def _combo_runners_with_budget():
    """The six audit combos, re-expressed to thread a budget through."""

    def incremental(tree, q, k, budget):
        out = []
        for n in nearest_incremental(tree, q, budget=budget):
            out.append(n)
            if len(out) >= k:
                break
        return out

    return [
        ("dfs-mindist", lambda t, q, k, b: nearest_dfs(
            t, q, k=k, ordering="mindist", budget=b)[0]),
        ("dfs-minmaxdist", lambda t, q, k, b: nearest_dfs(
            t, q, k=k, ordering="minmaxdist", budget=b)[0]),
        ("dfs-noprune", lambda t, q, k, b: nearest_dfs(
            t, q, k=k, pruning=PruningConfig.none(), budget=b)[0]),
        ("dfs-p3only", lambda t, q, k, b: nearest_dfs(
            t, q, k=k, pruning=PruningConfig.only_p3(), budget=b)[0]),
        ("best-first", lambda t, q, k, b: nearest_best_first(
            t, q, k=k, budget=b)[0]),
        ("incremental", incremental),
    ]


class TestBudgetAcrossAuditGrid:
    """Satellite requirement: deadline/budget checks in all six
    algorithm combos, on both tree backends."""

    def test_grid_covers_all_audit_combos(self):
        ours = {name for name, _ in _combo_runners_with_budget()}
        theirs = {name for name, _, _ in ALGORITHM_COMBOS}
        assert ours == theirs

    @pytest.mark.parametrize(
        "combo", _combo_runners_with_budget(), ids=lambda c: c[0]
    )
    @pytest.mark.parametrize("backend", ["mem", "disk"])
    def test_page_budget_yields_sound_prefix(
        self, workload, tmp_path, combo, backend
    ):
        points, tree, items = workload
        name, runner = combo
        if backend == "disk":
            tree = build_disk_index(
                items, tmp_path / "t.rtree", page_size=1024
            )
        try:
            for q in [(0.3, 0.7), (0.9, 0.1)]:
                exact = exact_neighbors(items, q, 10)
                for pages in (1, 4, 16):
                    budget = Budget(max_pages=pages)
                    got = runner(tree, q, 10, budget)
                    # The prefix must be certifiably sound.  The frontier
                    # lives on the stats object, which the combo lambdas
                    # drop — go through nearest() for the two public
                    # algorithms; for the others assert the subset
                    # property (frontier=0 disables the band check).
                    problems = check_truncated_result(
                        got, q, 10, exact,
                        combo=f"{name}@{backend}", frontier=0.0,
                    )
                    assert not problems, problems[0].describe()
        finally:
            if backend == "disk":
                tree.close()

    @pytest.mark.parametrize("algorithm", ["dfs", "best-first"])
    @pytest.mark.parametrize("backend", ["mem", "disk"])
    def test_frontier_certifies_public_algorithms(
        self, workload, tmp_path, algorithm, backend
    ):
        points, tree, items = workload
        if backend == "disk":
            tree = build_disk_index(
                items, tmp_path / "t.rtree", page_size=1024
            )
        try:
            for q in [(0.3, 0.7), (0.5, 0.5)]:
                exact = exact_neighbors(items, q, 10)
                for pages in (2, 8, 32):
                    r = nearest(
                        tree, q, k=10, algorithm=algorithm,
                        budget=Budget(max_pages=pages),
                    )
                    problems = check_truncated_result(
                        r.neighbors, q, 10, exact,
                        combo=f"{algorithm}@{backend}",
                        frontier=r.frontier_distance,
                    )
                    assert not problems, problems[0].describe()
        finally:
            if backend == "disk":
                tree.close()

    def test_generous_budget_is_a_noop(self, workload):
        points, tree, items = workload
        q = (0.4, 0.6)
        free = nearest(tree, q, k=5)
        capped = nearest(
            tree, q, k=5, budget=Budget(max_pages=10_000)
        )
        assert not capped.truncated
        assert capped.distances() == free.distances()
        assert capped.stats.nodes_accessed == free.stats.nodes_accessed

    def test_deadline_truncates_via_injected_pressure(self, workload):
        """An already-expired deadline yields an empty, flagged result."""
        points, tree, items = workload
        r = nearest(
            tree, (0.2, 0.2), k=5,
            budget=Budget(deadline_ms=1e-6),
        )
        assert r.truncated
        assert r.truncation_reason == "deadline"
        assert r.neighbors == []
        assert r.frontier_distance < math.inf


class TestPackedObjectTruncationParity:
    """The packed kernels must truncate at the *same charge* as the
    object kernels — identical neighbors, stats, and frontier."""

    @pytest.mark.parametrize("algorithm", ["dfs", "best-first"])
    def test_bit_identical_truncation(self, workload, algorithm):
        points, tree, items = workload
        ptree = tree.packed()
        for q in [(0.3, 0.7), (0.9, 0.1)]:
            for pages in (1, 3, 7, 15, 200):
                budget = Budget(max_pages=pages)
                if algorithm == "dfs":
                    obj, ostats = nearest_dfs(tree, q, k=10, budget=budget)
                    pk, pstats = packed_nearest_dfs(
                        ptree, q, k=10, budget=budget
                    )
                else:
                    obj, ostats = nearest_best_first(
                        tree, q, k=10, budget=budget
                    )
                    pk, pstats = packed_nearest_best_first(
                        ptree, q, k=10, budget=budget
                    )
                assert [n.distance for n in pk] == [n.distance for n in obj]
                assert [n.payload for n in pk] == [n.payload for n in obj]
                assert pstats.truncated == ostats.truncated
                assert pstats.truncation_reason == ostats.truncation_reason
                assert pstats.frontier_sq == ostats.frontier_sq
                assert pstats.nodes_accessed == ostats.nodes_accessed


class TestRaiseMode:
    def test_raise_mode_raises_with_frontier(self, workload):
        points, tree, items = workload
        with pytest.raises(DeadlineExceeded) as err:
            nearest(
                tree, (0.5, 0.5), k=5,
                budget=Budget(max_pages=1, on_exhausted="raise"),
            )
        assert err.value.reason == "pages"
        assert err.value.frontier_sq < math.inf

    def test_config_carries_budget(self, workload):
        points, tree, items = workload
        cfg = QueryConfig(k=3, budget=Budget(max_pages=2))
        r = nearest(tree, (0.1, 0.1), config=cfg)
        assert r.truncated
        # The budget participates in result identity.
        assert cfg.cache_key() != QueryConfig(k=3).cache_key()


class TestStatsMerge:
    def test_merge_folds_truncation(self):
        a = SearchStats()
        b = SearchStats()
        b.truncated = True
        b.truncation_reason = "pages"
        b.frontier_sq = 0.25
        a.merge(b)
        assert a.truncated
        assert a.truncation_reason == "pages"
        assert a.frontier_sq == 0.25

    def test_merge_keeps_min_frontier(self):
        a = SearchStats()
        a.truncated = True
        a.truncation_reason = "deadline"
        a.frontier_sq = 0.1
        b = SearchStats()
        b.truncated = True
        b.truncation_reason = "pages"
        b.frontier_sq = 0.5
        a.merge(b)
        assert a.frontier_sq == 0.1
        assert a.truncation_reason == "deadline"  # first reason wins

    def test_as_dict_exports_truncated_flag(self):
        s = SearchStats()
        s.truncated = True
        assert s.as_dict()["truncated"] == 1
