"""QueryConfig: eager validation, immutability, overrides, cache keys."""

import pytest

from repro import QueryConfig, PruningConfig
from repro.core.config import VALID_ALGORITHMS, VALID_ORDERINGS
from repro.errors import InvalidParameterError


class TestEagerValidation:
    def test_defaults_are_valid(self):
        config = QueryConfig()
        assert config.k == 1
        assert config.algorithm == "dfs"
        assert config.ordering == "mindist"

    @pytest.mark.parametrize("k", [0, -1, 1.5, "3"])
    def test_bad_k_rejected(self, k):
        with pytest.raises(InvalidParameterError):
            QueryConfig(k=k)

    def test_bad_algorithm_lists_choices(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            QueryConfig(algorithm="magic")
        for choice in VALID_ALGORITHMS:
            assert choice in str(excinfo.value)

    def test_bad_ordering_lists_choices(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            QueryConfig(ordering="random")
        for choice in VALID_ORDERINGS:
            assert choice in str(excinfo.value)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryConfig(epsilon=-0.1)

    def test_non_callable_object_distance_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryConfig(object_distance_sq="not-a-function")

    def test_bad_pruning_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryConfig(pruning="p1p2")

    def test_replace_revalidates(self):
        config = QueryConfig(k=3)
        with pytest.raises(InvalidParameterError):
            config.replace(ordering="nope")


class TestImmutability:
    def test_frozen(self):
        config = QueryConfig()
        with pytest.raises(Exception):
            config.k = 2

    def test_hashable_and_equal(self):
        assert QueryConfig(k=3) == QueryConfig(k=3)
        assert hash(QueryConfig(k=3)) == hash(QueryConfig(k=3))
        assert QueryConfig(k=3) != QueryConfig(k=4)


class TestOverrides:
    def test_with_overrides_none_means_keep(self):
        config = QueryConfig(k=5, ordering="minmaxdist")
        same = config.with_overrides(k=None, ordering=None)
        assert same is config

    def test_with_overrides_applies_values(self):
        config = QueryConfig(k=5)
        out = config.with_overrides(k=2, algorithm="best-first")
        assert out.k == 2
        assert out.algorithm == "best-first"
        assert config.k == 5  # original untouched


class TestCacheKey:
    def test_equal_configs_share_a_key(self):
        assert QueryConfig(k=3).cache_key() == QueryConfig(k=3).cache_key()

    def test_differing_fields_change_the_key(self):
        base = QueryConfig()
        for variant in (
            QueryConfig(k=2),
            QueryConfig(algorithm="best-first"),
            QueryConfig(ordering="minmaxdist"),
            QueryConfig(epsilon=0.5),
            QueryConfig(pruning=PruningConfig(use_p1=False)),
        ):
            assert variant.cache_key() != base.cache_key()

    def test_distinct_hooks_never_collide(self):
        f = lambda q, payload, rect: 0.0  # noqa: E731
        g = lambda q, payload, rect: 0.0  # noqa: E731
        assert (
            QueryConfig(object_distance_sq=f).cache_key()
            != QueryConfig(object_distance_sq=g).cache_key()
        )


class TestDescribe:
    def test_describe_compact(self):
        assert QueryConfig(k=4).describe() == "k=4 dfs mindist"

    def test_describe_shows_non_defaults(self):
        text = QueryConfig(
            k=2, algorithm="best-first", epsilon=0.5
        ).describe()
        assert "best-first" in text
        assert "epsilon=0.5" in text
        assert "mindist" not in text  # ordering is a DFS-only knob
