"""Tie-heavy and degenerate geometry, cross-checked against the audit oracle.

The clustered-point analysis of Maneewongvatana & Mount shows exact ties
and degenerate boxes are where nearest-neighbor pruning bounds earn (or
lose) their keep: equal distances at the k-boundary, point-rectangles
where every metric collapses to one value, and queries sitting on MBR
faces where per-axis MINDIST contributions vanish.
"""

import math

import pytest

from repro.audit.backends import build_backends, build_memory_tree
from repro.audit.oracle import diff_backends
from repro.audit.soundness import check_pruning_soundness
from repro.baselines.linear_scan import linear_scan
from repro.core.knn_best_first import nearest_incremental
from repro.core.metrics import (
    maxdist_squared,
    mindist_squared,
    minmaxdist_squared,
)
from repro.core.neighbors import NeighborBuffer
from repro.core.stats import SearchStats
from repro.geometry.rect import Rect

pytestmark = pytest.mark.audit


class TestNeighborBufferBoundaryTies:
    def test_exact_tie_at_k_boundary_is_rejected(self):
        # Full buffer, candidate at exactly the worst distance: the buffer
        # keeps its first-seen winner (offer is strict-improvement only).
        buffer = NeighborBuffer(2)
        assert buffer.offer(1.0, "a", Rect.from_point((1.0, 0.0)))
        assert buffer.offer(4.0, "b", Rect.from_point((2.0, 0.0)))
        assert not buffer.offer(4.0, "c", Rect.from_point((0.0, 2.0)))
        assert buffer.worst_distance_squared == 4.0
        assert [n.payload for n in buffer.to_sorted_list()] == ["a", "b"]

    def test_strictly_closer_candidate_displaces_the_tie(self):
        buffer = NeighborBuffer(2)
        buffer.offer(1.0, "a", Rect.from_point((1.0, 0.0)))
        buffer.offer(4.0, "b", Rect.from_point((2.0, 0.0)))
        assert buffer.offer(4.0 - 1e-9, "c", Rect.from_point((0.0, 2.0)))
        payloads = {n.payload for n in buffer.to_sorted_list()}
        assert payloads == {"a", "c"}

    def test_all_equal_distances_fill_in_arrival_order(self):
        buffer = NeighborBuffer(3)
        for name in ("a", "b", "c", "d", "e"):
            buffer.offer(9.0, name, Rect.from_point((3.0, 0.0)))
        result = [n.payload for n in buffer.to_sorted_list()]
        assert result == ["a", "b", "c"]
        assert buffer.worst_distance_squared == 9.0

    def test_tie_below_boundary_still_enters_while_not_full(self):
        buffer = NeighborBuffer(3)
        assert buffer.offer(9.0, "a", Rect.from_point((3.0, 0.0)))
        assert buffer.offer(9.0, "b", Rect.from_point((0.0, 3.0)))
        assert len(buffer) == 2
        assert buffer.worst_distance_squared == math.inf


class TestMinmaxdistDegenerate:
    def test_point_rectangle_collapses_all_metrics(self):
        # For a degenerate (point) MBR, MINDIST == MINMAXDIST == MAXDIST.
        rect = Rect.from_point((3.0, 4.0))
        for query in [(0.0, 0.0), (3.0, 4.0), (-1.5, 7.25)]:
            md = mindist_squared(query, rect)
            mmd = minmaxdist_squared(query, rect)
            xd = maxdist_squared(query, rect)
            assert md == mmd == xd

    def test_query_on_face_keeps_theorem_sandwich(self):
        # Query on the left face of [0,10]^2: MINDIST is 0; MINMAXDIST is
        # the distance to the farthest point of the *nearest* face (5^2
        # along the touched axis's face here).
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        query = (0.0, 5.0)
        assert mindist_squared(query, rect) == 0.0
        assert minmaxdist_squared(query, rect) == 25.0

    def test_query_at_corner_and_center(self):
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        # Corner: near bounds are 0 on both axes, far bounds 10.
        assert mindist_squared((0.0, 0.0), rect) == 0.0
        assert minmaxdist_squared((0.0, 0.0), rect) == 100.0
        # Center: every face is equally near; MINMAXDIST^2 = 5^2 + 5^2...
        # min over axes of (near_k + far_other) = 25 + 25.
        assert minmaxdist_squared((5.0, 5.0), rect) == 50.0

    def test_theorem_bounds_hold_on_minimal_mbrs(self, rng):
        # Theorems 1-2 on real MBRs: for a point set and its bounding
        # rect, MINDIST <= d(nearest point) <= MINMAXDIST.
        for _ in range(50):
            pts = [
                (rng.uniform(0, 100), rng.uniform(0, 100))
                for _ in range(rng.randint(2, 8))
            ]
            rect = Rect.from_points(pts)
            query = (rng.uniform(-50, 150), rng.uniform(-50, 150))
            nearest_sq = min(
                (q - x) ** 2 + (r - y) ** 2
                for (x, y) in pts
                for q, r in [query]
            )
            assert mindist_squared(query, rect) <= nearest_sq + 1e-9
            assert nearest_sq <= minmaxdist_squared(query, rect) + 1e-9


class TestIncrementalTies:
    def test_grid_ties_yield_nondecreasing_and_complete(self):
        # A 6x6 integer grid seen from its center: distances come in
        # large tie groups; browsing must stay sorted and lose nothing.
        points = [
            (float(x), float(y)) for x in range(6) for y in range(6)
        ]
        tree = build_memory_tree(points, max_entries=4)
        query = (2.5, 2.5)
        stats = SearchStats()
        seen = list(nearest_incremental(tree, query, stats=stats))
        assert len(seen) == len(points)
        distances = [n.distance for n in seen]
        assert distances == sorted(distances)
        exact = [n.distance for n in linear_scan(tree, query, k=len(points))]
        assert distances == pytest.approx(exact, abs=1e-12)
        # Payload multiset is exactly the full grid — nothing dropped or
        # duplicated across node/object heap ties.
        assert sorted(n.payload for n in seen) == list(range(len(points)))

    def test_duplicate_points_all_surface(self):
        points = [(1.0, 1.0)] * 5 + [(2.0, 2.0)] * 3
        tree = build_memory_tree(points, max_entries=4)
        seen = list(nearest_incremental(tree, (1.0, 1.0)))
        assert len(seen) == 8
        assert [n.distance for n in seen[:5]] == [0.0] * 5


class TestTieWorkloadsAgainstAuditOracle:
    """The satellite cross-check: tie-heavy geometry through the full differ."""

    def test_integer_grid_all_backends_agree(self, tmp_path):
        points = [
            (float(x) * 8.0, float(y) * 8.0)
            for x in range(7)
            for y in range(7)
        ]
        with build_backends(
            points, max_entries=4, tmp_dir=str(tmp_path)
        ) as backends:
            # Center (max ties), on-point, midpoint, and face queries.
            queries = [
                (24.0, 24.0), (8.0, 16.0), (12.0, 12.0), (8.0, 3.0),
            ]
            for query in queries:
                for k in (1, 2, 4, 9):
                    assert diff_backends(
                        backends, points, query, k, epsilon=0.5
                    ) == []

    def test_duplicates_and_collinear_all_backends_agree(self, tmp_path):
        points = (
            [(10.0, 10.0)] * 4
            + [(float(x), 50.0) for x in range(0, 80, 5)]
            + [(30.0, 30.0), (70.0, 70.0)]
        )
        with build_backends(
            points, max_entries=4, tmp_dir=str(tmp_path)
        ) as backends:
            for query in [(10.0, 10.0), (40.0, 50.0), (0.0, 0.0)]:
                for k in (1, 3, 6):
                    assert diff_backends(
                        backends, points, query, k
                    ) == []

    def test_tie_heavy_pruning_stays_sound(self):
        points = [
            (float(x) * 8.0, float(y) * 8.0)
            for x in range(8)
            for y in range(8)
        ]
        tree = build_memory_tree(points, max_entries=4)
        items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
        for query in [(28.0, 28.0), (8.0, 8.0), (-16.0, 20.0)]:
            for k, ordering in ((1, "mindist"), (1, "minmaxdist"), (5, "mindist")):
                assert check_pruning_soundness(
                    tree, items, query, k=k, ordering=ordering
                ) == []
