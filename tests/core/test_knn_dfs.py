"""Unit tests for the paper's branch-and-bound DFS search."""

import pytest

from repro import (
    CountingTracker,
    PruningConfig,
    RTree,
    Rect,
    Segment,
    linear_scan,
)
from repro.core.knn_dfs import nearest_dfs
from repro.errors import DimensionMismatchError, InvalidParameterError
from tests.conftest import assert_same_distances


class TestBasics:
    def test_empty_tree_returns_nothing(self):
        tree = RTree()
        neighbors, stats = nearest_dfs(tree, (0.0, 0.0), k=3)
        assert neighbors == []
        assert stats.nodes_accessed == 0

    def test_single_item(self):
        tree = RTree()
        tree.insert((5.0, 5.0), payload="only")
        neighbors, _ = nearest_dfs(tree, (0.0, 0.0))
        assert len(neighbors) == 1
        assert neighbors[0].payload == "only"
        assert neighbors[0].distance == pytest.approx(50.0 ** 0.5)

    def test_k_larger_than_tree_returns_all_sorted(self, small_tree):
        neighbors, _ = nearest_dfs(small_tree, (500.0, 500.0), k=1000)
        assert len(neighbors) == len(small_tree)
        distances = [n.distance for n in neighbors]
        assert distances == sorted(distances)

    def test_invalid_k(self, small_tree):
        with pytest.raises(InvalidParameterError):
            nearest_dfs(small_tree, (0.0, 0.0), k=0)

    def test_invalid_ordering(self, small_tree):
        with pytest.raises(InvalidParameterError):
            nearest_dfs(small_tree, (0.0, 0.0), ordering="random")

    def test_dimension_mismatch(self, small_tree):
        with pytest.raises(DimensionMismatchError):
            nearest_dfs(small_tree, (0.0, 0.0, 0.0))

    def test_query_from_data_point_finds_it(self, small_points, small_tree):
        target = small_points[17]
        neighbors, _ = nearest_dfs(small_tree, target, k=1)
        assert neighbors[0].distance == 0.0
        assert neighbors[0].payload == 17


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    @pytest.mark.parametrize("ordering", ["mindist", "minmaxdist"])
    def test_matches_oracle(self, medium_tree, k, ordering):
        for q in [(0.0, 0.0), (500.0, 500.0), (999.0, 1.0), (250.0, 750.0)]:
            got, _ = nearest_dfs(medium_tree, q, k=k, ordering=ordering)
            expected = linear_scan(medium_tree, q, k=k)
            assert_same_distances(got, expected)

    @pytest.mark.parametrize(
        "config",
        [
            PruningConfig.all(),
            PruningConfig.none(),
            PruningConfig.only_p3(),
            PruningConfig(True, False, True),
            PruningConfig(False, True, True),
            PruningConfig(True, True, False),
        ],
    )
    def test_every_pruning_config_is_exact(self, medium_tree, config):
        for k in (1, 4):
            for q in [(10.0, 10.0), (640.0, 320.0)]:
                got, _ = nearest_dfs(medium_tree, q, k=k, pruning=config)
                expected = linear_scan(medium_tree, q, k=k)
                assert_same_distances(got, expected)

    def test_query_outside_data_bounds(self, medium_tree):
        got, _ = nearest_dfs(medium_tree, (-5000.0, -5000.0), k=3)
        expected = linear_scan(medium_tree, (-5000.0, -5000.0), k=3)
        assert_same_distances(got, expected)

    def test_duplicate_points(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert((1.0, 1.0), payload=i)
        tree.insert((5.0, 5.0), payload="outlier")
        neighbors, _ = nearest_dfs(tree, (1.0, 1.0), k=5)
        assert all(n.distance == 0.0 for n in neighbors)
        assert len(neighbors) == 5

    def test_rect_objects_not_just_points(self):
        tree = RTree(max_entries=4)
        rects = [
            Rect((0, 0), (2, 2)),
            Rect((10, 10), (11, 15)),
            Rect((4, 4), (5, 5)),
        ]
        for i, r in enumerate(rects):
            tree.insert(r, payload=i)
        neighbors, _ = nearest_dfs(tree, (3.0, 3.0), k=3)
        # Distances are to the rect MBRs themselves.
        assert neighbors[0].payload == 0  # touches at (2, 2): dist sqrt(2)
        assert neighbors[1].payload == 2  # (4, 4): dist sqrt(2)... tie
        assert neighbors[2].payload == 1


class TestObjectDistanceHook:
    def test_segments_use_exact_distance(self):
        segments = [
            Segment((0.0, 0.0), (10.0, 0.0)),
            Segment((0.0, 5.0), (10.0, 5.0)),
        ]
        tree = RTree(max_entries=4)
        for s in segments:
            tree.insert(s.mbr(), payload=s)

        def hook(query, payload, rect):
            return payload.distance_squared_to(query)

        # Query closer to the second segment's line but inside the first's
        # MBR: MBR distance would mislead; exact distance must win.
        neighbors, _ = nearest_dfs(
            tree, (5.0, 4.0), k=1, object_distance_sq=hook
        )
        assert neighbors[0].payload is segments[1]
        assert neighbors[0].distance == pytest.approx(1.0)


class TestStats:
    def test_stats_count_nodes(self, medium_tree):
        _, stats = nearest_dfs(medium_tree, (500.0, 500.0), k=1)
        assert stats.nodes_accessed >= medium_tree.height
        assert stats.nodes_accessed == stats.leaf_accesses + stats.internal_accesses
        assert stats.objects_examined >= 1

    def test_tracker_agrees_with_stats(self, medium_tree):
        tracker = CountingTracker()
        _, stats = nearest_dfs(medium_tree, (500.0, 500.0), k=2, tracker=tracker)
        assert tracker.stats.total == stats.nodes_accessed
        assert tracker.stats.leaf == stats.leaf_accesses

    def test_pruning_disabled_visits_every_node(self, medium_tree):
        _, stats = nearest_dfs(
            medium_tree, (500.0, 500.0), k=1, pruning=PruningConfig.none()
        )
        assert stats.nodes_accessed == medium_tree.node_count
        assert stats.objects_examined == len(medium_tree)

    def test_pruning_enabled_visits_far_fewer(self, medium_tree):
        _, pruned = nearest_dfs(medium_tree, (500.0, 500.0), k=1)
        assert pruned.nodes_accessed < medium_tree.node_count / 4

    def test_p1_counts_only_for_k1(self, medium_tree):
        _, stats_k1 = nearest_dfs(medium_tree, (500.0, 500.0), k=1)
        _, stats_k5 = nearest_dfs(medium_tree, (500.0, 500.0), k=5)
        assert stats_k1.pruning.p1_pruned > 0
        assert stats_k5.pruning.p1_pruned == 0
