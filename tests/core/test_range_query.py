"""Unit and property tests for within-distance (range) queries."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import RTree, CountingTracker, within_distance, count_within_distance
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import euclidean
from tests.conftest import build_point_tree

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


class TestBasics:
    def test_empty_tree(self):
        assert within_distance(RTree(), (0.0, 0.0), 5.0) == []

    def test_negative_radius_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            within_distance(small_tree, (0.0, 0.0), -1.0)

    def test_dimension_mismatch(self, small_tree):
        with pytest.raises(DimensionMismatchError):
            within_distance(small_tree, (0.0, 0.0, 0.0), 5.0)

    def test_zero_radius_finds_exact_matches(self):
        tree = RTree()
        tree.insert((3.0, 3.0), payload="hit")
        tree.insert((3.1, 3.0), payload="miss")
        got = within_distance(tree, (3.0, 3.0), 0.0)
        assert [n.payload for n in got] == ["hit"]

    def test_boundary_is_inclusive(self):
        tree = RTree()
        tree.insert((3.0, 0.0), payload="on-circle")
        got = within_distance(tree, (0.0, 0.0), 3.0)
        assert [n.payload for n in got] == ["on-circle"]

    def test_results_sorted_by_distance(self, small_points):
        tree = build_point_tree(small_points)
        got = within_distance(tree, (500.0, 500.0), 300.0)
        distances = [n.distance for n in got]
        assert distances == sorted(distances)

    def test_radius_covering_everything(self, small_points):
        tree = build_point_tree(small_points)
        got = within_distance(tree, (500.0, 500.0), 1e6)
        assert len(got) == len(small_points)

    def test_count_matches_list(self, small_points):
        tree = build_point_tree(small_points)
        assert count_within_distance(
            tree, (500.0, 500.0), 250.0
        ) == len(within_distance(tree, (500.0, 500.0), 250.0))

    def test_pruning_skips_far_subtrees(self, medium_points):
        tree = build_point_tree(medium_points)
        stats = SearchStats()
        within_distance(tree, (10.0, 10.0), 30.0, stats=stats)
        assert stats.nodes_accessed < tree.node_count / 3

    def test_tracker_counts(self, medium_points):
        tree = build_point_tree(medium_points)
        tracker = CountingTracker()
        stats = SearchStats()
        within_distance(tree, (500.0, 500.0), 50.0, tracker=tracker, stats=stats)
        assert tracker.stats.total == stats.nodes_accessed


@settings(max_examples=50, deadline=None)
@given(
    st.lists(point2d, min_size=0, max_size=120),
    point2d,
    st.floats(min_value=0.0, max_value=150.0),
)
def test_property_matches_brute_force(points, query, radius):
    tree = RTree(max_entries=4)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    got = sorted(n.payload for n in within_distance(tree, query, radius))
    expected = sorted(
        i for i, p in enumerate(points) if euclidean(query, p) <= radius
    )
    # Tolerate boundary-of-circle float disagreements by re-checking with
    # a hair of slack in both directions.
    if got != expected:
        definitely_in = {
            i for i, p in enumerate(points)
            if euclidean(query, p) <= radius * (1 - 1e-9) - 1e-9
        }
        possibly_in = {
            i for i, p in enumerate(points)
            if euclidean(query, p) <= radius * (1 + 1e-9) + 1e-9
        }
        assert definitely_in <= set(got) <= possibly_in
