"""Unit and property tests for farthest-neighbor queries."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import RTree, CountingTracker
from repro.core.farthest import farthest_best_first
from repro.core.metrics import maxdist_squared
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import euclidean
from repro.geometry.rect import Rect
from tests.conftest import build_point_tree

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


class TestMaxdist:
    def test_point_inside_square(self):
        r = Rect((0.0, 0.0), (2.0, 2.0))
        # From (0.5, 0.5) the farthest corner is (2, 2).
        assert maxdist_squared((0.5, 0.5), r) == pytest.approx(1.5**2 + 1.5**2)

    def test_point_outside(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert maxdist_squared((-1.0, 0.0), r) == pytest.approx(4.0 + 1.0)

    def test_degenerate_rect(self):
        r = Rect.from_point((3.0, 4.0))
        assert maxdist_squared((0.0, 0.0), r) == 25.0

    def test_upper_bounds_mindist_and_minmaxdist(self):
        from repro.core.metrics import mindist_squared, minmaxdist_squared

        r = Rect((1.0, 2.0), (5.0, 9.0))
        for q in [(0.0, 0.0), (3.0, 4.0), (10.0, 10.0)]:
            assert maxdist_squared(q, r) >= minmaxdist_squared(q, r) - 1e-12
            assert maxdist_squared(q, r) >= mindist_squared(q, r) - 1e-12


class TestFarthest:
    def test_empty_tree(self):
        neighbors, stats = farthest_best_first(RTree(), (0.0, 0.0))
        assert neighbors == []
        assert stats.nodes_accessed == 0

    def test_invalid_k(self, small_tree):
        with pytest.raises(InvalidParameterError):
            farthest_best_first(small_tree, (0.0, 0.0), k=0)

    def test_dimension_mismatch(self, small_tree):
        with pytest.raises(DimensionMismatchError):
            farthest_best_first(small_tree, (0.0,))

    def test_simple_case(self):
        tree = RTree()
        for p, name in [((0.0, 0.0), "origin"), ((10.0, 0.0), "east"),
                        ((0.0, 20.0), "north")]:
            tree.insert(p, payload=name)
        neighbors, _ = farthest_best_first(tree, (0.0, 0.0), k=2)
        assert [n.payload for n in neighbors] == ["north", "east"]
        assert neighbors[0].distance == 20.0

    def test_matches_oracle(self, medium_points):
        tree = build_point_tree(medium_points)
        for q in [(0.0, 0.0), (500.0, 500.0), (999.0, 1.0)]:
            for k in (1, 5):
                got, _ = farthest_best_first(tree, q, k=k)
                expected = sorted(
                    (euclidean(q, p) for p in medium_points), reverse=True
                )[:k]
                assert [n.distance for n in got] == pytest.approx(expected)

    def test_results_sorted_descending(self, small_tree):
        got, _ = farthest_best_first(small_tree, (500.0, 500.0), k=10)
        distances = [n.distance for n in got]
        assert distances == sorted(distances, reverse=True)

    def test_prunes_near_subtrees(self, medium_points):
        tree = build_point_tree(medium_points)
        _, stats = farthest_best_first(tree, (500.0, 500.0), k=1)
        assert stats.nodes_accessed < tree.node_count / 3

    def test_tracker_counts(self, small_tree):
        tracker = CountingTracker()
        _, stats = farthest_best_first(
            small_tree, (500.0, 500.0), k=2, tracker=tracker
        )
        assert tracker.stats.total == stats.nodes_accessed

    def test_k_exceeding_size_returns_all(self, small_tree):
        got, _ = farthest_best_first(small_tree, (0.0, 0.0), k=10_000)
        assert len(got) == len(small_tree)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(point2d, min_size=1, max_size=100),
    point2d,
    st.integers(1, 8),
)
def test_property_matches_oracle(points, query, k):
    tree = RTree(max_entries=4)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    got, _ = farthest_best_first(tree, query, k=k)
    expected = sorted((euclidean(query, p) for p in points), reverse=True)
    expected = expected[: min(k, len(points))]
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert abs(g.distance - e) <= 1e-6
