"""Unit and property tests for spatial joins."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import LruBufferPool, RTree, bulk_load
from repro.core.joins import intersection_join, knn_join
from repro.datasets.synthetic import uniform_rects
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.rect import Rect

coord = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def small_rects(draw, max_size=40):
    count = draw(st.integers(0, max_size))
    rects = []
    for _ in range(count):
        lo = (draw(coord), draw(coord))
        extent = (
            draw(st.floats(min_value=0.0, max_value=20.0)),
            draw(st.floats(min_value=0.0, max_value=20.0)),
        )
        rects.append(Rect(lo, (lo[0] + extent[0], lo[1] + extent[1])))
    return rects


def tree_of(rects, max_entries=4):
    tree = RTree(max_entries=max_entries)
    for i, r in enumerate(rects):
        tree.insert(r, payload=i)
    return tree


def brute_force_join(left_rects, right_rects):
    return sorted(
        (i, j)
        for i, a in enumerate(left_rects)
        for j, b in enumerate(right_rects)
        if a.intersects(b)
    )


class TestIntersectionJoin:
    def test_empty_operand_yields_nothing(self):
        tree = tree_of(uniform_rects(5, seed=1))
        assert list(intersection_join(tree, RTree())) == []
        assert list(intersection_join(RTree(), tree)) == []

    def test_dimension_mismatch(self):
        a = RTree()
        a.insert((0.0, 0.0))
        b = RTree()
        b.insert((0.0, 0.0, 0.0))
        with pytest.raises(DimensionMismatchError):
            list(intersection_join(a, b))

    def test_matches_brute_force(self):
        left = uniform_rects(150, seed=2, max_side=30.0)
        right = uniform_rects(120, seed=3, max_side=30.0)
        got = sorted(
            (pa[1], pb[1])
            for pa, pb in intersection_join(tree_of(left), tree_of(right))
        )
        assert got == brute_force_join(left, right)

    def test_orientation_preserved(self):
        left = tree_of([Rect((0, 0), (10, 10))])
        # Right tree is deeper, forcing descent on the right side too.
        right = tree_of(uniform_rects(60, seed=4, bounds=(0.0, 10.0)), 4)
        for (ra, pa), (rb, pb) in intersection_join(left, right):
            assert pa == 0  # left payloads stay on the left
            assert ra == Rect((0, 0), (10, 10))

    def test_disjoint_trees_no_results_few_pages(self):
        left_rects = uniform_rects(100, seed=5, bounds=(0.0, 100.0))
        right_rects = uniform_rects(100, seed=6, bounds=(10_000.0, 10_100.0))
        pool = LruBufferPool(0)
        got = list(
            intersection_join(tree_of(left_rects), tree_of(right_rects), pool)
        )
        assert got == []
        # Disjoint roots: only the two roots are compared.
        assert pool.stats.accesses == 2

    def test_self_join_includes_self_pairs(self):
        rects = uniform_rects(30, seed=7)
        tree = tree_of(rects)
        pairs = {
            (pa[1], pb[1]) for pa, pb in intersection_join(tree, tree)
        }
        for i in range(30):
            assert (i, i) in pairs

    @settings(max_examples=30, deadline=None)
    @given(small_rects(), small_rects())
    def test_property_matches_brute_force(self, left, right):
        got = sorted(
            (pa[1], pb[1])
            for pa, pb in intersection_join(tree_of(left), tree_of(right))
        )
        assert got == brute_force_join(left, right)


class TestKnnJoin:
    def test_invalid_k(self):
        tree = tree_of(uniform_rects(5, seed=8))
        with pytest.raises(InvalidParameterError):
            knn_join(tree, tree, k=0)

    def test_empty_operands(self):
        tree = tree_of(uniform_rects(5, seed=9))
        results, stats = knn_join(RTree(), tree)
        assert results == []
        assert stats.nodes_accessed == 0

    def test_every_outer_object_gets_k_neighbors(self):
        outer = tree_of(uniform_rects(40, seed=10))
        inner = bulk_load(
            [(p, i) for i, p in enumerate(
                [(float(x), float(x)) for x in range(100)]
            )],
            max_entries=8,
        )
        results, stats = knn_join(outer, inner, k=3)
        assert len(results) == 40
        assert all(len(neighbors) == 3 for _, neighbors in results)
        assert stats.nodes_accessed >= 40  # at least one page per search

    def test_matches_per_object_searches(self):
        from repro.core.knn_dfs import nearest_dfs

        outer = tree_of(uniform_rects(25, seed=11))
        inner = tree_of(uniform_rects(80, seed=12))
        results, _ = knn_join(outer, inner, k=2)
        by_payload = dict(results)
        for rect, payload in outer.items():
            expected, _ = nearest_dfs(inner, rect.center, k=2)
            got = by_payload[payload]
            assert [n.distance for n in got] == pytest.approx(
                [n.distance for n in expected]
            )

    def test_buffered_join_reads_less(self):
        outer = tree_of(uniform_rects(60, seed=13))
        inner = tree_of(uniform_rects(400, seed=14), max_entries=8)
        unbuffered = LruBufferPool(0)
        knn_join(outer, inner, k=2, tracker=unbuffered)
        buffered = LruBufferPool(64)
        knn_join(outer, inner, k=2, tracker=buffered)
        assert buffered.stats.misses < unbuffered.stats.misses
