"""Unit tests for the MINDIST / MINMAXDIST metrics (paper Section 3)."""

import math

import pytest

from repro.core.metrics import (
    mindist,
    mindist_squared,
    minmaxdist,
    minmaxdist_squared,
)
from repro.errors import DimensionMismatchError
from repro.geometry.rect import Rect


@pytest.fixture
def box() -> Rect:
    return Rect((2.0, 2.0), (4.0, 6.0))


class TestMindist:
    def test_point_inside_is_zero(self, box):
        assert mindist_squared((3.0, 4.0), box) == 0.0

    def test_point_on_boundary_is_zero(self, box):
        assert mindist_squared((2.0, 3.0), box) == 0.0
        assert mindist_squared((4.0, 6.0), box) == 0.0

    def test_point_left_of_box(self, box):
        # Closest rect point is (2, 4).
        assert mindist((0.0, 4.0), box) == 2.0

    def test_point_diagonal_from_corner(self, box):
        # Closest rect point is the corner (2, 2).
        assert mindist((0.0, 0.0), box) == math.sqrt(8.0)

    def test_matches_clamp_distance(self, box):
        from repro.geometry.point import euclidean_squared

        for q in [(-1.0, 3.0), (5.0, 7.0), (3.0, 0.0), (3.0, 4.0)]:
            assert mindist_squared(q, box) == pytest.approx(
                euclidean_squared(q, box.clamp_point(q))
            )

    def test_degenerate_rect_equals_point_distance(self):
        r = Rect.from_point((3.0, 4.0))
        assert mindist((0.0, 0.0), r) == 5.0

    def test_dimension_mismatch(self, box):
        with pytest.raises(DimensionMismatchError):
            mindist_squared((1.0,), box)

    def test_one_dimensional(self):
        r = Rect((2.0,), (5.0,))
        assert mindist((0.0,), r) == 2.0
        assert mindist((7.0,), r) == 2.0
        assert mindist((3.0,), r) == 0.0


class TestMinmaxdist:
    def test_hand_computed_2d(self):
        # Unit square, query at origin-corner: faces x=0 and y=0 are
        # nearest per axis; their far corners are (0,1) and (1,0), both at
        # distance 1.
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert minmaxdist((0.0, 0.0), r) == pytest.approx(1.0)

    def test_hand_computed_off_center(self):
        # Query left of the box at its vertical center.
        r = Rect((2.0, 0.0), (4.0, 2.0))
        q = (0.0, 1.0)
        # Axis x: near bound x=2, far y bound is either (|1-0|=1 vs |1-2|=1)
        # -> far y distance 1; candidate = 2^2 + 1^2 = 5.
        # Axis y: near bound y=0 (tie resolves to lo), far x bound x=4;
        # candidate = 1^2 + 4^2 = 17.
        assert minmaxdist_squared(q, r) == pytest.approx(5.0)

    def test_degenerate_rect_equals_point_distance(self):
        r = Rect.from_point((3.0, 4.0))
        assert minmaxdist((0.0, 0.0), r) == 5.0

    def test_point_at_center_of_square(self):
        r = Rect((0.0, 0.0), (2.0, 2.0))
        # From the center, every face's farthest point is at distance
        # sqrt(1 + 1); axis choice doesn't matter by symmetry.
        assert minmaxdist((1.0, 1.0), r) == pytest.approx(math.sqrt(2.0))

    def test_one_dimensional_is_nearest_face(self):
        r = Rect((2.0,), (6.0,))
        # Faces are the endpoints; MINMAXDIST is the distance to the
        # *nearer* endpoint (each "face" is a single point).
        assert minmaxdist((0.0,), r) == 2.0
        assert minmaxdist((5.0,), r) == 1.0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            minmaxdist((1.0, 2.0), Rect((0.0,), (1.0,)))


class TestTheorems:
    """The paper's ordering theorems on a grid of hand-picked cases."""

    CASES = [
        (Rect((0, 0), (1, 1)), (0.5, 0.5)),
        (Rect((0, 0), (1, 1)), (-3.0, 0.5)),
        (Rect((0, 0), (1, 1)), (5.0, 5.0)),
        (Rect((2, 3), (9, 4)), (0.0, 0.0)),
        (Rect((-5, -5), (5, 5)), (0.0, 20.0)),
        (Rect((1, 1, 1), (2, 3, 4)), (0.0, 0.0, 0.0)),
        (Rect((1, 1, 1), (2, 3, 4)), (1.5, 2.0, 2.0)),
    ]

    @pytest.mark.parametrize("rect,query", CASES)
    def test_mindist_le_minmaxdist(self, rect, query):
        assert mindist_squared(query, rect) <= minmaxdist_squared(query, rect) + 1e-12

    @pytest.mark.parametrize("rect,query", CASES)
    def test_minmaxdist_le_farthest_corner(self, rect, query):
        from itertools import product

        corners = product(*zip(rect.lo, rect.hi))
        farthest_sq = max(
            sum((q - c) ** 2 for q, c in zip(query, corner))
            for corner in corners
        )
        assert minmaxdist_squared(query, rect) <= farthest_sq + 1e-12
