"""The legacy-kwargs deprecation shim: warn once, change nothing.

``config=QueryConfig(...)`` is the query surface; the scattered
``algorithm=``/``ordering=``/... keywords are deprecated spellings that
must (a) emit a ``DeprecationWarning`` pointing at the migration guide,
(b) keep returning exactly the same answers, and (c) never fire for
callers already on ``config=``.  ``k=`` stays first-class and silent.
"""

import os
import warnings

import pytest

from repro import QueryConfig, nearest, nearest_batch
from repro.core.query import NearestNeighborQuery
from repro.service.options import EngineOptions

from tests.conftest import build_point_tree


@pytest.fixture
def tree(small_points):
    return build_point_tree(small_points)


QUERY = (0.5, 0.5)


class TestWarns:
    def test_nearest_legacy_kwarg_warns(self, tree):
        with pytest.warns(DeprecationWarning, match="algorithm="):
            nearest(tree, QUERY, k=2, algorithm="best-first")

    def test_warning_names_every_legacy_kwarg_and_the_guide(self, tree):
        with pytest.warns(DeprecationWarning) as caught:
            nearest(tree, QUERY, k=2, ordering="minmaxdist", epsilon=0.1)
        message = str(caught[0].message)
        assert "ordering=" in message and "epsilon=" in message
        assert "QueryConfig" in message
        assert "docs/API.md" in message

    def test_query_object_legacy_kwarg_warns(self, tree):
        with pytest.warns(DeprecationWarning, match="NearestNeighborQuery"):
            NearestNeighborQuery(tree, algorithm="best-first")

    def test_nearest_batch_legacy_kwarg_warns(self, tree):
        with pytest.warns(DeprecationWarning, match="nearest_batch"):
            nearest_batch(tree, [QUERY], k=1, ordering="mindist")


class TestSilent:
    def test_config_spelling_is_warning_free(self, tree):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            nearest(tree, QUERY, config=QueryConfig(k=2, algorithm="best-first"))
            nearest_batch(tree, [QUERY], config=QueryConfig(k=2))
            NearestNeighborQuery(tree, config=QueryConfig(k=1))

    def test_k_stays_first_class_and_silent(self, tree):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            nearest(tree, QUERY, k=3)
            nearest_batch(tree, [QUERY], k=3)


class TestWarningAttribution:
    """Deprecation warnings must point at the *caller's* line.

    A warning attributed inside ``repro`` is useless: the caller cannot
    act on it and cannot silence it by location.  The filename on every
    caught warning must therefore be this test file — including when an
    internal forwarding frame (compiled against a ``repro`` source file)
    sits between the caller and the entry point, which the old fixed
    ``stacklevel=3`` got wrong.
    """

    def _filename(self, caught):
        return os.path.abspath(caught[0].filename)

    def test_nearest_direct_call_points_here(self, tree):
        with pytest.warns(DeprecationWarning) as caught:
            nearest(tree, QUERY, k=2, algorithm="best-first")
        assert self._filename(caught) == os.path.abspath(__file__)

    def test_query_object_direct_call_points_here(self, tree):
        with pytest.warns(DeprecationWarning) as caught:
            NearestNeighborQuery(tree, algorithm="best-first")
        assert self._filename(caught) == os.path.abspath(__file__)

    def test_nearest_batch_direct_call_points_here(self, tree):
        with pytest.warns(DeprecationWarning) as caught:
            nearest_batch(tree, [QUERY], k=1, ordering="mindist")
        assert self._filename(caught) == os.path.abspath(__file__)

    def test_forwarding_frames_inside_repro_are_skipped(self, tree):
        """Regression: an intermediate repro-attributed frame must not
        swallow the attribution.

        The wrapper below is compiled against a real ``repro`` source
        filename, exactly like an internal convenience layer forwarding
        legacy kwargs into ``nearest``.  The warning must skip over it
        and land on this file; with the fixed ``stacklevel=3`` it landed
        on the wrapper's (library) file instead.
        """
        import repro.core.config as config_mod

        source = (
            "def forward(tree, point, _nearest):\n"
            "    return _nearest(tree, point, k=2, algorithm='best-first')\n"
        )
        namespace = {}
        exec(compile(source, config_mod.__file__, "exec"), namespace)
        with pytest.warns(DeprecationWarning) as caught:
            namespace["forward"](tree, QUERY, nearest)
        assert self._filename(caught) == os.path.abspath(__file__)


class TestSameAnswers:
    def test_legacy_and_config_spellings_agree(self, tree):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = nearest(
                tree, QUERY, k=3, algorithm="best-first", epsilon=0.2
            )
        modern = nearest(
            tree,
            QUERY,
            config=QueryConfig(k=3, algorithm="best-first", epsilon=0.2),
        )
        assert [n.payload for n in legacy.neighbors] == [
            n.payload for n in modern.neighbors
        ]
        assert legacy.stats == modern.stats


class TestBatchOptionsRouting:
    """nearest_batch execution knobs route through one EngineOptions."""

    def test_legacy_knobs_and_options_agree(self, tree):
        queries = [QUERY, (0.2, 0.8), (0.9, 0.1)]
        legacy_results, legacy_stats, legacy_reads = nearest_batch(
            tree, queries, k=2, buffer_pages=16
        )
        opt_results, opt_stats, opt_reads = nearest_batch(
            tree,
            queries,
            k=2,
            options=EngineOptions.batch_defaults().merged(buffer_pages=16),
        )
        assert [r.distances() for r in legacy_results] == [
            r.distances() for r in opt_results
        ]
        assert legacy_stats == opt_stats
        assert legacy_reads == opt_reads

    def test_batch_defaults_reproduce_sequential_accounting(self, tree):
        queries = [QUERY, (0.3, 0.3)]
        results, stats, reads = nearest_batch(tree, queries, k=1)
        singles = [nearest(tree, q, k=1) for q in queries]
        assert [r.distances() for r in results] == [
            s.distances() for s in singles
        ]

    def test_batch_defaults_profile(self):
        opts = EngineOptions.batch_defaults()
        assert opts.workers == 1
        assert opts.cache_size == 0
        assert opts.buffer_pages == 64
