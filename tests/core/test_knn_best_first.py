"""Unit tests for the best-first search and incremental distance browsing."""

import pytest

from repro import CountingTracker, RTree, linear_scan
from repro.core.knn_best_first import nearest_best_first, nearest_incremental
from repro.core.knn_dfs import nearest_dfs
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from tests.conftest import assert_same_distances


class TestBestFirst:
    def test_empty_tree(self):
        neighbors, stats = nearest_best_first(RTree(), (0.0, 0.0), k=2)
        assert neighbors == []
        assert stats.nodes_accessed == 0

    def test_invalid_k(self, small_tree):
        with pytest.raises(InvalidParameterError):
            nearest_best_first(small_tree, (0.0, 0.0), k=-1)

    def test_dimension_mismatch(self, small_tree):
        with pytest.raises(DimensionMismatchError):
            nearest_best_first(small_tree, (1.0,))

    @pytest.mark.parametrize("k", [1, 3, 7, 20])
    def test_matches_oracle(self, medium_tree, k):
        for q in [(0.0, 0.0), (123.0, 987.0), (500.0, 500.0)]:
            got, _ = nearest_best_first(medium_tree, q, k=k)
            expected = linear_scan(medium_tree, q, k=k)
            assert_same_distances(got, expected)

    def test_never_reads_more_pages_than_dfs(self, medium_tree):
        # Best-first is page-optimal: it can't lose to DFS on any query.
        for q in [(10.0, 10.0), (400.0, 800.0), (999.0, 999.0)]:
            for k in (1, 5):
                _, bf = nearest_best_first(medium_tree, q, k=k)
                _, dfs = nearest_dfs(medium_tree, q, k=k)
                assert bf.nodes_accessed <= dfs.nodes_accessed

    def test_tracker_counts(self, medium_tree):
        tracker = CountingTracker()
        _, stats = nearest_best_first(
            medium_tree, (500.0, 500.0), k=3, tracker=tracker
        )
        assert tracker.stats.total == stats.nodes_accessed


class TestIncremental:
    def test_empty_tree_yields_nothing(self):
        assert list(nearest_incremental(RTree(), (0.0, 0.0))) == []

    def test_dimension_mismatch(self, small_tree):
        with pytest.raises(DimensionMismatchError):
            list(nearest_incremental(small_tree, (1.0, 2.0, 3.0)))

    def test_yields_all_items_in_distance_order(self, small_tree):
        result = list(nearest_incremental(small_tree, (500.0, 500.0)))
        assert len(result) == len(small_tree)
        distances = [n.distance for n in result]
        assert distances == sorted(distances)

    def test_prefix_matches_knn(self, medium_tree):
        q = (250.0, 250.0)
        stream = nearest_incremental(medium_tree, q)
        first_five = [next(stream) for _ in range(5)]
        expected = linear_scan(medium_tree, q, k=5)
        assert_same_distances(first_five, expected)

    def test_lazy_consumption_reads_fewer_pages(self, medium_tree):
        q = (500.0, 500.0)
        partial_stats = SearchStats()
        stream = nearest_incremental(medium_tree, q, stats=partial_stats)
        next(stream)
        pages_for_one = partial_stats.nodes_accessed

        full_stats = SearchStats()
        list(nearest_incremental(medium_tree, q, stats=full_stats))
        assert pages_for_one < full_stats.nodes_accessed
        assert full_stats.nodes_accessed == medium_tree.node_count

    def test_agrees_with_best_first_for_each_k(self, small_tree):
        q = (100.0, 900.0)
        stream = list(nearest_incremental(small_tree, q))
        for k in (1, 4, 9):
            expected, _ = nearest_best_first(small_tree, q, k=k)
            assert_same_distances(stream[:k], expected)
