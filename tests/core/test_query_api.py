"""Unit tests for the high-level query façade."""

import pytest

from repro import NearestNeighborQuery, RTree, nearest
from repro.errors import InvalidParameterError


class TestNearestFunction:
    def test_returns_nnresult(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        assert len(result) == 3
        assert len(result.payloads()) == 3
        assert result.distances() == sorted(result.distances())
        assert result.stats.nodes_accessed > 0

    def test_result_is_iterable_and_indexable(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        assert [n.payload for n in result] == result.payloads()
        assert result[0].distance <= result[1].distance
        assert [n.payload for n in result[:2]] == result.payloads()[:2]

    def test_algorithms_agree(self, small_tree):
        q = (321.0, 654.0)
        dfs = nearest(small_tree, q, k=4, algorithm="dfs")
        bf = nearest(small_tree, q, k=4, algorithm="best-first")
        assert dfs.distances() == pytest.approx(bf.distances())

    def test_unknown_algorithm(self, small_tree):
        with pytest.raises(InvalidParameterError):
            nearest(small_tree, (0.0, 0.0), algorithm="magic")

    def test_empty_tree(self):
        result = nearest(RTree(), (0.0, 0.0), k=5)
        assert len(result) == 0
        assert result.payloads() == []


class TestNearestNeighborQuery:
    def test_reusable_query(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=2)
        a = query((100.0, 100.0))
        b = query((900.0, 900.0))
        assert len(a) == 2 and len(b) == 2
        assert a.payloads() != b.payloads()

    def test_k_override(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=1)
        assert len(query((500.0, 500.0), k=6)) == 6

    def test_validates_algorithm_eagerly(self, small_tree):
        with pytest.raises(InvalidParameterError):
            NearestNeighborQuery(small_tree, algorithm="nope")

    def test_repr(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=4, ordering="minmaxdist")
        assert "k=4" in repr(query)
        assert "minmaxdist" in repr(query)

    def test_configured_ordering_used(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=1, ordering="minmaxdist")
        result = query((500.0, 500.0))
        baseline = nearest(small_tree, (500.0, 500.0), k=1)
        assert result.distances() == pytest.approx(baseline.distances())
