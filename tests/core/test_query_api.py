"""Unit tests for the high-level query façade."""

import pytest

from repro import NearestNeighborQuery, QueryConfig, RTree, nearest
from repro.errors import InvalidParameterError


class TestNearestFunction:
    def test_returns_nnresult(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        assert len(result) == 3
        assert len(result.payloads()) == 3
        assert result.distances() == sorted(result.distances())
        assert result.stats.nodes_accessed > 0

    def test_result_is_iterable_and_indexable(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        assert [n.payload for n in result] == result.payloads()
        assert result[0].distance <= result[1].distance
        assert [n.payload for n in result[:2]] == result.payloads()[:2]

    def test_algorithms_agree(self, small_tree):
        q = (321.0, 654.0)
        dfs = nearest(small_tree, q, k=4, algorithm="dfs")
        bf = nearest(small_tree, q, k=4, algorithm="best-first")
        assert dfs.distances() == pytest.approx(bf.distances())

    def test_unknown_algorithm(self, small_tree):
        with pytest.raises(InvalidParameterError):
            nearest(small_tree, (0.0, 0.0), algorithm="magic")

    def test_empty_tree(self):
        result = nearest(RTree(), (0.0, 0.0), k=5)
        assert len(result) == 0
        assert result.payloads() == []


class TestNearestNeighborQuery:
    def test_reusable_query(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=2)
        a = query((100.0, 100.0))
        b = query((900.0, 900.0))
        assert len(a) == 2 and len(b) == 2
        assert a.payloads() != b.payloads()

    def test_k_override(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=1)
        assert len(query((500.0, 500.0), k=6)) == 6

    def test_validates_algorithm_eagerly(self, small_tree):
        with pytest.raises(InvalidParameterError):
            NearestNeighborQuery(small_tree, algorithm="nope")

    def test_repr(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=4, ordering="minmaxdist")
        assert "k=4" in repr(query)
        assert "minmaxdist" in repr(query)

    def test_configured_ordering_used(self, small_tree):
        query = NearestNeighborQuery(small_tree, k=1, ordering="minmaxdist")
        result = query((500.0, 500.0))
        baseline = nearest(small_tree, (500.0, 500.0), k=1)
        assert result.distances() == pytest.approx(baseline.distances())


class TestCallStyles:
    """Both entry styles — legacy kwargs and config= — must stay pinned."""

    def test_kwargs_and_config_agree(self, small_tree):
        q = (432.0, 123.0)
        via_kwargs = nearest(
            small_tree, q, k=4, algorithm="best-first", epsilon=0.0
        )
        via_config = nearest(
            small_tree, q, config=QueryConfig(k=4, algorithm="best-first")
        )
        assert via_kwargs.distances() == via_config.distances()
        assert via_kwargs.payloads() == via_config.payloads()

    def test_explicit_kwarg_overrides_config(self, small_tree):
        config = QueryConfig(k=2)
        assert len(nearest(small_tree, (500.0, 500.0), k=6, config=config)) == 6
        # The config itself is untouched by the call.
        assert config.k == 2

    def test_query_object_accepts_config(self, small_tree):
        config = QueryConfig(k=3, ordering="minmaxdist")
        query = NearestNeighborQuery(small_tree, config=config)
        assert query.k == 3
        assert query.ordering == "minmaxdist"
        assert len(query((500.0, 500.0))) == 3

    def test_query_object_validates_config_eagerly(self, small_tree):
        with pytest.raises(InvalidParameterError):
            NearestNeighborQuery(small_tree, ordering="sideways")
        with pytest.raises(InvalidParameterError):
            NearestNeighborQuery(small_tree, k=0)

    def test_invalid_ordering_message_lists_choices(self, small_tree):
        with pytest.raises(InvalidParameterError) as excinfo:
            nearest(small_tree, (0.0, 0.0), ordering="zigzag")
        message = str(excinfo.value)
        assert "mindist" in message and "minmaxdist" in message


class TestNNResultErgonomics:
    def test_points_returns_object_centers(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        points = result.points()
        assert len(points) == 3
        assert all(len(p) == 2 for p in points)

    def test_to_dicts_is_ranked_and_complete(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        dicts = result.to_dicts()
        assert [d["rank"] for d in dicts] == [1, 2, 3]
        assert [d["payload"] for d in dicts] == result.payloads()
        assert [d["distance"] for d in dicts] == result.distances()
        assert [d["point"] for d in dicts] == list(result.points())

    def test_repr_mentions_key_facts(self, small_tree):
        result = nearest(small_tree, (500.0, 500.0), k=3)
        text = repr(result)
        assert "k=3" in text
        assert "best_distance" in text
        assert "nodes_accessed" in text

    def test_empty_result_repr(self):
        result = nearest(RTree(), (0.0, 0.0), k=2)
        assert "k=0" in repr(result) or "empty" in repr(result).lower()
        assert result.points() == []
        assert result.to_dicts() == []
