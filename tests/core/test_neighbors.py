"""Unit tests for the Neighbor result type and the candidate buffer."""

import math

import pytest

from repro.core.neighbors import Neighbor, NeighborBuffer
from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect

R = Rect((0.0, 0.0), (1.0, 1.0))


class TestNeighbor:
    def test_ordering_by_distance(self):
        near = Neighbor("a", R, 1.0, 1.0)
        far = Neighbor("b", R, 2.0, 4.0)
        assert near < far
        assert sorted([far, near]) == [near, far]


class TestNeighborBuffer:
    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            NeighborBuffer(0)

    def test_empty_buffer_bound_is_infinite(self):
        buf = NeighborBuffer(3)
        assert buf.worst_distance_squared == math.inf
        assert buf.peek_worst() is None
        assert len(buf) == 0

    def test_fills_to_k_then_replaces(self):
        buf = NeighborBuffer(2)
        assert buf.offer(9.0, "far", R)
        assert buf.offer(4.0, "mid", R)
        assert buf.is_full
        assert buf.worst_distance_squared == 9.0
        # A better candidate evicts the worst.
        assert buf.offer(1.0, "near", R)
        assert buf.worst_distance_squared == 4.0
        payloads = [n.payload for n in buf.to_sorted_list()]
        assert payloads == ["near", "mid"]

    def test_rejects_candidate_not_better_than_worst(self):
        buf = NeighborBuffer(1)
        buf.offer(4.0, "first", R)
        assert not buf.offer(4.0, "tie", R)
        assert not buf.offer(5.0, "worse", R)
        assert [n.payload for n in buf.to_sorted_list()] == ["first"]

    def test_partial_buffer_accepts_anything(self):
        buf = NeighborBuffer(5)
        for d in [100.0, 1.0, 50.0]:
            assert buf.offer(d, d, R)
        assert not buf.is_full
        assert buf.worst_distance_squared == math.inf

    def test_sorted_list_ascending(self):
        buf = NeighborBuffer(4)
        for d in [9.0, 1.0, 16.0, 4.0]:
            buf.offer(d, d, R)
        result = buf.to_sorted_list()
        assert [n.distance_squared for n in result] == [1.0, 4.0, 9.0, 16.0]
        assert [n.distance for n in result] == [1.0, 2.0, 3.0, 4.0]

    def test_peek_worst(self):
        buf = NeighborBuffer(2)
        buf.offer(1.0, "a", R)
        buf.offer(9.0, "b", R)
        worst = buf.peek_worst()
        assert worst.payload == "b"
        assert worst.distance == 3.0

    def test_unorderable_payloads_are_fine(self):
        # Ties in distance must not compare payloads.
        buf = NeighborBuffer(3)
        buf.offer(1.0, {"x": 1}, R)
        buf.offer(1.0, {"y": 2}, R)
        buf.offer(1.0, {"z": 3}, R)
        assert len(buf.to_sorted_list()) == 3

    def test_insertion_order_stable_for_ties(self):
        buf = NeighborBuffer(3)
        buf.offer(1.0, "first", R)
        buf.offer(1.0, "second", R)
        payloads = [n.payload for n in buf.to_sorted_list()]
        assert payloads == ["first", "second"]

    def test_k_one_tracks_minimum(self):
        buf = NeighborBuffer(1)
        for d in [25.0, 16.0, 36.0, 4.0, 9.0]:
            buf.offer(d, d, R)
        assert buf.worst_distance_squared == 4.0
