"""Tests for (1 + epsilon)-approximate nearest-neighbor search."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import RTree, linear_scan, nearest
from repro.core.knn_best_first import nearest_best_first
from repro.core.knn_dfs import nearest_dfs
from repro.errors import InvalidParameterError

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coord, coord)


class TestValidation:
    def test_negative_epsilon_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            nearest_dfs(small_tree, (0.0, 0.0), epsilon=-0.1)
        with pytest.raises(InvalidParameterError):
            nearest_best_first(small_tree, (0.0, 0.0), epsilon=-0.1)

    def test_epsilon_zero_is_exact(self, medium_tree):
        q = (313.0, 727.0)
        exact = linear_scan(medium_tree, q, k=4)
        for algorithm in ("dfs", "best-first"):
            got = nearest(medium_tree, q, k=4, algorithm=algorithm, epsilon=0.0)
            assert got.distances() == pytest.approx(
                [n.distance for n in exact]
            )


class TestGuarantee:
    @pytest.mark.parametrize("algorithm", ["dfs", "best-first"])
    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 2.0])
    def test_error_is_bounded(self, medium_tree, algorithm, epsilon):
        for q in [(0.0, 0.0), (500.0, 500.0), (999.0, 333.0)]:
            for k in (1, 5):
                exact = linear_scan(medium_tree, q, k=k)
                approx = nearest(
                    medium_tree, q, k=k, algorithm=algorithm, epsilon=epsilon
                )
                assert len(approx) == len(exact)
                for got, want in zip(approx, exact):
                    assert got.distance <= want.distance * (1 + epsilon) + 1e-9

    def test_large_epsilon_reads_fewer_pages(self, medium_tree):
        q = (500.0, 500.0)
        exact = nearest(medium_tree, q, k=8, epsilon=0.0)
        approx = nearest(medium_tree, q, k=8, epsilon=5.0)
        assert approx.stats.nodes_accessed <= exact.stats.nodes_accessed

    def test_pages_monotone_in_epsilon_best_first(self, medium_tree):
        # Best-first expands exactly the nodes within the shrunken bound,
        # so page counts are monotone non-increasing in epsilon.
        q = (250.0, 750.0)
        pages = []
        for epsilon in (0.0, 0.25, 1.0, 4.0):
            result = nearest(
                medium_tree, q, k=4, algorithm="best-first", epsilon=epsilon
            )
            pages.append(result.stats.nodes_accessed)
        assert pages == sorted(pages, reverse=True)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(point2d, min_size=1, max_size=100),
    point2d,
    st.integers(1, 6),
    st.floats(min_value=0.0, max_value=3.0),
    st.sampled_from(["dfs", "best-first"]),
)
def test_property_approximation_guarantee(points, query, k, epsilon, algorithm):
    tree = RTree(max_entries=4)
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    exact = linear_scan(tree, query, k=k)
    approx = nearest(tree, query, k=k, algorithm=algorithm, epsilon=epsilon)
    assert len(approx) == len(exact)
    slack = 1e-6
    for got, want in zip(approx, exact):
        assert got.distance <= want.distance * (1 + epsilon) + slack
