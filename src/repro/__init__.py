"""repro — Nearest Neighbor Queries on R-trees (SIGMOD 1995 reproduction).

A from-scratch implementation of Roussopoulos, Kelley & Vincent's
branch-and-bound k-nearest-neighbor algorithm, together with everything it
runs on: a dynamic R-tree with multiple split strategies, a page/buffer
simulation for I/O accounting, baselines (linear scan, kd-tree), workload
generators, and a bench harness reproducing the paper's evaluation.

Quickstart::

    from repro import RTree, nearest

    tree = RTree(max_entries=8)
    for i, (x, y) in enumerate([(1, 1), (5, 5), (9, 9)]):
        tree.insert((x, y), payload=f"poi-{i}")

    result = nearest(tree, (4.0, 4.0), k=2)
    print(result.payloads())        # ['poi-1', 'poi-0']
    print(result.stats.nodes_accessed)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of each figure and table in the paper.
"""

from repro.core import (
    NNResult,
    NearestNeighborQuery,
    Neighbor,
    NeighborBuffer,
    PruningConfig,
    PruningStats,
    QueryConfig,
    SearchStats,
    aggregate_nearest,
    count_within_distance,
    farthest_best_first,
    maxdist,
    maxdist_squared,
    mindist,
    mindist_squared,
    minmaxdist,
    minmaxdist_squared,
    nearest,
    nearest_batch,
    nearest_best_first,
    nearest_dfs,
    intersection_join,
    knn_join,
    lp_distance,
    mindist_lp,
    minmaxdist_lp,
    nearest_dfs_lp,
    nearest_incremental,
    within_distance,
)
from repro.core.budget import Budget
from repro.errors import (
    AdmissionRejected,
    ChecksumError,
    DeadlineExceeded,
    CorruptionWarning,
    DimensionMismatchError,
    EmptyIndexError,
    GeometryError,
    InvalidParameterError,
    InvalidRectError,
    PageFileError,
    ReproError,
    QuotaExceeded,
    ShardLostError,
    TornWriteError,
    TransientIOError,
    TreeInvariantError,
)
from repro.geometry import Point, Rect, Segment
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    SlowQueryRecord,
    Trace,
    render_trace,
)
from repro.packed import (
    PackedTree,
    packed_nearest_best_first,
    packed_nearest_dfs,
)
from repro.rtree import (
    DiskRTree,
    RTree,
    ScrubReport,
    TreeSnapshot,
    scrub,
    verify_checksums,
    write_tree,
    TreeQuality,
    measure_quality,
    bulk_load,
    load_tree,
    save_tree,
    validate_tree,
)
from repro.service import (
    BrownoutController,
    BrownoutLevel,
    Engine,
    EngineOptions,
    EngineSnapshot,
    EngineStats,
    QueryEngine,
    ResilientEngine,
    ResultCache,
    TokenBucket,
)
from repro.server import NNServer, ServerConfig
from repro.shard import ShardedQueryEngine, ShardedStats
from repro.storage import (
    AccessTracker,
    CircuitBreaker,
    FaultInjectingPageFile,
    FaultPlan,
    PageFile,
    CountingTracker,
    DiskCostModel,
    FifoBufferPool,
    LruBufferPool,
    NullTracker,
    PageModel,
    RetryPolicy,
    ShardedTracker,
)
from repro.baselines import GridIndex, KdTree, QuadTree, linear_scan, linear_scan_items

__version__ = "1.0.0"

__all__ = [
    "AccessTracker",
    "AdmissionRejected",
    "Budget",
    "BrownoutController",
    "BrownoutLevel",
    "CircuitBreaker",
    "DeadlineExceeded",
    "QuotaExceeded",
    "ResilientEngine",
    "TokenBucket",
    "CountingTracker",
    "DiskCostModel",
    "aggregate_nearest",
    "count_within_distance",
    "farthest_best_first",
    "maxdist",
    "maxdist_squared",
    "within_distance",
    "intersection_join",
    "knn_join",
    "lp_distance",
    "mindist_lp",
    "minmaxdist_lp",
    "nearest_dfs_lp",
    "TreeQuality",
    "measure_quality",
    "DiskRTree",
    "write_tree",
    "PageFile",
    "PageFileError",
    "ChecksumError",
    "CorruptionWarning",
    "TornWriteError",
    "TransientIOError",
    "FaultInjectingPageFile",
    "FaultPlan",
    "RetryPolicy",
    "ScrubReport",
    "scrub",
    "verify_checksums",
    "DimensionMismatchError",
    "EmptyIndexError",
    "FifoBufferPool",
    "GeometryError",
    "InvalidParameterError",
    "InvalidRectError",
    "GridIndex",
    "KdTree",
    "QuadTree",
    "LruBufferPool",
    "Engine",
    "EngineOptions",
    "EngineSnapshot",
    "EngineStats",
    "ShardedQueryEngine",
    "ShardedStats",
    "ShardLostError",
    "MetricsRegistry",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Trace",
    "render_trace",
    "NNResult",
    "NNServer",
    "ServerConfig",
    "NearestNeighborQuery",
    "Neighbor",
    "NeighborBuffer",
    "NullTracker",
    "PageModel",
    "Point",
    "PruningConfig",
    "PruningStats",
    "QueryConfig",
    "QueryEngine",
    "ResultCache",
    "RTree",
    "PackedTree",
    "packed_nearest_dfs",
    "packed_nearest_best_first",
    "ShardedTracker",
    "TreeSnapshot",
    "Rect",
    "ReproError",
    "SearchStats",
    "Segment",
    "TreeInvariantError",
    "bulk_load",
    "linear_scan",
    "linear_scan_items",
    "load_tree",
    "mindist",
    "mindist_squared",
    "minmaxdist",
    "minmaxdist_squared",
    "nearest",
    "nearest_batch",
    "nearest_best_first",
    "nearest_dfs",
    "nearest_incremental",
    "save_tree",
    "validate_tree",
    "__version__",
]
