"""The unified query configuration shared by every k-NN entry point.

Historically ``nearest``, :class:`~repro.core.query.NearestNeighborQuery`,
``nearest_batch`` and the bench harness each grew the same sprawl of
keyword arguments (algorithm, ordering, pruning, epsilon, ...), duplicated
and validated — if at all — deep inside the search kernels.
:class:`QueryConfig` collects those knobs into one frozen, hashable value:

- every entry point accepts ``config=QueryConfig(...)``, and the legacy
  keyword arguments keep working as a thin compatibility shim (explicit
  kwargs override the corresponding ``config`` field);
- validation is *eager* — a typo'd ordering fails at construction with the
  valid choices listed, not three stack frames into ``nearest_dfs``;
- being frozen and hashable, a config can key a result cache (the serving
  layer in :mod:`repro.service` caches on ``(point, config, tree epoch)``).

The access ``tracker`` is deliberately *not* part of the configuration: it
is per-run instrumentation, not query semantics, and two runs differing
only in their tracker must hit the same cache entry.
"""

from __future__ import annotations

import os
import sys
import warnings
from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro.core.budget import Budget
from repro.core.knn_dfs import ObjectDistance
from repro.core.pruning import PruningConfig
from repro.errors import InvalidParameterError

__all__ = [
    "QueryConfig",
    "VALID_ALGORITHMS",
    "VALID_ORDERINGS",
    "warn_legacy_query_kwargs",
]

#: Search algorithms the façade dispatches on.
VALID_ALGORITHMS = ("dfs", "best-first")
#: Active-branch-list orderings the DFS search accepts.
VALID_ORDERINGS = ("mindist", "minmaxdist")

#: Sentinel distinguishing "not passed" from an explicit value in the
#: keyword-compatibility shims.
_UNSET = None

#: Root directory of the installed ``repro`` package; any stack frame
#: whose code file lives under it belongs to the library, not a caller.
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _caller_stacklevel() -> int:
    """Stacklevel (for a ``warnings.warn`` issued by our direct caller)
    of the nearest stack frame *outside* the ``repro`` package.

    A fixed ``stacklevel=3`` only attributes the warning correctly when
    user code calls the public entry point directly; any internal
    forwarding layer (``nearest_batch`` routing through the engine, a
    wrapper built on :func:`repro.core.query.nearest`, ...) inserts
    extra ``repro`` frames and the warning lands inside the library —
    which user code cannot silence by line and cannot act on.  This is
    the pre-3.12 backport of ``warnings.warn(skip_file_prefixes=...)``:
    walk outward until the first frame whose file is not under the
    package root, and point the warning there.
    """
    if not hasattr(sys, "_getframe"):  # pragma: no cover - non-CPython
        return 3
    # Relative to warnings.warn in our caller: stacklevel=2 is the
    # caller's caller, which from here is sys._getframe(2).
    level = 2
    while True:
        try:
            frame = sys._getframe(level)
        except ValueError:  # ran off the stack: blame the outermost frame
            return max(2, level - 1)
        filename = os.path.abspath(frame.f_code.co_filename)
        if not filename.startswith(_PACKAGE_ROOT + os.sep):
            return level
        level += 1


def warn_legacy_query_kwargs(api: str, **passed: Any) -> None:
    """Emit one :class:`DeprecationWarning` for legacy query kwargs.

    The entry points (:func:`repro.core.query.nearest`,
    :class:`~repro.core.query.NearestNeighborQuery`,
    :func:`repro.core.batch.nearest_batch`) call this with every legacy
    keyword they received; any that is not ``None`` (i.e. actually
    passed) triggers the warning.  ``k=`` stays first-class and silent —
    only the configuration sprawl (``algorithm=``, ``ordering=``, ...)
    is deprecated in favor of ``config=QueryConfig(...)``.

    The migration path is documented in docs/API.md (§ Migrating to
    ``QueryConfig``); warnings point there.  The stacklevel is computed
    dynamically (:func:`_caller_stacklevel`) so the warning always
    points at the first line *outside* ``repro`` — the caller's code —
    no matter how many internal forwarding frames sit in between.
    """
    legacy = sorted(name for name, value in passed.items() if value is not None)
    if not legacy:
        return
    spelled = ", ".join(f"{name}=" for name in legacy)
    warnings.warn(
        f"{api}: the keyword argument(s) {spelled} are deprecated; pass "
        f"config=QueryConfig(...) instead (docs/API.md, 'Migrating to "
        f"QueryConfig')",
        DeprecationWarning,
        stacklevel=_caller_stacklevel(),
    )


@dataclass(frozen=True)
class QueryConfig:
    """Immutable description of *how* a nearest-neighbor query runs.

    Args:
        k: Number of neighbors to return (``>= 1``).
        algorithm: ``"dfs"`` (the paper's branch-and-bound search) or
            ``"best-first"`` (Hjaltason–Samet priority search).
        ordering: DFS active-branch-list metric, ``"mindist"`` or
            ``"minmaxdist"``; ignored by best-first search.
        pruning: DFS pruning strategy toggles (``None`` = all sound ones).
        epsilon: Approximation slack; 0 is exact.
        object_distance_sq: Exact squared object-distance hook.
        budget: Optional per-query work bound
            (:class:`~repro.core.budget.Budget`); ``None`` means
            unbounded, the pre-existing behavior.

    All fields are validated eagerly at construction;
    :class:`~repro.errors.InvalidParameterError` lists the valid choices.
    """

    k: int = 1
    algorithm: str = "dfs"
    ordering: str = "mindist"
    pruning: Optional[PruningConfig] = None
    epsilon: float = 0.0
    object_distance_sq: Optional[ObjectDistance] = None
    budget: Optional[Budget] = None

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or self.k < 1:
            raise InvalidParameterError(f"k must be an int >= 1, got {self.k!r}")
        if self.algorithm not in VALID_ALGORITHMS:
            raise InvalidParameterError(
                f"algorithm must be one of {VALID_ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if self.ordering not in VALID_ORDERINGS:
            raise InvalidParameterError(
                f"ordering must be one of {VALID_ORDERINGS}, "
                f"got {self.ordering!r}"
            )
        if self.pruning is not None and not isinstance(self.pruning, PruningConfig):
            raise InvalidParameterError(
                f"pruning must be a PruningConfig or None, got {self.pruning!r}"
            )
        if self.epsilon < 0.0:
            raise InvalidParameterError(
                f"epsilon must be >= 0, got {self.epsilon}"
            )
        if self.object_distance_sq is not None and not callable(
            self.object_distance_sq
        ):
            raise InvalidParameterError(
                "object_distance_sq must be callable or None, "
                f"got {self.object_distance_sq!r}"
            )
        if self.budget is not None and not isinstance(self.budget, Budget):
            raise InvalidParameterError(
                f"budget must be a Budget or None, got {self.budget!r}"
            )

    def replace(self, **changes: Any) -> "QueryConfig":
        """A copy with *changes* applied (and re-validated)."""
        return replace(self, **changes)

    def with_overrides(self, **overrides: Any) -> "QueryConfig":
        """Apply the legacy-kwargs compatibility shim.

        Each override that is not ``None`` replaces the corresponding
        field; ``None`` means "not passed, keep the config's value".  This
        is what lets ``nearest(tree, p, k=3, config=cfg)`` mean "``cfg``,
        but with ``k=3``".
        """
        changes = {
            name: value for name, value in overrides.items() if value is not _UNSET
        }
        if not changes:
            return self
        return replace(self, **changes)

    def cache_key(self) -> Tuple:
        """Hashable identity for result caching.

        Two configs with equal keys produce identical results on the same
        tree state.  The ``object_distance_sq`` hook is keyed by object
        identity: distinct callables never share cache entries even if
        they compute the same function.
        """
        return (
            self.k,
            self.algorithm,
            self.ordering,
            self.pruning,
            self.epsilon,
            None
            if self.object_distance_sq is None
            else id(self.object_distance_sq),
            # The budget is part of result identity: a truncated answer
            # must never be served to a caller with a looser (or no)
            # budget, and brownout-widened budgets form their own tier.
            self.budget,
        )

    def describe(self) -> str:
        """Compact one-line rendering of the non-default fields."""
        parts = [f"k={self.k}", self.algorithm]
        if self.algorithm == "dfs":
            parts.append(self.ordering)
        if self.pruning is not None:
            parts.append(f"pruning={self.pruning}")
        if self.epsilon:
            parts.append(f"epsilon={self.epsilon}")
        if self.object_distance_sq is not None:
            parts.append("object-distance")
        if self.budget is not None:
            parts.append(self.budget.describe())
        return " ".join(parts)
