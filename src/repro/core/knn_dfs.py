"""The paper's ordered depth-first branch-and-bound k-NN search.

This is the algorithm of Sections 4-5 of Roussopoulos, Kelley & Vincent
(SIGMOD 1995), generalized to k neighbors exactly as the paper describes:

1. Visit a node.  If it is a leaf, compute the actual distance to every
   object and offer each to the candidate buffer.
2. Otherwise generate the *Active Branch List* (ABL): every child entry,
   annotated with its MINDIST (and, when needed, MINMAXDIST) from the query
   point, sorted by the chosen *ordering* metric.
3. Apply the downward prunes (P1 and the P2 bound update) to the ABL.
4. Recurse into the surviving branches in ABL order, re-checking each
   branch against the current k-th-nearest bound (P3) just before
   descending — the bound tightens as earlier siblings return.

The *ordering* choice ("mindist" vs "minmaxdist") is the subject of the
paper's first experiment: MINDIST ordering is optimistic and usually visits
fewer pages; MINMAXDIST ordering is pessimistic.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.trace import Trace

from repro.core.budget import Budget, BudgetClock, finish_truncated
from repro.core.metrics import _mindist_sq_unchecked, _minmaxdist_sq_unchecked
from repro.core.neighbors import Neighbor, NeighborBuffer
from repro.core.pruning import PruningConfig
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import Point, as_point
from repro.geometry.rect import Rect
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = ["nearest_dfs", "ObjectDistance", "PruneEvent"]

#: Optional hook computing the *squared* distance from the query point to an
#: actual object (e.g. a line segment).  It must never return less than the
#: squared MINDIST to the object's MBR, or pruning becomes unsound.
ObjectDistance = Callable[[Point, Any, Rect], float]

#: Optional audit instrumentation, called once per pruning decision:
#: ``callback("p1"|"p3", pruned_child_node, mindist_sq)`` for a discarded
#: branch, ``callback("p2", None, minmax_bound_sq)`` for a P2 bound
#: tightening.  Used by :mod:`repro.audit.soundness` to exhaustively
#: re-scan every pruned subtree and certify no true neighbor was dropped.
PruneEvent = Callable[[str, Optional[Node], float], None]

_VALID_ORDERINGS = ("mindist", "minmaxdist")

#: Relative slack on prune comparisons.  MINDIST/MINMAXDIST values reaching
#: a comparison were computed along different floating-point paths; on exact
#: geometric ties they can disagree by a few ulps, and pruning on such a
#: phantom difference would drop a legitimate neighbor.  Widening the bound
#: by one part in 10^12 can only make pruning *less* aggressive, so results
#: stay exact at the cost of (at most) a page or two on pathological ties.
_PRUNE_SLACK = 1.0 + 1e-12


def _set_prune_slack(value: float) -> float:
    """TEST-ONLY seam: replace the prune slack; returns the previous value.

    The audit subsystem (``python -m repro.audit --demo-broken-prune``)
    injects a slack *below* 1.0 here, which makes P1/P3 prune branches
    they must keep — a deliberately unsound search — and then verifies
    that the differential oracle catches the planted bug and shrinks it
    to a minimal repro.  Production code must never call this.
    """
    global _PRUNE_SLACK
    previous = _PRUNE_SLACK
    _PRUNE_SLACK = value
    return previous


def nearest_dfs(
    tree: RTree,
    point: Sequence[float],
    k: int = 1,
    ordering: str = "mindist",
    pruning: Optional[PruningConfig] = None,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: float = 0.0,
    on_prune: Optional[PruneEvent] = None,
    trace: Optional["Trace"] = None,
    budget: Optional[Budget] = None,
) -> Tuple[List[Neighbor], SearchStats]:
    """Find the *k* objects in *tree* nearest to *point*.

    Args:
        tree: The R-tree to search.
        point: Query point (dimension must match the tree's).
        k: Number of neighbors to return (fewer if the tree is smaller).
        ordering: ABL sort metric, ``"mindist"`` (default, optimistic) or
            ``"minmaxdist"`` (pessimistic) — the paper's two variants.
        pruning: Strategy toggles; defaults to everything sound for *k*.
        tracker: Page-access tracker (buffer pool or counter).
        object_distance_sq: Optional exact object distance hook (squared).
        epsilon: Approximation slack.  0 (default) gives exact results;
            ``epsilon > 0`` allows the search to skip a subtree unless it
            could improve the k-th candidate by more than a ``(1 + epsilon)``
            factor, so every returned distance is within ``(1 + epsilon)``
            of the corresponding exact one (the Arya et al. ANN guarantee,
            applied to the paper's P3 prune).
        on_prune: Audit instrumentation (see :data:`PruneEvent`); receives
            every P1/P3-discarded subtree and every P2 bound update.
            ``None`` (the default) costs nothing on the search hot path.
        trace: Optional :class:`repro.obs.Trace` recording the full event
            stream (node enter/exit, prune decisions with both bounds,
            candidate accepts).  ``None`` (the default) records nothing.
        budget: Optional :class:`~repro.core.budget.Budget` bounding the
            work of this one query.  The budget is charged once per node
            visit; on exhaustion the search unwinds, folding the MINDIST
            of every abandoned subtree into ``stats.frontier_sq``, and
            either flags the (sound-prefix) partial result
            ``truncated=True`` or raises
            :class:`~repro.errors.DeadlineExceeded` per the budget's
            ``on_exhausted`` policy.

    Returns:
        ``(neighbors, stats)`` — neighbors sorted nearest-first, and the
        per-query search statistics.
    """
    query = as_point(point)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if ordering not in _VALID_ORDERINGS:
        raise InvalidParameterError(
            f"ordering must be one of {_VALID_ORDERINGS}, got {ordering!r}"
        )
    if epsilon < 0.0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    stats = SearchStats()
    if len(tree) == 0:
        return [], stats
    if tree.dimension != len(query):
        raise DimensionMismatchError(tree.dimension, len(query), "query point")

    config = (pruning if pruning is not None else PruningConfig.all())
    config = config.effective_for_k(k)
    buffer = NeighborBuffer(k)
    search = _DfsSearch(
        query, config, ordering, buffer, stats, tracker, object_distance_sq,
        epsilon, on_prune, trace,
        clock=budget.start() if budget is not None else None,
    )
    search.root_level = tree.root.level
    search.visit(tree.root)
    if search.clock is not None and search.clock.reason:
        finish_truncated(stats, budget, search.clock.reason, search.frontier_sq)
    return buffer.to_sorted_list(), stats


class _DfsSearch:
    """State shared across the recursive traversal of one query."""

    __slots__ = (
        "query",
        "config",
        "ordering",
        "buffer",
        "stats",
        "tracker",
        "object_distance_sq",
        "minmax_bound_sq",
        "need_minmax",
        "shrink_sq",
        "on_prune",
        "trace",
        "root_level",
        "clock",
        "frontier_sq",
    )

    def __init__(
        self,
        query: Point,
        config: PruningConfig,
        ordering: str,
        buffer: NeighborBuffer,
        stats: SearchStats,
        tracker: Optional[AccessTracker],
        object_distance_sq: Optional[ObjectDistance],
        epsilon: float = 0.0,
        on_prune: Optional[PruneEvent] = None,
        trace: Optional["Trace"] = None,
        clock: Optional[BudgetClock] = None,
    ) -> None:
        self.query = query
        self.config = config
        self.ordering = ordering
        self.buffer = buffer
        self.stats = stats
        self.tracker = tracker
        self.object_distance_sq = object_distance_sq
        self.on_prune = on_prune
        self.trace = trace
        # Depth of a node is root_level - node.level (leaves have level 0);
        # set by nearest_dfs before the root visit, used only when tracing.
        self.root_level = 0
        # Smallest MINMAXDIST^2 over every MBR seen (the P2 bound): some
        # object is guaranteed to lie within this distance.
        self.minmax_bound_sq = math.inf
        self.need_minmax = (
            ordering == "minmaxdist" or config.use_p1 or config.use_p2
        )
        # Approximate search shrinks the P3 bound by (1 + eps): a subtree
        # is skipped unless it could beat the k-th candidate by more than
        # that factor, so no returned distance exceeds (1 + eps) times its
        # exact counterpart.
        self.shrink_sq = 1.0 / (1.0 + epsilon) ** 2
        # Budget state: the armed clock (None = unbounded) and the
        # running frontier bound — the smallest MINDIST^2 of any subtree
        # the budget forced the search to abandon unexplored.
        self.clock = clock
        self.frontier_sq = math.inf

    def prune_bound_sq(self) -> float:
        """Current squared pruning bound for P3 checks.

        The k-th-nearest candidate distance (shrunk by the approximation
        factor, if any), tightened by the P2 MINMAXDIST guarantee when that
        strategy is active.
        """
        bound = self.buffer.worst_distance_squared * self.shrink_sq
        if self.config.use_p2 and self.minmax_bound_sq < bound:
            return self.minmax_bound_sq
        return bound

    def visit(self, node: Node, node_md_sq: float = 0.0) -> None:
        clock = self.clock
        if clock is not None and clock.charge():
            # Budget exhausted: this subtree will not be explored.  Its
            # MINDIST lower-bounds everything inside it, so folding it
            # into the frontier keeps the truncation bound sound.
            if node_md_sq < self.frontier_sq:
                self.frontier_sq = node_md_sq
            return
        if self.tracker is not None:
            self.tracker.access(node.node_id, node.is_leaf)
        self.stats.record_node(node.is_leaf)
        trace = self.trace
        if trace is not None:
            depth = self.root_level - node.level
            trace.enter(depth, node.node_id, node.is_leaf, node_md_sq)
        if node.is_leaf:
            self._scan_leaf(node)
            if trace is not None:
                trace.exit(self.root_level - node.level, node.node_id)
            return

        branches = self._build_branch_list(node)
        use_p3 = self.config.use_p3
        branch_iter = iter(branches)
        for order_key, md_sq, _entry_child in branch_iter:
            # P3: the bound may have tightened since the ABL was built, so
            # re-check right before descending (the paper's upward prune).
            if use_p3 and md_sq > self.prune_bound_sq() * _PRUNE_SLACK:
                self.stats.pruning.p3_pruned += 1
                if self.on_prune is not None:
                    self.on_prune("p3", _entry_child, md_sq)
                if trace is not None:
                    trace.prune(
                        "p3",
                        self.root_level - _entry_child.level,
                        _entry_child.node_id,
                        md_sq,
                        self.prune_bound_sq(),
                    )
                continue
            self.visit(_entry_child, md_sq)
            if clock is not None and clock.reason:
                # Exhausted somewhere below: abandon the remaining
                # siblings, folding their MINDISTs into the frontier
                # (no P3 re-filtering here — strictly conservative).
                for _rem_key, rem_md_sq, _rem_child in branch_iter:
                    if rem_md_sq < self.frontier_sq:
                        self.frontier_sq = rem_md_sq
                break
        if trace is not None:
            trace.exit(self.root_level - node.level, node.node_id)

    def _scan_leaf(self, node: Node) -> None:
        # The query's dimension was validated against the tree's once, in
        # nearest_dfs; every rect in the tree shares it, so the per-entry
        # metric calls skip the check (the hoisted-_check_dims fast path).
        query = self.query
        hook = self.object_distance_sq
        trace = self.trace
        depth = self.root_level - node.level if trace is not None else 0
        for entry in node.entries:
            if hook is not None:
                dist_sq = hook(query, entry.payload, entry.rect)
            else:
                dist_sq = _mindist_sq_unchecked(query, entry.rect)
            self.stats.objects_examined += 1
            accepted = self.buffer.offer(dist_sq, entry.payload, entry.rect)
            if accepted and trace is not None:
                trace.accept(depth, dist_sq)

    def _build_branch_list(self, node: Node) -> List[tuple]:
        """Generate, sort and downward-prune the Active Branch List."""
        query = self.query
        need_minmax = self.need_minmax
        branches = []
        min_minmax_sq = math.inf
        for entry in node.entries:
            md_sq = _mindist_sq_unchecked(query, entry.rect)
            if need_minmax:
                mmd_sq = _minmaxdist_sq_unchecked(query, entry.rect)
                if mmd_sq < min_minmax_sq:
                    min_minmax_sq = mmd_sq
            else:
                mmd_sq = math.inf
            key = md_sq if self.ordering == "mindist" else mmd_sq
            branches.append((key, md_sq, entry.child))
        self.stats.branch_entries_considered += len(branches)

        # P2: remember the tightest MINMAXDIST guarantee seen anywhere.
        if self.config.use_p2 and min_minmax_sq < self.minmax_bound_sq:
            self.minmax_bound_sq = min_minmax_sq
            self.stats.pruning.p2_bound_updates += 1
            if self.on_prune is not None:
                self.on_prune("p2", None, min_minmax_sq)
            if self.trace is not None:
                self.trace.bound(self.root_level - node.level, min_minmax_sq)

        # P1: discard branches whose MINDIST exceeds a sibling's MINMAXDIST.
        # Comparing against the global minimum over the ABL is equivalent to
        # the pairwise rule: MINDIST(M) <= MINMAXDIST(M) always holds, so a
        # branch can never be pruned by its own MINMAXDIST.
        if self.config.use_p1 and branches:
            p1_bound = min_minmax_sq * _PRUNE_SLACK
            kept = []
            for b in branches:
                if b[1] <= p1_bound:
                    kept.append(b)
                else:
                    self.stats.pruning.p1_pruned += 1
                    if self.on_prune is not None:
                        self.on_prune("p1", b[2], b[1])
                    if self.trace is not None:
                        self.trace.prune(
                            "p1",
                            self.root_level - b[2].level,
                            b[2].node_id,
                            b[1],
                            min_minmax_sq,
                        )
            branches = kept

        branches.sort(key=lambda b: b[0])
        return branches
