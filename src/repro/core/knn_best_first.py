"""Best-first (priority-queue) k-NN search, after Hjaltason & Samet (1995/99).

The SIGMOD'95 depth-first search was followed shortly by the best-first
algorithm, which expands nodes in global MINDIST order and is provably
optimal in page accesses for a given tree.  We include it as the comparison
point of experiment E6 and as the engine of the *incremental* (distance
browsing) query, which yields neighbors one at a time in increasing distance
without a fixed k.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.core.budget import Budget, finish_truncated
from repro.core.knn_dfs import ObjectDistance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.trace import Trace
from repro.core.metrics import _mindist_sq_unchecked
from repro.core.neighbors import Neighbor, NeighborBuffer
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import as_point
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = ["nearest_best_first", "nearest_incremental"]


def nearest_best_first(
    tree: RTree,
    point: Sequence[float],
    k: int = 1,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: float = 0.0,
    trace: Optional["Trace"] = None,
    budget: Optional[Budget] = None,
) -> Tuple[List[Neighbor], SearchStats]:
    """Find the *k* nearest objects by best-first node expansion.

    Nodes wait in a min-heap keyed by MINDIST; objects are offered to the
    candidate buffer as their leaves are scanned.  Once the closest pending
    node cannot beat the k-th candidate, the search stops — no node whose
    subtree could matter is ever read, which is why this algorithm is the
    page-access lower bound for the experiments.

    ``epsilon > 0`` trades exactness for fewer page reads: a pending node
    is only expanded if it could beat the k-th candidate by more than a
    ``(1 + epsilon)`` factor, so every returned distance is within
    ``(1 + epsilon)`` of its exact counterpart.

    Pass a :class:`repro.obs.Trace` via *trace* to record the expansion
    order (enter events carry each node's MINDIST key; exit events are
    elided because the traversal is iterative, not nested).

    A *budget* is charged once per node expansion.  On exhaustion the
    frontier bound is simply the refused node's MINDIST key — the heap
    minimum, which lower-bounds everything still pending — and the
    best-so-far neighbors form a sound prefix within it (or
    :class:`~repro.errors.DeadlineExceeded` raises, per the budget's
    ``on_exhausted`` policy).
    """
    query = as_point(point)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if epsilon < 0.0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    stats = SearchStats()
    if len(tree) == 0:
        return [], stats
    if tree.dimension != len(query):
        raise DimensionMismatchError(tree.dimension, len(query), "query point")

    shrink_sq = 1.0 / (1.0 + epsilon) ** 2
    clock = budget.start() if budget is not None else None
    frontier_sq = math.inf
    buffer = NeighborBuffer(k)
    root_level = tree.root.level
    counter = 0
    heap: List[tuple] = [(0.0, counter, tree.root)]
    while heap:
        key_sq, _, node = heapq.heappop(heap)
        if key_sq >= buffer.worst_distance_squared * shrink_sq:
            break
        if clock is not None and clock.charge():
            # The popped key is the heap minimum: a sound lower bound on
            # every pending node's subtree, hence the frontier.
            frontier_sq = key_sq
            break
        if tracker is not None:
            tracker.access(node.node_id, node.is_leaf)
        stats.record_node(node.is_leaf)
        if trace is not None:
            trace.enter(
                root_level - node.level, node.node_id, node.is_leaf, key_sq
            )
        if node.is_leaf:
            depth = root_level - node.level
            for entry in node.entries:
                if object_distance_sq is not None:
                    dist_sq = object_distance_sq(query, entry.payload, entry.rect)
                else:
                    dist_sq = _mindist_sq_unchecked(query, entry.rect)
                stats.objects_examined += 1
                accepted = buffer.offer(dist_sq, entry.payload, entry.rect)
                if accepted and trace is not None:
                    trace.accept(depth, dist_sq)
            continue
        for entry in node.entries:
            md_sq = _mindist_sq_unchecked(query, entry.rect)
            stats.branch_entries_considered += 1
            if md_sq < buffer.worst_distance_squared * shrink_sq:
                counter += 1
                heapq.heappush(heap, (md_sq, counter, entry.child))
            else:
                stats.pruning.p3_pruned += 1
                if trace is not None:
                    trace.prune(
                        "p3",
                        root_level - entry.child.level,
                        entry.child.node_id,
                        md_sq,
                        buffer.worst_distance_squared * shrink_sq,
                    )
    if clock is not None and clock.reason:
        finish_truncated(stats, budget, clock.reason, frontier_sq)
    return buffer.to_sorted_list(), stats


def nearest_incremental(
    tree: RTree,
    point: Sequence[float],
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    stats: Optional[SearchStats] = None,
    trace: Optional["Trace"] = None,
    budget: Optional[Budget] = None,
) -> Iterator[Neighbor]:
    """Yield every indexed object in increasing distance from *point*.

    This is Hjaltason & Samet's *distance browsing*: callers stop consuming
    whenever they have enough, and only the work needed so far is done.
    Pass a :class:`SearchStats` via *stats* to observe page accesses.

    The queue holds both nodes (keyed by MINDIST, a lower bound for their
    content) and objects (keyed by actual distance); an object can be
    yielded exactly when it reaches the front, because nothing still queued
    can be closer.

    A *budget* is charged once per node expansion (object pops are free —
    their work was already paid for).  In ``"truncate"`` mode the stream
    simply ends early, with the caller's *stats* flagged ``truncated``
    and ``frontier_sq`` set to the refused heap key; every neighbor
    already yielded is exact, since it reached the heap front.  In
    ``"raise"`` mode, :class:`~repro.errors.DeadlineExceeded` raises out
    of the generator.
    """
    query = as_point(point)
    if stats is None:
        stats = SearchStats()
    if len(tree) == 0:
        return
    if tree.dimension != len(query):
        raise DimensionMismatchError(tree.dimension, len(query), "query point")

    clock = budget.start() if budget is not None else None
    root_level = tree.root.level
    counter = 0
    # Heap items: (key_sq, tiebreak, is_object, node_or_neighbor)
    heap: List[tuple] = [(0.0, counter, False, tree.root)]
    while heap:
        key_sq, _, is_object, item = heapq.heappop(heap)
        if is_object:
            if trace is not None:
                trace.accept(root_level, item.distance_squared)
            yield item
            continue
        node = item
        if clock is not None and clock.charge():
            finish_truncated(stats, budget, clock.reason, key_sq)
            return
        if tracker is not None:
            tracker.access(node.node_id, node.is_leaf)
        stats.record_node(node.is_leaf)
        if trace is not None:
            trace.enter(
                root_level - node.level, node.node_id, node.is_leaf, key_sq
            )
        if node.is_leaf:
            for entry in node.entries:
                if object_distance_sq is not None:
                    dist_sq = object_distance_sq(query, entry.payload, entry.rect)
                else:
                    dist_sq = _mindist_sq_unchecked(query, entry.rect)
                stats.objects_examined += 1
                counter += 1
                neighbor = Neighbor(
                    entry.payload, entry.rect, dist_sq ** 0.5, dist_sq
                )
                heapq.heappush(heap, (dist_sq, counter, True, neighbor))
        else:
            for entry in node.entries:
                md_sq = _mindist_sq_unchecked(query, entry.rect)
                stats.branch_entries_considered += 1
                counter += 1
                heapq.heappush(heap, (md_sq, counter, False, entry.child))
