"""The paper's three pruning strategies (Section 4).

During the branch-and-bound traversal the search holds an Active Branch List
(ABL) of candidate child MBRs.  Three prunes shrink it:

**P1 (downward prune).** An MBR ``M`` with ``MINDIST(P, M)`` greater than the
``MINMAXDIST(P, M')`` of a sibling ``M'`` cannot contain the nearest
neighbor, because ``M'`` is *guaranteed* to contain some object at least
that close.

**P2 (object prune).** A candidate object ``o`` with ``dist(P, o)`` greater
than ``MINMAXDIST(P, M)`` of some MBR ``M`` is discarded — ``M`` certainly
contains something closer.  Operationally this means the MINMAXDIST of every
visited MBR acts as an upper bound on the final answer, so we fold the
smallest MINMAXDIST seen so far into the pruning bound.

**P3 (upward prune).** An MBR with ``MINDIST(P, M)`` greater than the
distance to the current nearest object (k-th nearest for k > 1) is
discarded.  This is the workhorse prune applied as recursive calls return.

Soundness for ``k > 1``: MINMAXDIST guarantees only *one* object inside the
MBR, so P1 and P2 would be unsound for k > 1 and are automatically disabled
there (the paper's Section 5 makes the same observation).  :class:`PruningConfig`
lets experiments toggle each strategy for the ablation study (E5); disabling
all three degrades the search to an exhaustive traversal, which is still
correct — just slow — and the tests exploit that as an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PruningConfig", "PruningStats"]


@dataclass(frozen=True)
class PruningConfig:
    """Which of the paper's strategies the DFS search applies.

    The defaults enable everything that is sound for the requested ``k``.
    """

    use_p1: bool = True
    use_p2: bool = True
    use_p3: bool = True

    @classmethod
    def all(cls) -> "PruningConfig":
        """Every strategy enabled (the paper's configuration)."""
        return cls(True, True, True)

    @classmethod
    def none(cls) -> "PruningConfig":
        """No pruning: exhaustive traversal (test/ablation baseline)."""
        return cls(False, False, False)

    @classmethod
    def only_p3(cls) -> "PruningConfig":
        """Just the upward prune — what best-first search implicitly uses."""
        return cls(False, False, True)

    def effective_for_k(self, k: int) -> "PruningConfig":
        """Drop the MINMAXDIST-based strategies when they would be unsound.

        MINMAXDIST certifies one object per MBR, so P1/P2 only apply to
        ``k == 1`` queries.
        """
        if k == 1:
            return self
        if not (self.use_p1 or self.use_p2):
            return self
        return PruningConfig(False, False, self.use_p3)


@dataclass
class PruningStats:
    """How many ABL branches each strategy discarded during one query."""

    p1_pruned: int = 0
    p2_bound_updates: int = 0
    p3_pruned: int = 0

    @property
    def total(self) -> int:
        """Branches discarded outright (P1 + P3; P2 tightens the bound)."""
        return self.p1_pruned + self.p3_pruned

    def merge(self, other: "PruningStats") -> "PruningStats":
        """Accumulate *other* into this instance and return it."""
        self.p1_pruned += other.p1_pruned
        self.p2_bound_updates += other.p2_bound_updates
        self.p3_pruned += other.p3_pruned
        return self

    def as_dict(self) -> Dict[str, int]:
        """Flat counter dict (the metrics registry's export protocol)."""
        return {
            "p1_pruned": self.p1_pruned,
            "p2_bound_updates": self.p2_bound_updates,
            "p3_pruned": self.p3_pruned,
        }
