"""Farthest-neighbor queries: the mirror image of the paper's search.

Where nearest-neighbor search prunes with MINDIST (a lower bound on every
enclosed object), farthest-neighbor search prunes with MAXDIST (an upper
bound): a subtree is worth visiting only if its MAXDIST exceeds the k-th
farthest candidate found so far.  The traversal is best-first on
*descending* MAXDIST.

For point data the result is exact.  For extended objects the default
distance (MAXDIST to the object's MBR) upper-bounds the true farthest
point of the object; pass ``object_distance_sq`` returning the exact
squared farthest distance for exact results.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

from repro.core.knn_dfs import ObjectDistance
from repro.core.metrics import maxdist_squared
from repro.core.neighbors import Neighbor
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import as_point
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = ["farthest_best_first"]


class _FarthestBuffer:
    """Bounded min-heap of the k farthest candidates seen so far."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: List[tuple] = []
        self._counter = 0

    @property
    def worst_distance_squared(self) -> float:
        """Squared distance of the k-th farthest candidate (-inf if not full)."""
        if len(self._heap) < self.k:
            return -math.inf
        return self._heap[0][0]

    def offer(self, distance_squared: float, payload, rect) -> bool:
        if distance_squared <= self.worst_distance_squared:
            return False
        self._counter += 1
        item = (distance_squared, self._counter, payload, rect)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, item)
        else:
            heapq.heapreplace(self._heap, item)
        return True

    def to_sorted_list(self) -> List[Neighbor]:
        """All buffered candidates, farthest first."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [
            Neighbor(payload, rect, math.sqrt(d_sq), d_sq)
            for d_sq, _, payload, rect in ordered
        ]


def farthest_best_first(
    tree: RTree,
    point: Sequence[float],
    k: int = 1,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
) -> Tuple[List[Neighbor], SearchStats]:
    """Find the *k* objects in *tree* farthest from *point*.

    Returns ``(neighbors, stats)`` with neighbors sorted farthest first.
    """
    query = as_point(point)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    stats = SearchStats()
    if len(tree) == 0:
        return [], stats
    if tree.dimension != len(query):
        raise DimensionMismatchError(tree.dimension, len(query), "query point")

    buffer = _FarthestBuffer(k)
    counter = 0
    # Max-heap on MAXDIST via negated keys.
    heap: List[tuple] = [(-maxdist_squared(query, tree.root.mbr()), counter, tree.root)]
    while heap:
        neg_key_sq, _, node = heapq.heappop(heap)
        if -neg_key_sq <= buffer.worst_distance_squared:
            break
        if tracker is not None:
            tracker.access(node.node_id, node.is_leaf)
        stats.record_node(node.is_leaf)
        if node.is_leaf:
            for entry in node.entries:
                if object_distance_sq is not None:
                    dist_sq = object_distance_sq(query, entry.payload, entry.rect)
                else:
                    dist_sq = maxdist_squared(query, entry.rect)
                stats.objects_examined += 1
                buffer.offer(dist_sq, entry.payload, entry.rect)
            continue
        for entry in node.entries:
            xd_sq = maxdist_squared(query, entry.rect)
            stats.branch_entries_considered += 1
            if xd_sq > buffer.worst_distance_squared:
                counter += 1
                heapq.heappush(heap, (-xd_sq, counter, entry.child))
            else:
                stats.pruning.p3_pruned += 1
    return buffer.to_sorted_list(), stats
