"""Batched nearest-neighbor queries with shared caching.

The POI-session pattern — many queries against one index, sharing a buffer
pool so the tree's upper levels are read once — packaged as an API instead
of a loop the caller writes.

Since the serving layer landed, :func:`nearest_batch` is a thin veneer
over :class:`repro.service.QueryEngine`.  Execution knobs route through
one shared :class:`~repro.service.options.EngineOptions` bundle — the
same dataclass every engine constructor takes — whose
:meth:`~repro.service.options.EngineOptions.batch_defaults` profile
(``workers=1``, result cache off, 64-page shared buffer) reproduces the
historical sequential semantics and page accounting exactly.  Pass
``options=EngineOptions(workers=4, cache_size=4096)`` (or the matching
legacy keywords) to opt a call site into the engine's concurrency and
result reuse without changing the return contract.

With ``packed=True`` (``EngineOptions(packed=True)`` or the legacy
keyword) and a single worker, best-first windows additionally route
through the multi-query batch kernel (:mod:`repro.packed.batch`): one
shared slab traversal answers the whole window, with results and
statistics still bit-identical to the sequential loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.config import QueryConfig, warn_legacy_query_kwargs
from repro.core.knn_dfs import ObjectDistance
from repro.core.pruning import PruningConfig
from repro.core.query import NNResult, resolve_config
from repro.core.stats import SearchStats
from repro.errors import InvalidParameterError
from repro.rtree.tree import RTree

if TYPE_CHECKING:  # a runtime import would cycle through repro.service
    from repro.service.options import EngineOptions

__all__ = ["nearest_batch"]


def nearest_batch(
    tree: RTree,
    points: Sequence[Sequence[float]],
    k: Optional[int] = None,
    algorithm: Optional[str] = None,
    ordering: Optional[str] = None,
    pruning: Optional[PruningConfig] = None,
    buffer_pages: Optional[int] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: Optional[float] = None,
    config: Optional[QueryConfig] = None,
    workers: Optional[int] = None,
    cache_size: Optional[int] = None,
    packed: Optional[bool] = None,
    options: Optional["EngineOptions"] = None,
) -> Tuple[List[NNResult], SearchStats, float]:
    """Run one k-NN query per point through a shared LRU buffer.

    Args:
        tree: The index.
        points: Query points, answered in order.
        config: A :class:`~repro.core.config.QueryConfig` describing how
            each query runs; explicit keyword arguments override its
            fields.
        options: An :class:`~repro.service.options.EngineOptions`
            describing how the batch *executes* (workers, cache,
            buffering, packed routing).  Defaults to
            :meth:`~repro.service.options.EngineOptions.batch_defaults`
            — sequential, uncached, 64-page shared buffer: one search
            per point, the legacy accounting.
        workers / cache_size / buffer_pages / packed: Legacy spellings of
            the matching *options* fields; override them when passed.
        algorithm / ordering / pruning / object_distance_sq / epsilon:
            **Deprecated** legacy spellings of the matching
            :class:`QueryConfig` fields; each use warns (docs/API.md,
            'Migrating to QueryConfig').

    Returns:
        ``(results, combined_stats, disk_reads_per_query)`` — one
        :class:`NNResult` per point, the merged logical statistics, and
        the average *physical* reads per query after buffering.
    """
    from repro.service.engine import QueryEngine
    from repro.service.options import EngineOptions

    if not points:
        raise InvalidParameterError("points must be non-empty")
    warn_legacy_query_kwargs(
        "nearest_batch()",
        algorithm=algorithm,
        ordering=ordering,
        pruning=pruning,
        object_distance_sq=object_distance_sq,
        epsilon=epsilon,
    )
    cfg = resolve_config(
        config,
        k=k,
        algorithm=algorithm,
        ordering=ordering,
        pruning=pruning,
        object_distance_sq=object_distance_sq,
        epsilon=epsilon,
    )
    opts = (
        options if options is not None else EngineOptions.batch_defaults()
    ).merged(
        workers=workers,
        cache_size=cache_size,
        buffer_pages=buffer_pages,
        packed=packed,
    )
    with QueryEngine(tree, config=cfg, options=opts) as engine:
        results = engine.query_batch(points)
        physical_reads = engine.tracker.physical_reads()
    combined = SearchStats()
    for result in results:
        combined.merge(result.stats)
    disk_reads_per_query = physical_reads / float(len(points))
    return results, combined, disk_reads_per_query
