"""Batched nearest-neighbor queries with shared caching.

The POI-session pattern — many queries against one index, sharing a buffer
pool so the tree's upper levels are read once — packaged as an API instead
of a loop the caller writes.

Since the serving layer landed, :func:`nearest_batch` is a thin veneer
over :class:`repro.service.QueryEngine`: the default configuration
(``workers=1``, result cache off) reproduces the historical sequential
semantics and page accounting exactly, while ``workers=4`` or
``cache_size=4096`` opt a call site into the engine's concurrency and
result reuse without changing the return contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import QueryConfig
from repro.core.knn_dfs import ObjectDistance
from repro.core.pruning import PruningConfig
from repro.core.query import NNResult, resolve_config
from repro.core.stats import SearchStats
from repro.errors import InvalidParameterError
from repro.rtree.tree import RTree

__all__ = ["nearest_batch"]


def nearest_batch(
    tree: RTree,
    points: Sequence[Sequence[float]],
    k: Optional[int] = None,
    algorithm: Optional[str] = None,
    ordering: Optional[str] = None,
    pruning: Optional[PruningConfig] = None,
    buffer_pages: int = 64,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: Optional[float] = None,
    config: Optional[QueryConfig] = None,
    workers: int = 1,
    cache_size: int = 0,
    packed: bool = False,
) -> Tuple[List[NNResult], SearchStats, float]:
    """Run one k-NN query per point through a shared LRU buffer.

    Args:
        tree: The index.
        points: Query points, answered in order.
        buffer_pages: LRU page-buffer capacity (0 disables buffering).
            With one worker the buffer is shared by the whole batch; with
            several, each worker owns a private pool of this size.
        config: A :class:`~repro.core.config.QueryConfig`; explicit
            keyword arguments override its fields.
        workers: Worker threads (default 1 = sequential).
        cache_size: Result-cache capacity (default 0 = off, preserving
            one search per point).
        packed: Route the batch through the tree's
            :class:`~repro.packed.PackedTree` compile (identical results
            and stats, ~3x lower latency; see :mod:`repro.packed`).
            Queries carrying ``object_distance_sq`` fall back to the
            object kernels automatically.
        (Remaining arguments as in :func:`repro.core.query.nearest`.)

    Returns:
        ``(results, combined_stats, disk_reads_per_query)`` — one
        :class:`NNResult` per point, the merged logical statistics, and
        the average *physical* reads per query after buffering.
    """
    from repro.service.engine import QueryEngine

    if not points:
        raise InvalidParameterError("points must be non-empty")
    if buffer_pages < 0:
        raise InvalidParameterError(
            f"buffer_pages must be >= 0, got {buffer_pages}"
        )
    cfg = resolve_config(
        config,
        k=k,
        algorithm=algorithm,
        ordering=ordering,
        pruning=pruning,
        object_distance_sq=object_distance_sq,
        epsilon=epsilon,
    )
    with QueryEngine(
        tree,
        config=cfg,
        workers=workers,
        cache_size=cache_size,
        buffer_pages=buffer_pages,
        packed=packed,
    ) as engine:
        results = engine.query_batch(points)
        physical_reads = engine.tracker.physical_reads()
    combined = SearchStats()
    for result in results:
        combined.merge(result.stats)
    disk_reads_per_query = physical_reads / float(len(points))
    return results, combined, disk_reads_per_query
