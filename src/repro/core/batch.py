"""Batched nearest-neighbor queries with shared caching.

The POI-session pattern — many queries against one index, sharing a buffer
pool so the tree's upper levels are read once — packaged as an API instead
of a loop the caller writes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.knn_dfs import ObjectDistance
from repro.core.pruning import PruningConfig
from repro.core.query import NNResult, nearest
from repro.core.stats import SearchStats
from repro.errors import InvalidParameterError
from repro.rtree.tree import RTree
from repro.storage.buffer import LruBufferPool

__all__ = ["nearest_batch"]


def nearest_batch(
    tree: RTree,
    points: Sequence[Sequence[float]],
    k: int = 1,
    algorithm: str = "dfs",
    ordering: str = "mindist",
    pruning: Optional[PruningConfig] = None,
    buffer_pages: int = 64,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: float = 0.0,
) -> Tuple[List[NNResult], SearchStats, float]:
    """Run one k-NN query per point through a shared LRU buffer.

    Args:
        tree: The index.
        points: Query points, answered in order.
        buffer_pages: Shared LRU capacity (0 disables buffering).
        (Remaining arguments as in :func:`repro.core.query.nearest`.)

    Returns:
        ``(results, combined_stats, disk_reads_per_query)`` — one
        :class:`NNResult` per point, the merged logical statistics, and
        the average *physical* reads per query after buffering.
    """
    if not points:
        raise InvalidParameterError("points must be non-empty")
    if buffer_pages < 0:
        raise InvalidParameterError(
            f"buffer_pages must be >= 0, got {buffer_pages}"
        )
    pool = LruBufferPool(buffer_pages)
    combined = SearchStats()
    results: List[NNResult] = []
    for point in points:
        result = nearest(
            tree,
            point,
            k=k,
            algorithm=algorithm,
            ordering=ordering,
            pruning=pruning,
            tracker=pool,
            object_distance_sq=object_distance_sq,
            epsilon=epsilon,
        )
        combined.merge(result.stats)
        results.append(result)
    disk_reads_per_query = pool.inner.stats.total / float(len(points))
    return results, combined, disk_reads_per_query
