"""Result types and the bounded nearest-neighbor candidate buffer.

The paper's search "maintains a sorted buffer of at most k current nearest
neighbors" (Section 5).  :class:`NeighborBuffer` implements it as a bounded
max-heap keyed by squared distance, so the k-th (worst) candidate — the
pruning bound — is always available in O(1).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect

__all__ = ["Neighbor", "NeighborBuffer"]


@dataclass(frozen=True)
class Neighbor:
    """One returned neighbor: the payload, its MBR and its distance."""

    payload: Any
    rect: Rect
    distance: float
    distance_squared: float

    def __lt__(self, other: "Neighbor") -> bool:
        return self.distance_squared < other.distance_squared


class NeighborBuffer:
    """Bounded max-heap of the k best candidates seen so far.

    ``worst_distance_squared`` is the pruning bound: infinity while fewer
    than k candidates are buffered, else the k-th smallest distance seen.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        self.k = k
        # Max-heap via negated keys; the tiebreak counter keeps heap entries
        # orderable even when payloads are not comparable.
        self._heap: List[tuple] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """True once k candidates are buffered."""
        return len(self._heap) >= self.k

    @property
    def worst_distance_squared(self) -> float:
        """Squared distance of the k-th best candidate (inf if not full)."""
        if len(self._heap) < self.k:
            return math.inf
        return -self._heap[0][0]

    def offer(self, distance_squared: float, payload: Any, rect: Rect) -> bool:
        """Consider a candidate; returns True if it entered the buffer."""
        if distance_squared >= self.worst_distance_squared:
            return False
        self._counter += 1
        item = (-distance_squared, self._counter, payload, rect)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, item)
        else:
            heapq.heapreplace(self._heap, item)
        return True

    def peek_worst(self) -> Optional[Neighbor]:
        """The current k-th best candidate, or ``None`` if empty."""
        if not self._heap:
            return None
        neg_d, _, payload, rect = self._heap[0]
        return Neighbor(payload, rect, math.sqrt(-neg_d), -neg_d)

    def to_sorted_list(self) -> List[Neighbor]:
        """All buffered candidates, nearest first."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [
            Neighbor(payload, rect, math.sqrt(-neg_d), -neg_d)
            for neg_d, _, payload, rect in ordered
        ]
