"""Distance-range queries: everything within *radius* of a point.

A natural companion to k-NN in any spatial database ("all cafes within
500 m").  The traversal is the k-NN search with a *fixed* bound: descend
into a subtree only if its MINDIST is within the radius.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.knn_dfs import ObjectDistance
from repro.core.metrics import mindist_squared
from repro.core.neighbors import Neighbor
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import as_point
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = ["within_distance", "count_within_distance"]


def within_distance(
    tree: RTree,
    point: Sequence[float],
    radius: float,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    stats: Optional[SearchStats] = None,
) -> List[Neighbor]:
    """All objects within *radius* of *point*, sorted nearest first.

    Objects exactly at *radius* are included.  Pass a
    :class:`SearchStats` via *stats* to observe page accesses.
    """
    query = as_point(point)
    if radius < 0.0:
        raise InvalidParameterError(f"radius must be >= 0, got {radius}")
    if stats is None:
        stats = SearchStats()
    if len(tree) == 0:
        return []
    if tree.dimension != len(query):
        raise DimensionMismatchError(tree.dimension, len(query), "query point")

    radius_sq = radius * radius
    results: List[Neighbor] = []
    _collect(
        tree.root, query, radius_sq, results, tracker, object_distance_sq,
        stats,
    )
    results.sort(key=lambda n: n.distance_squared)
    return results


def count_within_distance(
    tree: RTree,
    point: Sequence[float],
    radius: float,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
) -> int:
    """Number of objects within *radius* of *point*."""
    return len(
        within_distance(
            tree, point, radius, tracker=tracker,
            object_distance_sq=object_distance_sq,
        )
    )


def _collect(
    node: Node,
    query,
    radius_sq: float,
    results: List[Neighbor],
    tracker: Optional[AccessTracker],
    object_distance_sq: Optional[ObjectDistance],
    stats: SearchStats,
) -> None:
    if tracker is not None:
        tracker.access(node.node_id, node.is_leaf)
    stats.record_node(node.is_leaf)
    if node.is_leaf:
        for entry in node.entries:
            if object_distance_sq is not None:
                dist_sq = object_distance_sq(query, entry.payload, entry.rect)
            else:
                dist_sq = mindist_squared(query, entry.rect)
            stats.objects_examined += 1
            if dist_sq <= radius_sq:
                results.append(
                    Neighbor(entry.payload, entry.rect, dist_sq ** 0.5, dist_sq)
                )
        return
    for entry in node.entries:
        stats.branch_entries_considered += 1
        if mindist_squared(query, entry.rect) <= radius_sq:
            _collect(
                entry.child, query, radius_sq, results, tracker,
                object_distance_sq, stats,
            )
        else:
            stats.pruning.p3_pruned += 1
