"""Spatial joins on R-trees.

Two classic operators built on the same index machinery as the NN search:

- :func:`intersection_join` — all pairs ``(a, b)`` with intersecting MBRs,
  via the synchronized tree descent of Brinkhoff et al. (SIGMOD 1993).
- :func:`knn_join` — for every object of the outer tree, its k nearest
  objects in the inner tree, reusing the paper's branch-and-bound search
  per outer object.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.core.knn_dfs import ObjectDistance, nearest_dfs
from repro.core.neighbors import Neighbor
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.rect import Rect
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = ["intersection_join", "knn_join"]


def intersection_join(
    left: RTree,
    right: RTree,
    tracker: Optional[AccessTracker] = None,
) -> Iterator[Tuple[Tuple[Rect, Any], Tuple[Rect, Any]]]:
    """Yield every pair of objects whose MBRs intersect.

    Synchronized descent: a pair of nodes is expanded only if their MBRs
    intersect, so disjoint subtrees are never compared.  Each yielded pair
    is ``((left_rect, left_payload), (right_rect, right_payload))``.

    Joining a tree with itself yields both orientations of each distinct
    pair as well as every self-pair ``(a, a)``; callers wanting unordered
    distinct pairs can filter on a payload ordering.
    """
    if len(left) == 0 or len(right) == 0:
        return
    if left.dimension != right.dimension:
        raise DimensionMismatchError(
            left.dimension, right.dimension, "join operands"
        )
    yield from _join_nodes(left.root, right.root, tracker)


def _join_nodes(
    a: Node,
    b: Node,
    tracker: Optional[AccessTracker],
) -> Iterator[Tuple[Tuple[Rect, Any], Tuple[Rect, Any]]]:
    if tracker is not None:
        tracker.access(a.node_id, a.is_leaf)
        tracker.access(b.node_id, b.is_leaf)
    if a.is_leaf and b.is_leaf:
        for ea in a.entries:
            for eb in b.entries:
                if ea.rect.intersects(eb.rect):
                    yield (ea.rect, ea.payload), (eb.rect, eb.payload)
        return
    # Descend the deeper (higher-level) side so the traversals stay
    # level-matched; argument order — and thus result orientation — is
    # preserved by recursing with the descended child in the same slot.
    if not a.is_leaf and (b.is_leaf or a.level >= b.level):
        b_mbr = b.mbr()
        for ea in a.entries:
            if ea.rect.intersects(b_mbr):
                yield from _join_nodes(ea.child, b, tracker)
    else:
        a_mbr = a.mbr()
        for eb in b.entries:
            if eb.rect.intersects(a_mbr):
                yield from _join_nodes(a, eb.child, tracker)


def knn_join(
    outer: RTree,
    inner: RTree,
    k: int = 1,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
) -> Tuple[List[Tuple[Any, List[Neighbor]]], SearchStats]:
    """For each object in *outer*, find its k nearest objects in *inner*.

    Outer objects are visited in leaf order, so consecutive searches start
    from nearby locations — pair this with a buffer-pool *tracker* to get
    the locality benefit the paper's buffering experiment demonstrates.
    Distances are measured from each outer object's MBR *center*.

    Returns ``(results, stats)``: a list of ``(outer_payload, neighbors)``
    and the accumulated search statistics over all inner searches.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    totals = SearchStats()
    if len(outer) == 0 or len(inner) == 0:
        return [], totals
    if outer.dimension != inner.dimension:
        raise DimensionMismatchError(
            outer.dimension, inner.dimension, "join operands"
        )
    results = []
    for rect, payload in outer.items():
        neighbors, stats = nearest_dfs(
            inner,
            rect.center,
            k=k,
            tracker=tracker,
            object_distance_sq=object_distance_sq,
        )
        totals.merge(stats)
        results.append((payload, neighbors))
    return results, totals
