"""The paper's primary contribution: branch-and-bound k-NN search on R-trees.

Contents map one-to-one onto the sections of Roussopoulos, Kelley & Vincent
(SIGMOD 1995):

- :mod:`repro.core.metrics` — Section 3: the MINDIST and MINMAXDIST
  point-to-MBR metrics and their bounding theorems (plus MAXDIST for the
  farthest-neighbor extension).
- :mod:`repro.core.pruning` — Section 4: pruning strategies P1, P2, P3.
- :mod:`repro.core.knn_dfs` — Sections 4-5: the ordered depth-first
  branch-and-bound search with its Active Branch List, generalized to k
  neighbors and to (1 + epsilon)-approximate search.
- :mod:`repro.core.knn_best_first` — the later Hjaltason-Samet best-first
  search, included as the I/O-optimal comparison point, plus incremental
  distance browsing.
- :mod:`repro.core.range_query` — within-radius queries.
- :mod:`repro.core.farthest` — farthest-neighbor queries (MAXDIST pruning).
- :mod:`repro.core.aggregate` — group (aggregate) nearest neighbors.
- :mod:`repro.core.query` — the user-facing façade.
"""

from repro.core.metrics_lp import (
    lp_distance,
    mindist_lp,
    minmaxdist_lp,
    nearest_dfs_lp,
)
from repro.core.metrics import (
    maxdist,
    maxdist_squared,
    mindist,
    mindist_squared,
    minmaxdist,
    minmaxdist_squared,
)
from repro.core.config import QueryConfig
from repro.core.neighbors import Neighbor, NeighborBuffer
from repro.core.pruning import PruningConfig, PruningStats
from repro.core.stats import SearchStats
from repro.core.knn_dfs import nearest_dfs
from repro.core.knn_best_first import nearest_best_first, nearest_incremental
from repro.core.range_query import count_within_distance, within_distance
from repro.core.farthest import farthest_best_first
from repro.core.aggregate import aggregate_nearest
from repro.core.batch import nearest_batch
from repro.core.joins import intersection_join, knn_join
from repro.core.query import NearestNeighborQuery, NNResult, nearest

__all__ = [
    "NNResult",
    "NearestNeighborQuery",
    "Neighbor",
    "NeighborBuffer",
    "PruningConfig",
    "PruningStats",
    "QueryConfig",
    "SearchStats",
    "aggregate_nearest",
    "count_within_distance",
    "farthest_best_first",
    "intersection_join",
    "knn_join",
    "lp_distance",
    "mindist_lp",
    "minmaxdist_lp",
    "nearest_dfs_lp",
    "maxdist",
    "maxdist_squared",
    "mindist",
    "mindist_squared",
    "minmaxdist",
    "minmaxdist_squared",
    "nearest",
    "nearest_batch",
    "nearest_best_first",
    "nearest_dfs",
    "nearest_incremental",
    "within_distance",
]
