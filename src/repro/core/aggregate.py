"""Aggregate (group) nearest-neighbor queries.

Given *several* query points — a group of friends choosing a restaurant —
find the k objects minimizing an aggregate of the individual distances:

- ``"sum"``: minimize total travel (the classic group-NN objective),
- ``"max"``: minimize the worst member's travel (fairness objective).

The search is best-first, pruning with the corresponding aggregate of the
per-point MINDISTs, which lower-bounds the aggregate distance of every
object in the subtree (each MINDIST lower-bounds its own term, and both
``sum`` and ``max`` are monotone in their arguments).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.knn_dfs import ObjectDistance
from repro.core.metrics import mindist_squared
from repro.core.neighbors import Neighbor, NeighborBuffer
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import as_point
from repro.geometry.rect import Rect
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = ["aggregate_nearest"]

_AGGREGATES = ("sum", "max")


def aggregate_nearest(
    tree: RTree,
    points: Sequence[Sequence[float]],
    k: int = 1,
    aggregate: str = "sum",
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
) -> Tuple[List[Neighbor], SearchStats]:
    """Find the *k* objects minimizing the aggregate distance to *points*.

    Args:
        tree: The R-tree to search.
        points: One or more query points (the "group").
        k: Number of results.
        aggregate: ``"sum"`` (total distance) or ``"max"`` (worst member).
        tracker: Page-access tracker.
        object_distance_sq: Per-point exact object distance hook; applied
            to each group member individually.

    Returns:
        ``(neighbors, stats)`` sorted by ascending aggregate distance.
        Each result's ``distance`` is the aggregate of the *true* (not
        squared) per-point distances; ``distance_squared`` is its square.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if aggregate not in _AGGREGATES:
        raise InvalidParameterError(
            f"aggregate must be one of {_AGGREGATES}, got {aggregate!r}"
        )
    queries = [as_point(p) for p in points]
    if not queries:
        raise InvalidParameterError("points must be non-empty")
    stats = SearchStats()
    if len(tree) == 0:
        return [], stats
    for q in queries:
        if tree.dimension != len(q):
            raise DimensionMismatchError(tree.dimension, len(q), "group point")

    combine: Callable[[List[float]], float] = sum if aggregate == "sum" else max

    def rect_lower_bound(rect: Rect) -> float:
        """Aggregate of per-point MINDISTs (true distances, not squared)."""
        return combine(
            [math.sqrt(mindist_squared(q, rect)) for q in queries]
        )

    def object_distance(payload, rect: Rect) -> float:
        if object_distance_sq is not None:
            per_point = [
                math.sqrt(object_distance_sq(q, payload, rect)) for q in queries
            ]
        else:
            per_point = [math.sqrt(mindist_squared(q, rect)) for q in queries]
        return combine(per_point)

    # NeighborBuffer is keyed by squared distance; aggregates are compared
    # on their squares, which preserves order for nonnegative values.
    buffer = NeighborBuffer(k)
    counter = 0
    heap: List[tuple] = [(0.0, counter, tree.root)]
    while heap:
        key, _, node = heapq.heappop(heap)
        if key * key >= buffer.worst_distance_squared:
            break
        if tracker is not None:
            tracker.access(node.node_id, node.is_leaf)
        stats.record_node(node.is_leaf)
        if node.is_leaf:
            for entry in node.entries:
                distance = object_distance(entry.payload, entry.rect)
                stats.objects_examined += 1
                buffer.offer(distance * distance, entry.payload, entry.rect)
            continue
        for entry in node.entries:
            bound = rect_lower_bound(entry.rect)
            stats.branch_entries_considered += 1
            if bound * bound < buffer.worst_distance_squared:
                counter += 1
                heapq.heappush(heap, (bound, counter, entry.child))
            else:
                stats.pruning.p3_pruned += 1
    return buffer.to_sorted_list(), stats
