"""Per-query work budgets: deadlines and page limits with cooperative cancellation.

The paper's branch-and-bound search bounds *space* (pruning), not *time*:
degenerate MBR overlap can force a near-full traversal, and a serving
layer cannot let one pathological query hold a worker hostage.
:class:`Budget` bounds the work itself — wall-clock via ``deadline_ms``
and/or traversal size via ``max_pages`` — and the search kernels check it
cooperatively at node-visit granularity, the same unit the paper counts.

A budget is carried on :class:`~repro.core.config.QueryConfig` (so it
participates in cache keying) and armed per run with :meth:`Budget.start`,
which returns a mutable :class:`BudgetClock`.  Kernels call
:meth:`BudgetClock.charge` once per node they are about to visit; the
first refusal makes the clock's ``reason`` sticky and the kernel unwinds,
folding the MINDIST of everything it abandoned into a *frontier bound* —
a sound lower bound on the squared distance of any object the truncated
search never examined.

Exhaustion policy is the budget's ``on_exhausted`` field:

- ``"truncate"`` (default): return the best-so-far neighbors with
  ``stats.truncated = True``, ``stats.truncation_reason`` and
  ``stats.frontier_sq`` set.  The partial answer is a *sound prefix*:
  every returned neighbor closer than the frontier bound is within the
  query's epsilon band of the true answer at that rank.
- ``"raise"``: raise :class:`~repro.errors.DeadlineExceeded` instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DeadlineExceeded, InvalidParameterError

__all__ = ["Budget", "BudgetClock", "finish_truncated"]

#: Valid ``on_exhausted`` policies.
VALID_EXHAUSTION = ("truncate", "raise")


@dataclass(frozen=True)
class Budget:
    """An immutable, hashable bound on the work one query may perform.

    Args:
        deadline_ms: Wall-clock allowance in milliseconds (``> 0``), or
            ``None`` for no time limit.
        max_pages: Maximum node visits (``>= 1``), or ``None`` for no
            page limit.  This is the paper's own cost unit, so a page
            budget is deterministic — the same query truncates at the
            same node on every run and on every backend.
        on_exhausted: ``"truncate"`` (partial result flagged
            ``truncated=True``) or ``"raise"``
            (:class:`~repro.errors.DeadlineExceeded`).

    At least one of ``deadline_ms`` / ``max_pages`` must be set.  Being
    frozen and hashable, a budget participates in
    :meth:`QueryConfig.cache_key`, so a truncated result can never be
    served from cache to a caller with a different (or no) budget.
    """

    deadline_ms: Optional[float] = None
    max_pages: Optional[int] = None
    on_exhausted: str = "truncate"

    def __post_init__(self) -> None:
        if self.deadline_ms is None and self.max_pages is None:
            raise InvalidParameterError(
                "Budget requires at least one limit: deadline_ms or max_pages"
            )
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise InvalidParameterError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if self.max_pages is not None and (
            not isinstance(self.max_pages, int) or self.max_pages < 1
        ):
            raise InvalidParameterError(
                f"max_pages must be an int >= 1, got {self.max_pages!r}"
            )
        if self.on_exhausted not in VALID_EXHAUSTION:
            raise InvalidParameterError(
                f"on_exhausted must be one of {VALID_EXHAUSTION}, "
                f"got {self.on_exhausted!r}"
            )

    def start(self, clock: Callable[[], float] = time.monotonic) -> "BudgetClock":
        """Arm the budget for one query run.

        ``clock`` is injectable (tests pass a fake monotonic clock); the
        deadline is resolved to an absolute instant here so the queue
        wait of a served request does not eat into sibling requests.
        """
        return BudgetClock(self, clock)

    def describe(self) -> str:
        """Compact rendering for config one-liners and slow-query logs."""
        parts = []
        if self.deadline_ms is not None:
            parts.append(f"{self.deadline_ms:g}ms")
        if self.max_pages is not None:
            parts.append(f"{self.max_pages}pg")
        if self.on_exhausted != "truncate":
            parts.append(self.on_exhausted)
        return "budget[" + ",".join(parts) + "]"


class BudgetClock:
    """The mutable per-run state of an armed :class:`Budget`.

    One clock serves one query execution.  Kernels call :meth:`charge`
    immediately before each node visit; the deadline is checked *before*
    a page is spent, so a query that arrives already past its deadline
    performs zero visits.  The first refusal is sticky: ``reason`` stays
    set and every later ``charge`` refuses for the same reason, which
    lets recursive kernels notice exhaustion at every unwinding level
    without threading a flag through their call chain.
    """

    __slots__ = ("budget", "deadline_at", "pages_left", "reason", "_clock")

    def __init__(
        self, budget: Budget, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.budget = budget
        self._clock = clock
        self.deadline_at = (
            None
            if budget.deadline_ms is None
            else clock() + budget.deadline_ms / 1000.0
        )
        self.pages_left = budget.max_pages
        self.reason = ""

    def charge(self) -> str:
        """Request permission for one node visit.

        Returns ``""`` to proceed (and spends one page if the budget has
        a page limit), else the refusal reason — ``"deadline"`` or
        ``"pages"``.
        """
        if self.reason:
            return self.reason
        if self.deadline_at is not None and self._clock() >= self.deadline_at:
            self.reason = "deadline"
            return self.reason
        if self.pages_left is not None:
            if self.pages_left <= 0:
                self.reason = "pages"
                return self.reason
            self.pages_left -= 1
        return ""

    def __repr__(self) -> str:
        state = self.reason or "ok"
        return f"BudgetClock({self.budget.describe()}, {state})"


def finish_truncated(stats, budget: Budget, reason: str, frontier_sq: float):
    """Apply a budget's exhaustion policy at the end of a truncated run.

    In ``"truncate"`` mode, flags *stats* and returns; in ``"raise"``
    mode, raises :class:`~repro.errors.DeadlineExceeded` carrying the
    reason and the frontier bound.  Shared by the object and packed
    kernels so both surfaces behave identically.
    """
    if budget.on_exhausted == "raise":
        raise DeadlineExceeded(
            f"query exhausted its {budget.describe()} ({reason})",
            reason=reason,
            frontier_sq=frontier_sq,
        )
    stats.truncated = True
    stats.truncation_reason = reason
    stats.frontier_sq = frontier_sq
