"""MINDIST and MINMAXDIST: the paper's point-to-MBR metrics (Section 3).

Given a query point ``P`` and a minimum bounding rectangle ``M``:

``MINDIST(P, M)``
    The distance from ``P`` to the closest point of ``M`` (zero when ``P``
    is inside ``M``).  It is an *optimistic* lower bound: no object enclosed
    by ``M`` can be closer than ``MINDIST`` (paper Theorem 1).

``MINMAXDIST(P, M)``
    The minimum over the faces of ``M`` of the maximum distance from ``P``
    to that face.  Because an MBR is *minimum*, every one of its faces is
    touched by at least one enclosed object, so ``M`` is guaranteed to
    contain an object no farther than ``MINMAXDIST`` — a *pessimistic* but
    safe upper bound on the nearest-object distance (paper Theorem 2).

For the nearest object ``o`` inside ``M``::

    MINDIST(P, M) <= dist(P, o) <= MINMAXDIST(P, M)

Both metrics are computed in squared form (no square roots) exactly as the
paper recommends; the un-squared convenience wrappers take one ``sqrt`` at
the end.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import DimensionMismatchError
from repro.geometry.rect import Rect

__all__ = [
    "mindist_squared",
    "mindist",
    "minmaxdist_squared",
    "minmaxdist",
    "maxdist_squared",
    "maxdist",
]


def _check_dims(point: Sequence[float], rect: Rect, context: str) -> None:
    if len(point) != rect.dimension:
        raise DimensionMismatchError(rect.dimension, len(point), context)


def mindist_squared(point: Sequence[float], rect: Rect) -> float:
    """Squared MINDIST: squared distance from *point* to the nearest point
    of *rect* (0 if the point is inside).

    Per axis, the contribution is the squared shortfall below ``lo`` or
    excess above ``hi``; inside the slab the contribution is zero.
    """
    _check_dims(point, rect, "mindist")
    return _mindist_sq_unchecked(point, rect)


def _mindist_sq_unchecked(point: Sequence[float], rect: Rect) -> float:
    """Squared MINDIST without the dimension check.

    The traversal hot loops (:func:`repro.core.knn_dfs.nearest_dfs` and
    friends) validate the query point against the tree dimension once and
    then call this per entry; every rect inside one tree shares that
    dimension by construction.
    """
    lo = rect.lo
    hi = rect.hi
    total = 0.0
    for i in range(len(lo)):
        p = point[i]
        a = lo[i]
        if p < a:
            d = a - p
            total += d * d
        else:
            b = hi[i]
            if p > b:
                d = p - b
                total += d * d
    return total


def mindist(point: Sequence[float], rect: Rect) -> float:
    """MINDIST (Euclidean, not squared)."""
    return math.sqrt(mindist_squared(point, rect))


def minmaxdist_squared(point: Sequence[float], rect: Rect) -> float:
    """Squared MINMAXDIST, following the paper's closed form.

    For each axis ``k``, consider the *nearer* face of *rect* orthogonal to
    ``k``.  The farthest point of that face from the query is at the *far*
    corner on every other axis.  MINMAXDIST is the minimum over ``k`` of the
    distance to that farthest face point::

        MINMAXDIST^2(P, M) = min_k ( |p_k - rm_k|^2 + sum_{i != k} |p_i - rM_i|^2 )

    where ``rm_k`` is the bound of axis ``k`` nearer to ``p_k`` and ``rM_i``
    the bound of axis ``i`` farther from ``p_i``.
    """
    _check_dims(point, rect, "minmaxdist")
    return _minmaxdist_sq_unchecked(point, rect)


def _minmaxdist_sq_unchecked(point: Sequence[float], rect: Rect) -> float:
    """Squared MINMAXDIST without the dimension check (see
    :func:`_mindist_sq_unchecked` for the contract)."""
    lo_b = rect.lo
    hi_b = rect.hi
    dim = len(lo_b)

    # Per-axis squared distance to the *near* bound (rm) and the *far*
    # bound (rM).  Each axis k contributes the candidate
    # near[k] + sum_{i != k} far[i].
    near_terms = []
    far_terms = []
    for i in range(dim):
        p = point[i]
        lo = lo_b[i]
        hi = hi_b[i]
        mid = (lo + hi) / 2.0
        near_bound = lo if p <= mid else hi
        far_bound = lo if p >= mid else hi
        d = p - near_bound
        near_terms.append(d * d)
        d = p - far_bound
        far_terms.append(d * d)

    # Each candidate is summed directly in axis order rather than via the
    # O(d) shared-sum trick (far_sum - far[k] + near[k]): the subtraction
    # cancels catastrophically and can round the result a few ulps *below*
    # the true MINMAXDIST, which breaks the pruning guarantee on exact
    # distance ties.  Direct summation mirrors mindist's term order, so the
    # two metrics agree bit-for-bit in the touching-face cases the search
    # relies on.  d is tiny for spatial data, so O(d^2) is irrelevant.
    best = math.inf
    for k in range(dim):
        candidate = 0.0
        for i in range(dim):
            candidate += near_terms[i] if i == k else far_terms[i]
        if candidate < best:
            best = candidate
    return best


def minmaxdist(point: Sequence[float], rect: Rect) -> float:
    """MINMAXDIST (Euclidean, not squared)."""
    return math.sqrt(minmaxdist_squared(point, rect))


def maxdist_squared(point: Sequence[float], rect: Rect) -> float:
    """Squared MAXDIST: squared distance to the *farthest* point of *rect*.

    Per axis the farthest rectangle point sits at the bound farther from
    the query.  MAXDIST upper-bounds the distance to every object enclosed
    by the rectangle, which makes it the pruning metric for
    *farthest*-neighbor queries (see :mod:`repro.core.farthest`) — the
    mirror image of MINDIST's role in nearest-neighbor search.
    """
    _check_dims(point, rect, "maxdist")
    lo_b = rect.lo
    hi_b = rect.hi
    total = 0.0
    for i in range(len(lo_b)):
        p = point[i]
        d_lo = p - lo_b[i]
        d_hi = hi_b[i] - p
        d = d_lo if d_lo >= d_hi else d_hi
        total += d * d
    return total


def maxdist(point: Sequence[float], rect: Rect) -> float:
    """MAXDIST (Euclidean, not squared)."""
    return math.sqrt(maxdist_squared(point, rect))
