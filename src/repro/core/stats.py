"""Per-query search statistics.

The paper's evaluation is phrased almost entirely in these counters (pages
accessed, nodes pruned); every search algorithm in this library fills in a
:class:`SearchStats` as it runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.core.pruning import PruningStats

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Counters accumulated during one nearest-neighbor query."""

    #: R-tree nodes visited (== pages accessed with no buffer).
    nodes_accessed: int = 0
    #: Of those, leaf nodes.
    leaf_accesses: int = 0
    #: Of those, internal nodes.
    internal_accesses: int = 0
    #: Leaf entries whose actual object distance was computed.
    objects_examined: int = 0
    #: Active-branch-list entries generated across all visited nodes.
    branch_entries_considered: int = 0
    #: Corrupt pages skipped during this query (disk trees opened with
    #: ``on_corrupt="skip"``; nonzero means results may be incomplete).
    pages_skipped_corrupt: int = 0
    #: True if a :class:`~repro.core.budget.Budget` stopped the search
    #: before it could prove optimality; the neighbors returned are a
    #: sound prefix within :attr:`frontier_sq`.
    truncated: bool = False
    #: Why the budget refused: ``"deadline"`` or ``"pages"`` (empty when
    #: not truncated).
    truncation_reason: str = ""
    #: Sound lower bound on the squared distance of anything the
    #: truncated search did not examine (``inf`` when not truncated —
    #: a complete search examined, or soundly pruned, everything).
    frontier_sq: float = math.inf
    #: Pruning counters, split by strategy.
    pruning: PruningStats = field(default_factory=PruningStats)

    def record_node(self, is_leaf: bool) -> None:
        """Tally one node visit."""
        self.nodes_accessed += 1
        if is_leaf:
            self.leaf_accesses += 1
        else:
            self.internal_accesses += 1

    @property
    def total_pruned(self) -> int:
        """Branches discarded by any pruning strategy."""
        return self.pruning.total

    @property
    def degraded(self) -> bool:
        """True if corruption was skipped — results may be incomplete."""
        return self.pages_skipped_corrupt > 0

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Accumulate *other* into this instance and return it.

        Returning ``self`` lets batch code fold a stream of per-query
        stats without a temporary: ``reduce(SearchStats.merge, parts)``.
        """
        self.nodes_accessed += other.nodes_accessed
        self.leaf_accesses += other.leaf_accesses
        self.internal_accesses += other.internal_accesses
        self.objects_examined += other.objects_examined
        self.branch_entries_considered += other.branch_entries_considered
        self.pages_skipped_corrupt += other.pages_skipped_corrupt
        # Truncation ORs across a batch (any truncated part taints the
        # fold); the frontier bound is the min — sound for the union.
        self.truncated = self.truncated or other.truncated
        if other.truncated and not self.truncation_reason:
            self.truncation_reason = other.truncation_reason
        if other.frontier_sq < self.frontier_sq:
            self.frontier_sq = other.frontier_sq
        self.pruning.merge(other.pruning)
        return self

    def as_dict(self) -> Dict[str, int]:
        """Flat counter dict with :class:`PruningStats` folded in.

        This is the export shape the metrics registry ingests; keeping
        pruning flattened means consumers never reach through the nested
        dataclass.
        """
        out = {
            "nodes_accessed": self.nodes_accessed,
            "leaf_accesses": self.leaf_accesses,
            "internal_accesses": self.internal_accesses,
            "objects_examined": self.objects_examined,
            "branch_entries_considered": self.branch_entries_considered,
            "pages_skipped_corrupt": self.pages_skipped_corrupt,
            # int-valued so Prometheus export stays numeric; the (possibly
            # infinite) frontier bound is deliberately not exported here.
            "truncated": int(self.truncated),
        }
        out.update(self.pruning.as_dict())
        return out
