"""User-facing query façade.

Most callers only need :func:`nearest`::

    from repro import RTree, nearest

    tree = RTree()
    tree.insert((2.0, 3.0), payload="library")
    result = nearest(tree, (0.0, 0.0), k=1)
    result.payloads()     # ["library"]
    result.stats.nodes_accessed

:class:`NearestNeighborQuery` packages a fixed configuration (algorithm,
ordering, pruning, tracker, object-distance hook) for repeated use — the
shape of the bench harness's inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Union

from repro.core.knn_best_first import nearest_best_first
from repro.core.knn_dfs import ObjectDistance, nearest_dfs
from repro.core.neighbors import Neighbor
from repro.core.pruning import PruningConfig
from repro.core.stats import SearchStats
from repro.errors import InvalidParameterError
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = ["NNResult", "NearestNeighborQuery", "nearest"]

_VALID_ALGORITHMS = ("dfs", "best-first")


@dataclass
class NNResult:
    """The outcome of one nearest-neighbor query."""

    neighbors: List[Neighbor]
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self.neighbors)

    def __getitem__(self, index: Union[int, slice]):
        return self.neighbors[index]

    def payloads(self) -> List[Any]:
        """Payloads of the neighbors, nearest first."""
        return [n.payload for n in self.neighbors]

    def distances(self) -> List[float]:
        """Distances of the neighbors, nearest first."""
        return [n.distance for n in self.neighbors]


def nearest(
    tree: RTree,
    point: Sequence[float],
    k: int = 1,
    algorithm: str = "dfs",
    ordering: str = "mindist",
    pruning: Optional[PruningConfig] = None,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: float = 0.0,
) -> NNResult:
    """Find the *k* objects in *tree* nearest to *point*.

    Args:
        tree: The R-tree to search.
        point: Query point.
        k: How many neighbors to return.
        algorithm: ``"dfs"`` — the paper's branch-and-bound depth-first
            search — or ``"best-first"`` — the Hjaltason-Samet priority
            search (page-optimal, ignores *ordering* and *pruning*).
        ordering: Active-branch-list metric for DFS, ``"mindist"`` or
            ``"minmaxdist"``.
        pruning: DFS pruning strategy toggles (default: all sound ones).
        tracker: Page-access tracker / buffer pool.
        object_distance_sq: Exact squared object distance hook.
        epsilon: Approximation slack; 0 is exact, larger values trade
            accuracy (each distance within ``1 + epsilon`` of exact) for
            fewer page reads.

    Returns:
        An :class:`NNResult` with the neighbors (nearest first) and the
        search statistics.
    """
    # Disk trees opened with on_corrupt="skip" count skipped pages; the
    # per-query delta lands in the stats so degraded results are visible.
    skipped_before = getattr(tree, "pages_skipped", 0)
    if algorithm == "dfs":
        neighbors, stats = nearest_dfs(
            tree,
            point,
            k=k,
            ordering=ordering,
            pruning=pruning,
            tracker=tracker,
            object_distance_sq=object_distance_sq,
            epsilon=epsilon,
        )
    elif algorithm == "best-first":
        neighbors, stats = nearest_best_first(
            tree,
            point,
            k=k,
            tracker=tracker,
            object_distance_sq=object_distance_sq,
            epsilon=epsilon,
        )
    else:
        raise InvalidParameterError(
            f"algorithm must be one of {_VALID_ALGORITHMS}, got {algorithm!r}"
        )
    stats.pages_skipped_corrupt = (
        getattr(tree, "pages_skipped", 0) - skipped_before
    )
    return NNResult(neighbors=neighbors, stats=stats)


class NearestNeighborQuery:
    """A reusable, pre-configured nearest-neighbor query.

    Example::

        query = NearestNeighborQuery(tree, k=4, ordering="minmaxdist")
        for p in query_points:
            result = query(p)
    """

    def __init__(
        self,
        tree: RTree,
        k: int = 1,
        algorithm: str = "dfs",
        ordering: str = "mindist",
        pruning: Optional[PruningConfig] = None,
        tracker: Optional[AccessTracker] = None,
        object_distance_sq: Optional[ObjectDistance] = None,
        epsilon: float = 0.0,
    ) -> None:
        if algorithm not in _VALID_ALGORITHMS:
            raise InvalidParameterError(
                f"algorithm must be one of {_VALID_ALGORITHMS}, got {algorithm!r}"
            )
        self.tree = tree
        self.k = k
        self.algorithm = algorithm
        self.ordering = ordering
        self.pruning = pruning
        self.tracker = tracker
        self.object_distance_sq = object_distance_sq
        self.epsilon = epsilon

    def __call__(self, point: Sequence[float], k: Optional[int] = None) -> NNResult:
        """Run the query from *point*; *k* overrides the configured value."""
        return nearest(
            self.tree,
            point,
            k=k if k is not None else self.k,
            algorithm=self.algorithm,
            ordering=self.ordering,
            pruning=self.pruning,
            tracker=self.tracker,
            object_distance_sq=self.object_distance_sq,
            epsilon=self.epsilon,
        )

    def __repr__(self) -> str:
        return (
            f"NearestNeighborQuery(k={self.k}, algorithm={self.algorithm!r}, "
            f"ordering={self.ordering!r})"
        )
