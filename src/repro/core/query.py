"""User-facing query façade.

Most callers only need :func:`nearest`::

    from repro import RTree, nearest

    tree = RTree()
    tree.insert((2.0, 3.0), payload="library")
    result = nearest(tree, (0.0, 0.0), k=1)
    result.payloads()     # ["library"]
    result.stats.nodes_accessed

Configuration is a single :class:`~repro.core.config.QueryConfig` passed
as ``config=``, shared verbatim by :func:`nearest`,
:class:`NearestNeighborQuery`, :func:`repro.core.batch.nearest_batch`
and :class:`repro.service.QueryEngine`.  The legacy keyword arguments
(``algorithm=``, ``ordering=``, ...) still work — explicit keywords
override the corresponding config field — but are **deprecated**: each
use emits a :class:`DeprecationWarning` pointing at the one migration
path, docs/API.md § *Migrating to QueryConfig*.  ``k=`` stays
first-class (it is per-call intent, not configuration sprawl).
:class:`NearestNeighborQuery` packages a fixed configuration for
repeated use — the shape of the bench harness's inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.budget import Budget
from repro.core.config import QueryConfig, warn_legacy_query_kwargs
from repro.core.knn_best_first import nearest_best_first
from repro.core.knn_dfs import ObjectDistance, nearest_dfs
from repro.core.neighbors import Neighbor
from repro.core.pruning import PruningConfig
from repro.core.stats import SearchStats
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.trace import Trace

__all__ = ["NNResult", "NearestNeighborQuery", "nearest", "resolve_config"]


def resolve_config(
    config: Optional[QueryConfig],
    k: Optional[int] = None,
    algorithm: Optional[str] = None,
    ordering: Optional[str] = None,
    pruning: Optional[PruningConfig] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: Optional[float] = None,
    budget: Optional[Budget] = None,
) -> QueryConfig:
    """Merge a base config with legacy keyword overrides.

    ``None`` means "not passed"; explicit values override the config
    field.  With no config and no overrides this is ``QueryConfig()``.
    The result is fully validated (eagerly) by ``QueryConfig`` itself.
    """
    base = config if config is not None else QueryConfig()
    return base.with_overrides(
        k=k,
        algorithm=algorithm,
        ordering=ordering,
        pruning=pruning,
        object_distance_sq=object_distance_sq,
        epsilon=epsilon,
        budget=budget,
    )


@dataclass
class NNResult:
    """The outcome of one nearest-neighbor query."""

    neighbors: List[Neighbor]
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self.neighbors)

    def __getitem__(self, index: Union[int, slice]):
        return self.neighbors[index]

    def payloads(self) -> List[Any]:
        """Payloads of the neighbors, nearest first."""
        return [n.payload for n in self.neighbors]

    def distances(self) -> List[float]:
        """Distances of the neighbors, nearest first."""
        return [n.distance for n in self.neighbors]

    @property
    def truncated(self) -> bool:
        """True if a budget stopped the search early (sound prefix)."""
        return self.stats.truncated

    @property
    def truncation_reason(self) -> str:
        """Why the budget refused: ``"deadline"``, ``"pages"``, or ``""``."""
        return self.stats.truncation_reason

    @property
    def frontier_distance(self) -> float:
        """Lower bound on the distance of anything left unexamined.

        ``inf`` for a complete search.  For a truncated one, every
        returned neighbor closer than this bound is within the query's
        epsilon band of the true answer at its rank.
        """
        return self.stats.frontier_sq ** 0.5

    def points(self) -> List[Tuple[float, ...]]:
        """Center of each neighbor's MBR, nearest first.

        For point data (the common case) the MBR is degenerate and this
        is exactly the indexed point.
        """
        return [tuple(n.rect.center) for n in self.neighbors]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """One plain dict per neighbor — ready for tables, JSON or logs."""
        return [
            {
                "rank": rank,
                "payload": n.payload,
                "point": tuple(n.rect.center),
                "distance": n.distance,
            }
            for rank, n in enumerate(self.neighbors, start=1)
        ]

    def __repr__(self) -> str:
        if self.neighbors:
            best = f"{self.neighbors[0].distance:.6g}"
        else:
            best = "n/a"
        return (
            f"NNResult(k={len(self.neighbors)}, best_distance={best}, "
            f"nodes_accessed={self.stats.nodes_accessed})"
        )


def nearest(
    tree: RTree,
    point: Sequence[float],
    k: Optional[int] = None,
    algorithm: Optional[str] = None,
    ordering: Optional[str] = None,
    pruning: Optional[PruningConfig] = None,
    tracker: Optional[AccessTracker] = None,
    object_distance_sq: Optional[ObjectDistance] = None,
    epsilon: Optional[float] = None,
    config: Optional[QueryConfig] = None,
    trace: Optional["Trace"] = None,
    budget: Optional[Budget] = None,
) -> NNResult:
    """Find the *k* objects in *tree* nearest to *point*.

    Args:
        tree: The R-tree to search.
        point: Query point.
        k: How many neighbors to return (default 1).
        config: A :class:`QueryConfig` describing how the query runs
            (algorithm, ordering, pruning, epsilon, object distance,
            budget) — the one configuration surface.
        tracker: Page-access tracker / buffer pool (instrumentation; not
            part of the query configuration).
        trace: Optional :class:`repro.obs.Trace` recording the search's
            full event stream (instrumentation, like *tracker*; not part
            of the query configuration).
        algorithm / ordering / pruning / object_distance_sq / epsilon /
            budget: **Deprecated** legacy spellings of the matching
            :class:`QueryConfig` fields; each use warns.  They still
            override the config field when passed (docs/API.md,
            'Migrating to QueryConfig').

    Returns:
        An :class:`NNResult` with the neighbors (nearest first) and the
        search statistics.
    """
    warn_legacy_query_kwargs(
        "nearest()",
        algorithm=algorithm,
        ordering=ordering,
        pruning=pruning,
        object_distance_sq=object_distance_sq,
        epsilon=epsilon,
        budget=budget,
    )
    cfg = resolve_config(
        config,
        k=k,
        algorithm=algorithm,
        ordering=ordering,
        pruning=pruning,
        object_distance_sq=object_distance_sq,
        epsilon=epsilon,
        budget=budget,
    )
    return _run_query(tree, point, cfg, tracker, trace)


def _run_query(
    tree: RTree,
    point: Sequence[float],
    cfg: QueryConfig,
    tracker: Optional[AccessTracker],
    trace: Optional["Trace"] = None,
) -> NNResult:
    """Dispatch a validated :class:`QueryConfig` to the search kernels."""
    if trace is not None:
        trace.meta.update(
            point=tuple(float(c) for c in point),
            k=cfg.k,
            algorithm=cfg.algorithm,
        )
    # Disk trees opened with on_corrupt="skip" count skipped pages; the
    # per-query delta lands in the stats so degraded results are visible.
    skipped_before = getattr(tree, "pages_skipped", 0)
    if cfg.algorithm == "dfs":
        neighbors, stats = nearest_dfs(
            tree,
            point,
            k=cfg.k,
            ordering=cfg.ordering,
            pruning=cfg.pruning,
            tracker=tracker,
            object_distance_sq=cfg.object_distance_sq,
            epsilon=cfg.epsilon,
            trace=trace,
            budget=cfg.budget,
        )
    else:
        neighbors, stats = nearest_best_first(
            tree,
            point,
            k=cfg.k,
            tracker=tracker,
            object_distance_sq=cfg.object_distance_sq,
            epsilon=cfg.epsilon,
            trace=trace,
            budget=cfg.budget,
        )
    stats.pages_skipped_corrupt = (
        getattr(tree, "pages_skipped", 0) - skipped_before
    )
    if trace is not None:
        trace.skips(stats.pages_skipped_corrupt)
    return NNResult(neighbors=neighbors, stats=stats)


class NearestNeighborQuery:
    """A reusable, pre-configured nearest-neighbor query.

    Example::

        cfg = QueryConfig(k=4, ordering="minmaxdist")
        query = NearestNeighborQuery(tree, config=cfg)
        for p in query_points:
            result = query(p)

    The legacy keyword spellings (``ordering="minmaxdist"`` etc.) still
    work but are deprecated; each use emits a :class:`DeprecationWarning`
    (docs/API.md, 'Migrating to QueryConfig').

    All configuration is validated eagerly at construction — a typo'd
    ordering raises :class:`~repro.errors.InvalidParameterError` here,
    not at the first call.
    """

    def __init__(
        self,
        tree: RTree,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
        ordering: Optional[str] = None,
        pruning: Optional[PruningConfig] = None,
        tracker: Optional[AccessTracker] = None,
        object_distance_sq: Optional[ObjectDistance] = None,
        epsilon: Optional[float] = None,
        config: Optional[QueryConfig] = None,
    ) -> None:
        warn_legacy_query_kwargs(
            "NearestNeighborQuery",
            algorithm=algorithm,
            ordering=ordering,
            pruning=pruning,
            object_distance_sq=object_distance_sq,
            epsilon=epsilon,
        )
        self.tree = tree
        self.tracker = tracker
        self.config = resolve_config(
            config,
            k=k,
            algorithm=algorithm,
            ordering=ordering,
            pruning=pruning,
            object_distance_sq=object_distance_sq,
            epsilon=epsilon,
        )

    # Legacy attribute access keeps working; the config is the truth.
    @property
    def k(self) -> int:
        return self.config.k

    @property
    def algorithm(self) -> str:
        return self.config.algorithm

    @property
    def ordering(self) -> str:
        return self.config.ordering

    @property
    def pruning(self) -> Optional[PruningConfig]:
        return self.config.pruning

    @property
    def object_distance_sq(self) -> Optional[ObjectDistance]:
        return self.config.object_distance_sq

    @property
    def epsilon(self) -> float:
        return self.config.epsilon

    def __call__(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        trace: Optional["Trace"] = None,
    ) -> NNResult:
        """Run the query from *point*; *k* overrides the configured value."""
        cfg = self.config if k is None else self.config.replace(k=k)
        return _run_query(self.tree, point, cfg, self.tracker, trace)

    def __repr__(self) -> str:
        return (
            f"NearestNeighborQuery(k={self.k}, algorithm={self.algorithm!r}, "
            f"ordering={self.ordering!r})"
        )
