"""MINDIST and MINMAXDIST under general Minkowski (L_p) metrics.

The paper defines its metrics for any L_p norm; Euclidean (p = 2) is the
common case and gets the optimized squared-form implementation in
:mod:`repro.core.metrics`.  This module provides the general form —
including L1 (Manhattan, e.g. grid-city travel) and L-infinity
(Chebyshev) — plus a generic branch-and-bound search,
:func:`nearest_dfs_lp`, that is exact for any ``p >= 1``.

Distances here are *true* (not squared/powered) values: the p-th-power
trick only pays off for p = 2, and correctness under mixed comparisons is
easier to audit with one scale.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.neighbors import Neighbor, NeighborBuffer
from repro.core.stats import SearchStats
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import as_point
from repro.geometry.rect import Rect
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.tracker import AccessTracker

__all__ = [
    "lp_distance",
    "mindist_lp",
    "minmaxdist_lp",
    "nearest_dfs_lp",
]

PNorm = Union[int, float]


def _check_p(p: PNorm) -> float:
    p = float(p)
    if not (p >= 1.0 or math.isinf(p)):
        raise InvalidParameterError(f"p must be >= 1 or inf, got {p}")
    return p


def lp_distance(a: Sequence[float], b: Sequence[float], p: PNorm = 2.0) -> float:
    """Minkowski distance of order *p* between two points (inf = Chebyshev)."""
    p = _check_p(p)
    if len(a) != len(b):
        raise DimensionMismatchError(len(a), len(b), "lp points")
    gaps = [abs(x - y) for x, y in zip(a, b)]
    return _combine(gaps, p)


def _combine(gaps: Sequence[float], p: float) -> float:
    if math.isinf(p):
        return max(gaps) if gaps else 0.0
    if p == 1.0:
        return sum(gaps)
    if p == 2.0:
        return math.sqrt(sum(g * g for g in gaps))
    return sum(g**p for g in gaps) ** (1.0 / p)


def mindist_lp(point: Sequence[float], rect: Rect, p: PNorm = 2.0) -> float:
    """L_p MINDIST: distance from *point* to the nearest point of *rect*.

    The per-axis gap is the slab shortfall/excess exactly as in the
    Euclidean case; only the combination changes with *p*.
    """
    p = _check_p(p)
    if len(point) != rect.dimension:
        raise DimensionMismatchError(rect.dimension, len(point), "lp mindist")
    gaps = []
    for c, lo, hi in zip(point, rect.lo, rect.hi):
        if c < lo:
            gaps.append(lo - c)
        elif c > hi:
            gaps.append(c - hi)
        else:
            gaps.append(0.0)
    return _combine(gaps, p)


def minmaxdist_lp(point: Sequence[float], rect: Rect, p: PNorm = 2.0) -> float:
    """L_p MINMAXDIST: the paper's guaranteed upper bound, general norm.

    For each axis ``k``: take the nearer bound along ``k`` and the farther
    bound along every other axis, combine under L_p, and minimize over
    ``k``.  The face-touching argument behind the guarantee is norm-
    independent, so the bound stays valid for every ``p``.
    """
    p = _check_p(p)
    if len(point) != rect.dimension:
        raise DimensionMismatchError(rect.dimension, len(point), "lp minmaxdist")
    dim = rect.dimension
    near = []
    far = []
    for c, lo, hi in zip(point, rect.lo, rect.hi):
        mid = (lo + hi) / 2.0
        near.append(abs(c - (lo if c <= mid else hi)))
        far.append(abs(c - (lo if c >= mid else hi)))
    best = math.inf
    for k in range(dim):
        gaps = [near[i] if i == k else far[i] for i in range(dim)]
        candidate = _combine(gaps, p)
        if candidate < best:
            best = candidate
    return best


def nearest_dfs_lp(
    tree: RTree,
    point: Sequence[float],
    k: int = 1,
    p: PNorm = 2.0,
    tracker: Optional[AccessTracker] = None,
) -> Tuple[List[Neighbor], SearchStats]:
    """Exact k-NN under the L_p metric via MINDIST-ordered DFS.

    Object distances use the L_p MINDIST to each leaf rectangle (exact for
    point data).  Pruning uses the P3 rule plus the P2 MINMAXDIST bound for
    ``k = 1`` — the same soundness structure as the Euclidean search.
    """
    query = as_point(point)
    p = _check_p(p)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    stats = SearchStats()
    if len(tree) == 0:
        return [], stats
    if tree.dimension != len(query):
        raise DimensionMismatchError(tree.dimension, len(query), "lp query")

    buffer = NeighborBuffer(k)
    # NeighborBuffer compares squared values; squaring any nonnegative
    # distance preserves order, so store dist**2 regardless of p.
    minmax_bound = math.inf

    def bound() -> float:
        candidate = math.sqrt(buffer.worst_distance_squared) \
            if buffer.worst_distance_squared != math.inf else math.inf
        if k == 1 and minmax_bound < candidate:
            return minmax_bound
        return candidate

    def visit(node: Node) -> None:
        nonlocal minmax_bound
        if tracker is not None:
            tracker.access(node.node_id, node.is_leaf)
        stats.record_node(node.is_leaf)
        if node.is_leaf:
            for entry in node.entries:
                distance = mindist_lp(query, entry.rect, p)
                stats.objects_examined += 1
                buffer.offer(distance * distance, entry.payload, entry.rect)
            return
        branches = []
        for entry in node.entries:
            md = mindist_lp(query, entry.rect, p)
            stats.branch_entries_considered += 1
            if k == 1:
                mmd = minmaxdist_lp(query, entry.rect, p)
                if mmd < minmax_bound:
                    minmax_bound = mmd
                    stats.pruning.p2_bound_updates += 1
            branches.append((md, entry.child))
        branches.sort(key=lambda b: b[0])
        slack = 1.0 + 1e-12
        for md, child in branches:
            if md > bound() * slack:
                stats.pruning.p3_pruned += 1
                continue
            visit(child)

    visit(tree.root)
    return buffer.to_sorted_list(), stats
