"""``python -m repro.chaos`` — run one seeded chaos soak and certify it.

Exit status 0 means every invariant held (the ``PASS`` line); 1 means at
least one violation (each printed).  ``--json`` emits the full report
for baselines and CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.chaos.harness import ChaosConfig, run_soak


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description=(
            "Soak the resilient serving stack under synthetic overload "
            "and injected storage faults, certifying every answer "
            "against the exhaustive oracle."
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--queries", type=int, default=2000,
        help="total queries across the three segments (default 2000)",
    )
    parser.add_argument("--points", type=int, default=4000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-capacity", type=int, default=32)
    parser.add_argument(
        "--shed-policy", default="adaptive-lifo",
        choices=("reject-newest", "adaptive-lifo", "expired-drop"),
    )
    parser.add_argument(
        "--no-brownout", action="store_true",
        help="disable the brownout controller",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    cfg = ChaosConfig(
        seed=args.seed,
        queries=args.queries,
        n_points=args.points,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        brownout=not args.no_brownout,
    )
    report = run_soak(cfg)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
