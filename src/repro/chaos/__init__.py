"""Chaos soak harness: overload + fault injection, oracle-certified.

Run ``python -m repro.chaos`` for the CLI, or use
:func:`~repro.chaos.harness.run_soak` programmatically.  See
``docs/RESILIENCE.md`` for what the soak certifies and why.
"""

from repro.chaos.harness import ChaosConfig, ChaosReport, run_soak

__all__ = ["ChaosConfig", "ChaosReport", "run_soak"]
