"""The chaos soak: synthetic overload + injected faults, oracle-certified.

``run_soak`` drives a :class:`~repro.service.resilience.ResilientEngine`
over a :class:`~repro.rtree.disk.DiskRTree` whose page file is a seeded
:class:`~repro.storage.faults.FaultInjectingPageFile`, through three
deterministic segments:

1. **clean overload** — no faults, sustained ~4x queue capacity.  Every
   served non-truncated answer must match the exhaustive oracle within
   its *effective* epsilon band (brownout may widen it); every truncated
   answer must be a sound prefix within its reported frontier.
2. **fault storm** — ``transient_error_prob`` is raised to 1.0, so every
   uncached page load fails until the circuit breaker trips open.
   Results are degraded (subtrees refused without a frontier), so only
   the *subset* and self-consistency invariants are certified.
3. **recovery** — fault probabilities drop back to the background level
   (bit flips only); the breaker's cooldown elapses, it probes
   half-open, and closes.  Background bit flips mean degradation stays
   possible, so subset-level certification continues, while truncated
   answers keep their full frontier certification off (a corrupt-skip
   drops a subtree without folding it into the frontier).

After the drive, the report certifies the **invariants** the resilience
layer promises regardless of load or luck:

- zero oracle violations in each segment's applicable mode;
- request-accounting conservation (every submission lands in exactly one
  terminal counter — see :class:`~repro.service.resilience.ResilienceStats`);
- every future resolved (no stuck callers), every worker exited
  (``close(timeout)`` drained);
- every recorded breaker transition legal, and the storm actually forced
  ``closed -> open`` with a subsequent recovery to ``closed``.

Everything is seeded: same config, same report.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.audit.oracle import (
    check_result,
    check_truncated_result,
    exact_neighbors,
)
from repro.core.budget import Budget
from repro.core.config import QueryConfig
from repro.core.neighbors import Neighbor
from repro.datasets import uniform_points
from repro.errors import AdmissionRejected, InvalidParameterError
from repro.geometry.rect import Rect
from repro.rtree.disk import DiskRTree, build_disk_index
from repro.service.resilience import (
    BrownoutController,
    ResilienceStats,
    ResilientEngine,
)
from repro.storage.breaker import _LEGAL as _LEGAL_TRANSITIONS
from repro.storage.breaker import CircuitBreaker
from repro.storage.faults import FaultInjectingPageFile, FaultPlan
from repro.storage.pagefile import RetryPolicy

__all__ = ["ChaosConfig", "ChaosReport", "run_soak"]


@dataclass(frozen=True)
class ChaosConfig:
    """One fully seeded soak definition.

    ``queries`` is split across the three segments by
    ``storm_fraction``/``recovery_fraction``; the defaults give a soak
    that finishes in seconds, the CI job and the committed baseline run
    ``queries >= 10_000``.
    """

    seed: int = 0
    n_points: int = 4000
    queries: int = 2000
    query_pool: int = 200
    k_choices: Tuple[int, ...] = (1, 4, 10)
    workers: int = 4
    queue_capacity: int = 32
    shed_policy: str = "adaptive-lifo"
    overload_factor: int = 4
    deadline_ms_choices: Tuple[Optional[float], ...] = (None, 5.0, 25.0)
    max_pages_choices: Tuple[Optional[int], ...] = (None, 8, 64)
    queue_timeout_ms: float = 250.0
    quota_rate: Optional[float] = None
    quota_burst: Optional[float] = None
    brownout: bool = True
    page_size: int = 1024
    cache_nodes: int = 8
    bit_flip_prob: float = 0.01
    storm_fraction: float = 0.2
    recovery_fraction: float = 0.3
    breaker_threshold: int = 3
    breaker_cooldown: float = 0.05
    future_timeout: float = 30.0
    close_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.queries < 10:
            raise InvalidParameterError("queries must be >= 10")
        if not 0.0 < self.storm_fraction + self.recovery_fraction < 1.0:
            raise InvalidParameterError(
                "storm_fraction + recovery_fraction must be in (0, 1)"
            )


@dataclass
class ChaosReport:
    """What the soak did and which invariants held."""

    config: ChaosConfig
    submitted: int = 0
    served: int = 0
    served_truncated: int = 0
    shed: int = 0
    failed: int = 0
    violations: List[str] = field(default_factory=list)
    oracle_checked: int = 0
    breaker_transitions: List[Tuple[str, str]] = field(default_factory=list)
    breaker_rejections: int = 0
    pages_skipped: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    max_brownout_level: int = 0
    wait_p99_ms: float = 0.0
    service_p99_ms: float = 0.0
    elapsed_s: float = 0.0
    stats: Optional[ResilienceStats] = None
    workers_drained: bool = False

    @property
    def passed(self) -> bool:
        return not self.violations and self.workers_drained

    def violation(self, message: str) -> None:
        # Bounded: one pathological soak must not OOM the report.
        if len(self.violations) < 200:
            self.violations.append(message)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "config": asdict(self.config),
            "submitted": self.submitted,
            "served": self.served,
            "served_truncated": self.served_truncated,
            "shed": self.shed,
            "failed": self.failed,
            "oracle_checked": self.oracle_checked,
            "violations": list(self.violations),
            "breaker_transitions": [list(t) for t in self.breaker_transitions],
            "breaker_rejections": self.breaker_rejections,
            "pages_skipped": self.pages_skipped,
            "faults_injected": dict(self.faults_injected),
            "max_brownout_level": self.max_brownout_level,
            "wait_p99_ms": self.wait_p99_ms,
            "service_p99_ms": self.service_p99_ms,
            "elapsed_s": self.elapsed_s,
            "stats": self.stats.as_dict() if self.stats else None,
            "workers_drained": self.workers_drained,
            "passed": self.passed,
        }
        return out

    def render(self) -> str:
        lines = [
            f"chaos soak: {self.submitted} submitted in "
            f"{self.elapsed_s:.2f}s  (seed {self.config.seed})",
            f"  served     {self.served:>8,}  "
            f"(truncated {self.served_truncated:,})",
            f"  shed       {self.shed:>8,}",
            f"  failed     {self.failed:>8,}",
            f"  oracle     {self.oracle_checked:>8,} answers certified",
            f"  breaker    {len(self.breaker_transitions)} transitions, "
            f"{self.breaker_rejections} loads refused",
            f"  faults     {self.faults_injected}",
            f"  skipped    {self.pages_skipped} pages",
            f"  brownout   peak level {self.max_brownout_level}",
            f"  p99        wait {self.wait_p99_ms:.1f} ms / "
            f"service {self.service_p99_ms:.1f} ms",
            f"  drained    {self.workers_drained}",
        ]
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {v}" for v in self.violations[:20])
            if len(self.violations) > 20:
                lines.append(
                    f"    ... and {len(self.violations) - 20} more"
                )
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _certify(
    report: ChaosReport,
    served,
    query: Sequence[float],
    k: int,
    exact: Sequence[Neighbor],
    segment: str,
    degradation_possible: bool,
) -> None:
    """Route one served answer to the applicable oracle mode."""
    result = served.result
    neighbors = result.neighbors
    combo = f"chaos-{segment}"
    epsilon = served.config.epsilon
    if result.stats.truncated and not degradation_possible:
        # Budget truncation alone: the frontier bound is sound.
        problems = check_truncated_result(
            neighbors, query, k, exact, combo=combo,
            frontier=result.frontier_distance, epsilon=epsilon,
        )
    elif result.stats.truncated or degradation_possible:
        # A corrupt-skip drops subtrees without folding them into any
        # frontier, so only subset + integrity can be promised.
        problems = check_truncated_result(
            neighbors, query, k, exact, combo=combo,
            frontier=0.0, epsilon=epsilon,
        )
    else:
        problems = check_result(
            neighbors, query, k, exact, combo=combo, epsilon=epsilon,
        )
    report.oracle_checked += 1
    for p in problems:
        report.violation(p.describe())


def _drive_segment(
    engine: ResilientEngine,
    report: ChaosReport,
    rng,
    pool: Sequence[Tuple[float, ...]],
    oracle: Dict[Tuple[float, ...], List[Neighbor]],
    cfg: ChaosConfig,
    count: int,
    segment: str,
    degradation_possible: bool,
) -> None:
    """Submit *count* queries in overload-sized waves and certify them."""
    wave = max(1, cfg.queue_capacity * cfg.overload_factor)
    remaining = count
    while remaining > 0:
        batch = min(wave, remaining)
        remaining -= batch
        inflight = []
        for _ in range(batch):
            q = pool[rng.randrange(len(pool))]
            k = cfg.k_choices[rng.randrange(len(cfg.k_choices))]
            deadline = cfg.deadline_ms_choices[
                rng.randrange(len(cfg.deadline_ms_choices))
            ]
            pages = cfg.max_pages_choices[
                rng.randrange(len(cfg.max_pages_choices))
            ]
            budget = (
                Budget(deadline_ms=deadline, max_pages=pages)
                if deadline is not None or pages is not None
                else None
            )
            client = f"c{rng.randrange(4)}"
            fut = engine.submit(q, k=k, budget=budget, client=client)
            inflight.append((fut, q, k))
            report.submitted += 1
        for fut, q, k in inflight:
            try:
                served = fut.result(cfg.future_timeout)
            except AdmissionRejected:
                report.shed += 1
                continue
            except TimeoutError:
                report.violation(
                    f"{segment}: future never resolved within "
                    f"{cfg.future_timeout}s — stuck worker"
                )
                continue
            except Exception as exc:  # DeadlineExceeded in raise mode, I/O
                report.failed += 1
                continue
            report.served += 1
            if served.result.stats.truncated:
                report.served_truncated += 1
            if served.brownout_level > report.max_brownout_level:
                report.max_brownout_level = served.brownout_level
            _certify(
                report, served, q, k, oracle[q][:k], segment,
                degradation_possible,
            )


def run_soak(cfg: ChaosConfig = ChaosConfig()) -> ChaosReport:
    """Run one seeded soak end to end; never raises on invariant failure
    — violations land in the returned report."""
    import random

    report = ChaosReport(config=cfg)
    rng = random.Random(cfg.seed)
    started = time.monotonic()

    points = uniform_points(cfg.n_points, seed=cfg.seed)
    pool = [
        tuple(p)
        for p in uniform_points(cfg.query_pool, seed=cfg.seed + 1)
    ]
    items = [(Rect(p, p), i) for i, p in enumerate(points)]
    kmax = max(cfg.k_choices)
    oracle = {q: exact_neighbors(items, q, kmax) for q in pool}

    plan = FaultPlan(seed=cfg.seed)  # faults off; mutated per segment
    breaker = CircuitBreaker(
        failure_threshold=cfg.breaker_threshold,
        cooldown=cfg.breaker_cooldown,
        max_cooldown=cfg.breaker_cooldown * 4,
    )
    retry = RetryPolicy(
        attempts=2,
        base_delay=0.0002,
        max_delay=0.002,
        jitter="decorrelated",
        max_elapsed=0.05,
        rng=random.Random(cfg.seed + 2),
    )

    tmp = tempfile.NamedTemporaryFile(
        suffix=".rtree", delete=False
    )
    tmp.close()
    path = tmp.name
    storm = int(cfg.queries * cfg.storm_fraction)
    recovery = int(cfg.queries * cfg.recovery_fraction)
    clean = cfg.queries - storm - recovery
    try:
        build_disk_index(items, path, page_size=cfg.page_size).close()
        pages = FaultInjectingPageFile(
            path, page_size=cfg.page_size, plan=plan
        )
        disk = DiskRTree(
            page_file=pages,
            cache_nodes=cfg.cache_nodes,
            on_corrupt="skip",
            retry=retry,
            breaker=breaker,
        )
        engine = ResilientEngine(
            disk,
            config=QueryConfig(k=kmax),
            workers=cfg.workers,
            queue_capacity=cfg.queue_capacity,
            shed_policy=cfg.shed_policy,
            queue_timeout_ms=cfg.queue_timeout_ms,
            quota_rate=cfg.quota_rate,
            quota_burst=cfg.quota_burst,
            brownout=BrownoutController() if cfg.brownout else None,
            breaker=breaker,
            cache_size=0,  # every answer must be freshly computed
        )
        with warnings.catch_warnings():
            # Injected corruption legitimately warns; the soak certifies
            # the *results*, the warning channel is tested elsewhere.
            warnings.simplefilter("ignore")
            try:
                # Segment 1: clean overload — full-strength certification.
                _drive_segment(
                    engine, report, rng, pool, oracle, cfg, clean,
                    "clean", degradation_possible=False,
                )
                # Segment 2: storm — every page load fails until the
                # breaker trips; subset-level certification only.
                plan.transient_error_prob = 1.0
                _drive_segment(
                    engine, report, rng, pool, oracle, cfg, storm,
                    "storm", degradation_possible=True,
                )
                # Segment 3: recovery — background bit flips only; the
                # breaker must close again.  The soak outruns wall-clock
                # cooldowns, so wait out the longest possible one before
                # driving (the half-open probe needs a chance to fire).
                plan.transient_error_prob = 0.0
                plan.bit_flip_prob = cfg.bit_flip_prob
                time.sleep(cfg.breaker_cooldown * 4)
                _drive_segment(
                    engine, report, rng, pool, oracle, cfg, recovery,
                    "recovery", degradation_possible=True,
                )
            finally:
                report.workers_drained = engine.close(cfg.close_timeout)

        stats = engine.stats()
        report.stats = stats
        if not stats.conserved:
            report.violation(
                "request accounting not conserved: "
                + json.dumps(stats.as_dict())
            )
        if stats.pending or stats.inflight:
            report.violation(
                f"work left behind after close: pending={stats.pending} "
                f"inflight={stats.inflight}"
            )
        if report.served != stats.served:
            report.violation(
                f"caller-observed served {report.served} != engine "
                f"served {stats.served}"
            )

        transitions = [(a, b) for _, a, b in breaker.transitions]
        report.breaker_transitions = transitions
        report.breaker_rejections = breaker.rejections
        for pair in transitions:
            if pair not in _LEGAL_TRANSITIONS:
                report.violation(f"illegal breaker transition {pair}")
        if storm > 0:
            if ("closed", "open") not in transitions:
                report.violation(
                    "storm never tripped the breaker open"
                )
            if ("half-open", "closed") not in transitions:
                report.violation(
                    "breaker never recovered to closed after the storm"
                )
        report.pages_skipped = disk.pages_skipped
        report.faults_injected = dict(pages.faults_injected)
        report.wait_p99_ms = engine.wait_times.percentile(0.99) * 1000.0
        report.service_p99_ms = (
            engine.service_times.percentile(0.99) * 1000.0
        )
        disk.close()
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
    report.elapsed_s = time.monotonic() - started
    return report
