"""Synthetic point and rectangle generators.

Everything takes an explicit ``seed`` and returns plain lists, so a given
``(generator, parameters, seed)`` triple always produces the same workload —
run-to-run reproducibility is a hard requirement of the bench harness.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = [
    "uniform_points",
    "uniform_rects",
    "gaussian_clusters",
    "skewed_points",
]

Bounds = Tuple[float, float]
_DEFAULT_BOUNDS: Bounds = (0.0, 1000.0)


def _check_count(n: int) -> None:
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")


def uniform_points(
    n: int,
    seed: int = 0,
    dimension: int = 2,
    bounds: Bounds = _DEFAULT_BOUNDS,
) -> List[Point]:
    """*n* points uniformly distributed in ``[lo, hi]^dimension``."""
    _check_count(n)
    lo, hi = bounds
    rng = random.Random(seed)
    return [
        tuple(rng.uniform(lo, hi) for _ in range(dimension)) for _ in range(n)
    ]


def uniform_rects(
    n: int,
    seed: int = 0,
    dimension: int = 2,
    bounds: Bounds = _DEFAULT_BOUNDS,
    max_side: float = 10.0,
) -> List[Rect]:
    """*n* small rectangles with uniformly placed corners.

    Each rectangle's lower corner is uniform in the bounds and its per-axis
    extent is uniform in ``[0, max_side]`` (clipped to the bounds).
    """
    _check_count(n)
    if max_side < 0:
        raise InvalidParameterError(f"max_side must be >= 0, got {max_side}")
    lo, hi = bounds
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        corner = [rng.uniform(lo, hi) for _ in range(dimension)]
        upper = [min(c + rng.uniform(0.0, max_side), hi) for c in corner]
        rects.append(Rect(corner, upper))
    return rects


def gaussian_clusters(
    n: int,
    seed: int = 0,
    dimension: int = 2,
    bounds: Bounds = _DEFAULT_BOUNDS,
    clusters: int = 10,
    spread: float = 20.0,
) -> List[Point]:
    """*n* points in Gaussian blobs around uniformly placed cluster centers.

    Models the "franchise operating in a local region" POI distribution the
    paper's experiments vary.  Points are clipped to the bounds.
    """
    _check_count(n)
    if clusters < 1:
        raise InvalidParameterError(f"clusters must be >= 1, got {clusters}")
    if spread < 0:
        raise InvalidParameterError(f"spread must be >= 0, got {spread}")
    lo, hi = bounds
    rng = random.Random(seed)
    centers = [
        tuple(rng.uniform(lo, hi) for _ in range(dimension))
        for _ in range(clusters)
    ]
    points = []
    for _ in range(n):
        center = centers[rng.randrange(clusters)]
        points.append(
            tuple(
                min(max(rng.gauss(c, spread), lo), hi) for c in center
            )
        )
    return points


def skewed_points(
    n: int,
    seed: int = 0,
    dimension: int = 2,
    bounds: Bounds = _DEFAULT_BOUNDS,
    exponent: float = 3.0,
) -> List[Point]:
    """*n* points whose density rises sharply toward the lower corner.

    Each coordinate is ``lo + (hi - lo) * u**exponent`` with ``u`` uniform —
    a simple power-law skew that stresses unbalanced tree regions.
    """
    _check_count(n)
    if exponent <= 0:
        raise InvalidParameterError(f"exponent must be > 0, got {exponent}")
    lo, hi = bounds
    width = hi - lo
    rng = random.Random(seed)
    return [
        tuple(lo + width * rng.random() ** exponent for _ in range(dimension))
        for _ in range(n)
    ]
