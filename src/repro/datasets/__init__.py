"""Workload generators for the experiment suite.

The paper evaluates on synthetic uniform points and on real TIGER/Line
street segments.  Real TIGER data is not available offline, so
:mod:`repro.datasets.roads` generates road maps with TIGER-like spatial
statistics (clustered towns, street grids, arterials); DESIGN.md documents
the substitution.  All generators are deterministic given a seed.
"""

from repro.datasets.synthetic import (
    gaussian_clusters,
    skewed_points,
    uniform_points,
    uniform_rects,
)
from repro.datasets.roads import RoadNetworkConfig, road_segments
from repro.datasets.analysis import (
    PointSetSummary,
    SegmentSetSummary,
    describe_points,
    describe_segments,
)
from repro.datasets.io import load_points_csv, load_segments_csv
from repro.datasets.queries import (
    query_points_clustered_sessions,
    query_points_near_data,
    query_points_uniform,
)

__all__ = [
    "PointSetSummary",
    "RoadNetworkConfig",
    "SegmentSetSummary",
    "describe_points",
    "describe_segments",
    "gaussian_clusters",
    "load_points_csv",
    "load_segments_csv",
    "query_points_clustered_sessions",
    "query_points_near_data",
    "query_points_uniform",
    "road_segments",
    "skewed_points",
    "uniform_points",
    "uniform_rects",
]
