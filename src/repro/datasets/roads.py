"""TIGER-like road-segment generator.

The paper's real-data experiments index street segments from US Census
TIGER/Line files (Long Beach, CA and Montgomery County, MD).  Those files
are not available offline, so this module synthesizes maps with the same
spatial character:

- a handful of *towns* (dense clusters) of very different sizes,
- inside each town, a jittered street *grid* of short segments,
- long *arterial* segments connecting town centers,
- a sprinkle of isolated rural segments.

What the NN experiments actually exercise is the clustered, non-uniform
distribution of many short segments — which this reproduces.  See DESIGN.md
("Substitutions").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.segment import Segment

__all__ = ["RoadNetworkConfig", "road_segments"]


@dataclass(frozen=True)
class RoadNetworkConfig:
    """Tuning knobs for :func:`road_segments`.

    Attributes:
        bounds: The square map extent ``[lo, hi]^2``.
        towns: Number of urban clusters.
        arterial_fraction: Fraction of segments used for inter-town roads.
        rural_fraction: Fraction of isolated countryside segments.
        jitter: Relative perturbation of grid intersections (0 = perfect
            grid, 0.5 = heavily bent streets).
    """

    bounds: Tuple[float, float] = (0.0, 1000.0)
    towns: int = 8
    arterial_fraction: float = 0.05
    rural_fraction: float = 0.05
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.towns < 1:
            raise InvalidParameterError(f"towns must be >= 1, got {self.towns}")
        if not 0.0 <= self.arterial_fraction < 1.0:
            raise InvalidParameterError("arterial_fraction must be in [0, 1)")
        if not 0.0 <= self.rural_fraction < 1.0:
            raise InvalidParameterError("rural_fraction must be in [0, 1)")
        if self.arterial_fraction + self.rural_fraction >= 1.0:
            raise InvalidParameterError(
                "arterial_fraction + rural_fraction must leave room for towns"
            )
        if self.jitter < 0.0:
            raise InvalidParameterError(f"jitter must be >= 0, got {self.jitter}")


def road_segments(
    n: int,
    seed: int = 0,
    config: RoadNetworkConfig = RoadNetworkConfig(),
) -> List[Segment]:
    """Generate approximately *n* road segments (exactly *n* are returned).

    Town sizes follow a Zipf-like distribution — one dominant city plus
    progressively smaller towns, mirroring real county maps.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    rng = random.Random(seed)
    lo, hi = config.bounds
    width = hi - lo

    n_arterial = int(n * config.arterial_fraction)
    n_rural = int(n * config.rural_fraction)
    n_urban = n - n_arterial - n_rural

    # Town centers and Zipf-ish weights (town i gets weight 1/(i+1)).
    centers = [
        (rng.uniform(lo + 0.1 * width, hi - 0.1 * width),
         rng.uniform(lo + 0.1 * width, hi - 0.1 * width))
        for _ in range(config.towns)
    ]
    weights = [1.0 / (i + 1) for i in range(config.towns)]
    total_weight = sum(weights)
    quotas = [int(n_urban * w / total_weight) for w in weights]
    quotas[0] += n_urban - sum(quotas)

    segments: List[Segment] = []
    for center, quota in zip(centers, quotas):
        segments.extend(_town_grid(center, quota, width, rng, config))

    segments.extend(_arterials(centers, n_arterial, rng))
    segments.extend(_rural(n_rural, lo, hi, rng))

    # Rounding above can land a few short; top up with rural filler.
    while len(segments) < n:
        segments.extend(_rural(n - len(segments), lo, hi, rng))
    return segments[:n]


def _town_grid(
    center: Tuple[float, float],
    quota: int,
    map_width: float,
    rng: random.Random,
    config: RoadNetworkConfig,
) -> List[Segment]:
    """A jittered street grid around *center* with about *quota* segments.

    A g x g grid of intersections yields ``2 * g * (g - 1)`` street
    segments; town radius grows with quota (bigger towns sprawl).
    """
    if quota <= 0:
        return []
    g = max(2, int(math.sqrt(quota / 2.0)) + 1)
    radius = map_width * (0.02 + 0.001 * g)
    step = 2.0 * radius / (g - 1)
    jitter = config.jitter * step

    nodes = {}
    for i in range(g):
        for j in range(g):
            x = center[0] - radius + i * step + rng.uniform(-jitter, jitter)
            y = center[1] - radius + j * step + rng.uniform(-jitter, jitter)
            nodes[(i, j)] = (x, y)

    streets: List[Segment] = []
    for i in range(g):
        for j in range(g):
            if i + 1 < g:
                streets.append(Segment(nodes[(i, j)], nodes[(i + 1, j)]))
            if j + 1 < g:
                streets.append(Segment(nodes[(i, j)], nodes[(i, j + 1)]))
    rng.shuffle(streets)
    return streets[:quota]


def _arterials(
    centers: List[Tuple[float, float]],
    quota: int,
    rng: random.Random,
) -> List[Segment]:
    """Multi-segment roads between random pairs of town centers."""
    if quota <= 0 or len(centers) < 2:
        return []
    segments: List[Segment] = []
    while len(segments) < quota:
        a, b = rng.sample(centers, 2)
        hops = max(2, quota // 10)
        hops = min(hops, quota - len(segments))
        previous = a
        for h in range(1, hops + 1):
            t = h / hops
            waypoint = (
                a[0] + (b[0] - a[0]) * t + rng.uniform(-5.0, 5.0),
                a[1] + (b[1] - a[1]) * t + rng.uniform(-5.0, 5.0),
            )
            segments.append(Segment(previous, waypoint))
            previous = waypoint
    return segments[:quota]


def _rural(
    quota: int, lo: float, hi: float, rng: random.Random
) -> List[Segment]:
    """Short isolated segments scattered over the whole map."""
    segments = []
    for _ in range(max(0, quota)):
        x = rng.uniform(lo, hi)
        y = rng.uniform(lo, hi)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        length = rng.uniform(1.0, 8.0)
        end = (
            min(max(x + length * math.cos(angle), lo), hi),
            min(max(y + length * math.sin(angle), lo), hi),
        )
        segments.append(Segment((x, y), end))
    return segments
