"""Loading user data: CSV points and segments.

The experiments run on generated workloads, but a downstream user's first
question is "how do I index *my* file?".  These loaders cover the common
cases — delimited text with coordinate columns — with explicit, validated
column selection and line-precise error messages.
"""

from __future__ import annotations

import csv
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.errors import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.segment import Segment

__all__ = ["load_points_csv", "load_segments_csv"]


def load_points_csv(
    path: Union[str, "object"],
    coordinate_columns: Sequence[str] = ("x", "y"),
    payload_column: Optional[str] = None,
    delimiter: str = ",",
) -> List[Tuple[Point, Any]]:
    """Read ``(point, payload)`` pairs from a delimited file with a header.

    Args:
        path: The file to read.
        coordinate_columns: Header names of the coordinate columns, in
            axis order (any dimension).
        payload_column: Header name of the payload column; when omitted
            the 0-based row index is used.
        delimiter: Field separator.

    Raises :class:`InvalidParameterError` with the offending line number
    on missing columns or unparsable coordinates.
    """
    if len(coordinate_columns) < 1:
        raise InvalidParameterError("need at least one coordinate column")
    items: List[Tuple[Point, Any]] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        _check_columns(
            reader.fieldnames, coordinate_columns, payload_column, path
        )
        for index, row in enumerate(reader):
            point = tuple(
                _parse_float(row, name, index) for name in coordinate_columns
            )
            payload = row[payload_column] if payload_column else index
            items.append((point, payload))
    return items


def load_segments_csv(
    path: Union[str, "object"],
    start_columns: Sequence[str] = ("x1", "y1"),
    end_columns: Sequence[str] = ("x2", "y2"),
    payload_column: Optional[str] = None,
    delimiter: str = ",",
) -> List[Tuple[Segment, Any]]:
    """Read ``(segment, payload)`` pairs (e.g. road segments) from a CSV.

    ``start_columns`` and ``end_columns`` name the endpoint coordinates in
    axis order and must have equal lengths.
    """
    if len(start_columns) != len(end_columns) or not start_columns:
        raise InvalidParameterError(
            "start_columns and end_columns must be non-empty and equal-length"
        )
    items: List[Tuple[Segment, Any]] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        _check_columns(
            reader.fieldnames,
            tuple(start_columns) + tuple(end_columns),
            payload_column,
            path,
        )
        for index, row in enumerate(reader):
            start = tuple(
                _parse_float(row, name, index) for name in start_columns
            )
            end = tuple(_parse_float(row, name, index) for name in end_columns)
            payload = row[payload_column] if payload_column else index
            items.append((Segment(start, end), payload))
    return items


def _check_columns(fieldnames, required, payload_column, path) -> None:
    available = set(fieldnames or ())
    wanted = set(required)
    if payload_column:
        wanted.add(payload_column)
    missing = sorted(wanted - available)
    if missing:
        raise InvalidParameterError(
            f"{path}: missing column(s) {missing}; header has "
            f"{sorted(available)}"
        )


def _parse_float(row: dict, name: str, index: int) -> float:
    raw = row[name]
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"row {index + 1}: column {name!r} value {raw!r} is not a number"
        ) from None
