"""Query-point samplers for the experiments.

The paper issues queries from uniformly random locations; a second,
data-correlated sampler places queries near indexed objects (the common
"user standing on a street asks for the nearest X" workload).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.point import Point

__all__ = [
    "query_points_uniform",
    "query_points_near_data",
    "query_points_clustered_sessions",
]


def query_points_uniform(
    n: int,
    seed: int = 0,
    dimension: int = 2,
    bounds: Tuple[float, float] = (0.0, 1000.0),
) -> List[Point]:
    """*n* query points uniform over the map extent."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    lo, hi = bounds
    rng = random.Random(seed)
    return [
        tuple(rng.uniform(lo, hi) for _ in range(dimension)) for _ in range(n)
    ]


def query_points_near_data(
    n: int,
    data_points: Sequence[Sequence[float]],
    seed: int = 0,
    noise: float = 25.0,
) -> List[Point]:
    """*n* query points: a random datum plus Gaussian noise per coordinate.

    Models users querying from locations correlated with the data (e.g.
    standing in a city asking for nearby restaurants).
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if not data_points:
        raise InvalidParameterError("data_points must be non-empty")
    if noise < 0:
        raise InvalidParameterError(f"noise must be >= 0, got {noise}")
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        base = data_points[rng.randrange(len(data_points))]
        queries.append(tuple(rng.gauss(float(c), noise) for c in base))
    return queries


def query_points_clustered_sessions(
    n: int,
    data_points: Sequence[Sequence[float]],
    distinct: int = 0,
    seed: int = 0,
    noise: float = 25.0,
) -> List[Point]:
    """*n* queries drawn **with repetition** from a small hot-spot set.

    Models the serving-layer workload (Maneewongvatana & Mount's
    clustered query analysis): many users ask from the same popular
    locations, so a batch contains the same query point over and over —
    exactly where a result cache pays off.  ``distinct`` is the number of
    hot spots (default ``max(1, n // 10)``); each is a data point plus
    Gaussian noise, and the batch samples them uniformly.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if distinct < 0:
        raise InvalidParameterError(f"distinct must be >= 0, got {distinct}")
    if distinct == 0:
        distinct = max(1, n // 10)
    hot_spots = query_points_near_data(
        min(distinct, n) if n else distinct,
        data_points,
        seed=seed,
        noise=noise,
    )
    rng = random.Random(seed + 0x5E55)
    return [hot_spots[rng.randrange(len(hot_spots))] for _ in range(n)]
