"""Query-point samplers for the experiments.

The paper issues queries from uniformly random locations; a second,
data-correlated sampler places queries near indexed objects (the common
"user standing on a street asks for the nearest X" workload).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.point import Point

__all__ = ["query_points_uniform", "query_points_near_data"]


def query_points_uniform(
    n: int,
    seed: int = 0,
    dimension: int = 2,
    bounds: Tuple[float, float] = (0.0, 1000.0),
) -> List[Point]:
    """*n* query points uniform over the map extent."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    lo, hi = bounds
    rng = random.Random(seed)
    return [
        tuple(rng.uniform(lo, hi) for _ in range(dimension)) for _ in range(n)
    ]


def query_points_near_data(
    n: int,
    data_points: Sequence[Sequence[float]],
    seed: int = 0,
    noise: float = 25.0,
) -> List[Point]:
    """*n* query points: a random datum plus Gaussian noise per coordinate.

    Models users querying from locations correlated with the data (e.g.
    standing in a city asking for nearby restaurants).
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if not data_points:
        raise InvalidParameterError("data_points must be non-empty")
    if noise < 0:
        raise InvalidParameterError(f"noise must be >= 0, got {noise}")
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        base = data_points[rng.randrange(len(data_points))]
        queries.append(tuple(rng.gauss(float(c), noise) for c in base))
    return queries
