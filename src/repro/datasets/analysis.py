"""Workload characterization: quantify how skewed/clustered a dataset is.

DESIGN.md claims the synthetic road generator preserves the *spatial
character* of the paper's TIGER data (short clustered segments).  This
module makes those claims measurable: grid-occupancy skew, mean
nearest-pair distance, and length statistics — used both by tests that pin
the generators' behaviour and by anyone validating their own data against
the experiment assumptions.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

__all__ = ["PointSetSummary", "SegmentSetSummary", "describe_points",
           "describe_segments"]


@dataclass(frozen=True)
class PointSetSummary:
    """Distribution statistics for a 2-D point set."""

    count: int
    bounds: Rect
    #: Fraction of occupied grid cells (of a sqrt(n) x sqrt(n) grid).
    occupancy: float
    #: Gini coefficient of per-cell counts (0 = perfectly even, -> 1 = all
    #: points in one cell).
    gini: float
    #: Fraction of points in the densest 5% of occupied cells.
    top_cells_share: float


@dataclass(frozen=True)
class SegmentSetSummary:
    """Distribution statistics for a 2-D segment set."""

    count: int
    bounds: Rect
    mean_length: float
    median_length: float
    #: Segment lengths relative to the bounding-box diagonal.
    relative_median_length: float
    #: Clustering of segment midpoints (same measure as point sets).
    midpoint_gini: float


def describe_points(points: Sequence[Sequence[float]]) -> PointSetSummary:
    """Summarize a non-empty 2-D point set."""
    if not points:
        raise InvalidParameterError("cannot describe an empty point set")
    for p in points:
        if len(p) != 2:
            raise InvalidParameterError("describe_points is 2-D only")
    bounds = Rect.from_points(points)
    cells, counts = _grid_histogram(points, bounds)
    occupied = [c for c in counts.values() if c > 0]
    occupancy = len(occupied) / float(cells * cells)
    gini = _gini(sorted(counts.get((x, y), 0) for x in range(cells)
                        for y in range(cells)))
    top = sorted(occupied, reverse=True)
    top_n = max(1, len(occupied) // 20)
    top_share = sum(top[:top_n]) / float(len(points))
    return PointSetSummary(
        count=len(points),
        bounds=bounds,
        occupancy=occupancy,
        gini=gini,
        top_cells_share=top_share,
    )


def describe_segments(segments: Sequence[Segment]) -> SegmentSetSummary:
    """Summarize a non-empty 2-D segment set."""
    if not segments:
        raise InvalidParameterError("cannot describe an empty segment set")
    midpoints = [s.midpoint() for s in segments]
    lengths = sorted(s.length() for s in segments)
    bounds = Rect.union_all(s.mbr() for s in segments)
    diagonal = math.sqrt(
        sum((hi - lo) ** 2 for lo, hi in zip(bounds.lo, bounds.hi))
    )
    median_length = lengths[len(lengths) // 2]
    return SegmentSetSummary(
        count=len(segments),
        bounds=bounds,
        mean_length=statistics.mean(lengths),
        median_length=median_length,
        relative_median_length=(
            median_length / diagonal if diagonal > 0 else 0.0
        ),
        midpoint_gini=describe_points(midpoints).gini,
    )


def _grid_histogram(
    points: Sequence[Sequence[float]], bounds: Rect
) -> Tuple[int, Dict[Tuple[int, int], int]]:
    cells = max(2, int(math.sqrt(len(points))))
    counts: Dict[Tuple[int, int], int] = {}
    for p in points:
        key = []
        for c, lo, hi in zip(p, bounds.lo, bounds.hi):
            width = hi - lo
            if width <= 0:
                key.append(0)
                continue
            index = int((c - lo) / width * cells)
            key.append(min(max(index, 0), cells - 1))
        counts[(key[0], key[1])] = counts.get((key[0], key[1]), 0) + 1
    return cells, counts


def _gini(sorted_values: List[int]) -> float:
    """Gini coefficient of a sorted, nonnegative sequence."""
    n = len(sorted_values)
    total = sum(sorted_values)
    if n == 0 or total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(sorted_values, start=1):
        cumulative += value
        weighted += cumulative
    # Standard formula: G = (n + 1 - 2 * sum(cum)/total) / n
    return (n + 1 - 2 * weighted / total) / n
