"""A circuit breaker for the physical page-read path.

:class:`RetryPolicy` handles *transient* faults by paying more latency;
a breaker handles *persistent* ones by refusing to pay at all.  When a
device degrades hard (every read erroring), retry loops multiply the
damage — each query grinds through ``attempts × backoff`` per page while
holding a worker.  The breaker sits above the retry layer in
:class:`repro.rtree.disk.DiskRTree`: after ``failure_threshold``
consecutive failed reads it *opens*, and while open every page load is
refused instantly and degrades to ``on_corrupt="skip"`` semantics (the
subtree is dropped from results, counted in ``pages_skipped``, and the
query is flagged degraded) regardless of the tree's configured policy —
the explicit trade of partial answers for bounded latency.

States follow the classic machine:

- ``closed`` — healthy; reads flow, consecutive failures are counted.
- ``open`` — tripped; reads are refused until a cooldown (decorrelated
  jitter: ``min(cap, uniform(base, 3 * previous))``) elapses, so a
  thundering herd of recovering workers does not re-probe in lockstep.
- ``half-open`` — cooldown elapsed; up to ``probes`` trial reads are
  allowed through.  A failure re-opens (with a grown cooldown); enough
  successes close and reset.

The legal transition set is exactly ``closed→open``, ``open→half-open``,
``half-open→closed`` and ``half-open→open``; every transition is
recorded in :attr:`transitions` so the chaos harness can certify no
illegal jump ever happened.  All methods are thread-safe.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.errors import InvalidParameterError

__all__ = ["CircuitBreaker", "BREAKER_STATE_CODES"]

#: Gauge encoding for dashboards: healthy states sort low.
BREAKER_STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}

_LEGAL = frozenset(
    [
        ("closed", "open"),
        ("open", "half-open"),
        ("half-open", "closed"),
        ("half-open", "open"),
    ]
)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with jittered cooldowns.

    Args:
        failure_threshold: Consecutive failures (in ``closed`` state)
            that trip the breaker open.
        cooldown: Base cooldown in seconds before an open breaker lets a
            probe through; subsequent trips grow it with decorrelated
            jitter up to *max_cooldown*.
        max_cooldown: Ceiling on any single cooldown.
        probes: Trial reads allowed through while ``half-open``; that
            many consecutive probe successes close the breaker.
        clock: Injectable monotonic clock (tests pass a fake).
        rng: Injectable ``random.Random`` for the jitter.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 0.05,
        max_cooldown: float = 5.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        if failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0 or max_cooldown < cooldown:
            raise InvalidParameterError(
                "need 0 < cooldown <= max_cooldown, got "
                f"cooldown={cooldown}, max_cooldown={max_cooldown}"
            )
        if probes < 1:
            raise InvalidParameterError(f"probes must be >= 1, got {probes}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown
        self.probes = probes
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._probe_budget = 0
        self._probe_successes = 0
        self._current_cooldown = cooldown
        self._open_until = 0.0
        #: (monotonic_time, from_state, to_state) history, for audits.
        self.transitions: List[Tuple[float, str, str]] = []
        #: Loads refused while open (the skip-degradation counter).
        self.rejections = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"`` or ``"half-open"``.

        Reading the state advances ``open → half-open`` if the cooldown
        has elapsed, so observers and callers agree.
        """
        with self._lock:
            self._maybe_half_open()
            return self._state

    def state_code(self) -> int:
        """Numeric gauge value (closed=0, half-open=1, open=2)."""
        return BREAKER_STATE_CODES[self.state]

    def allow(self) -> bool:
        """Whether the caller may attempt the protected operation now.

        ``False`` means refuse instantly (and is tallied in
        :attr:`rejections`); the disk tree maps that to skip semantics.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half-open" and self._probe_budget > 0:
                self._probe_budget -= 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """Report that a permitted operation succeeded."""
        with self._lock:
            if self._state == "half-open":
                self._probe_successes += 1
                if self._probe_successes >= self.probes:
                    self._transition("closed")
                    self._failures = 0
                    self._current_cooldown = self.cooldown
            elif self._state == "closed":
                self._failures = 0

    def record_failure(self) -> None:
        """Report that a permitted operation failed."""
        with self._lock:
            if self._state == "half-open":
                self._trip()
            elif self._state == "closed":
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        """Open (or re-open) with a decorrelated-jitter cooldown."""
        self._transition("open")
        # Decorrelated jitter (Brooker): each cooldown is drawn from
        # [base, 3 * previous], capped — grows on repeated trips without
        # synchronizing independent breakers.
        self._current_cooldown = min(
            self.max_cooldown,
            self._rng.uniform(self.cooldown, self._current_cooldown * 3.0),
        )
        self._open_until = self._clock() + self._current_cooldown
        self._failures = 0
        self._probe_successes = 0

    def _maybe_half_open(self) -> None:
        if self._state == "open" and self._clock() >= self._open_until:
            self._transition("half-open")
            self._probe_budget = self.probes
            self._probe_successes = 0

    def _transition(self, to_state: str) -> None:
        assert (self._state, to_state) in _LEGAL, (self._state, to_state)
        self.transitions.append((self._clock(), self._state, to_state))
        self._state = to_state

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.failure_threshold}, "
            f"rejections={self.rejections})"
        )
