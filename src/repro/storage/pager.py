"""Byte-level page model: translate a page size into an R-tree fanout.

The paper sizes R-tree nodes to disk pages (it reports experiments with 1 KiB
pages).  :class:`PageModel` reproduces that sizing arithmetic so experiments
can say "page_size=1024, dimension=2" and get the same branching factor a
disk-resident implementation would have.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["PageModel"]

_FLOAT_BYTES = 8
_POINTER_BYTES = 4
_HEADER_BYTES = 16


@dataclass(frozen=True)
class PageModel:
    """Derives node capacities from a byte-level page layout.

    Each entry stores an MBR (``2 * dimension`` coordinates) plus a child
    pointer or object identifier.  Each node spends :data:`header_bytes` on
    bookkeeping (entry count, level, parent pointer).

    Attributes:
        page_size: Page capacity in bytes (e.g. 1024, 4096).
        dimension: Dimensionality of the indexed space.
        coord_bytes: Bytes per coordinate (8 for IEEE doubles).
        pointer_bytes: Bytes per child pointer / object id.
        header_bytes: Fixed per-node overhead.
    """

    page_size: int = 1024
    dimension: int = 2
    coord_bytes: int = _FLOAT_BYTES
    pointer_bytes: int = _POINTER_BYTES
    header_bytes: int = _HEADER_BYTES

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise InvalidParameterError(f"page_size must be > 0, got {self.page_size}")
        if self.dimension < 1:
            raise InvalidParameterError(f"dimension must be >= 1, got {self.dimension}")
        if self.entry_bytes() > self.page_size - self.header_bytes:
            raise InvalidParameterError(
                f"page_size {self.page_size} too small for even one "
                f"{self.dimension}-dimensional entry"
            )

    def entry_bytes(self) -> int:
        """Bytes per entry: one MBR plus one pointer."""
        return 2 * self.dimension * self.coord_bytes + self.pointer_bytes

    def max_entries(self) -> int:
        """Largest number of entries a page can hold (the fanout *M*)."""
        usable = self.page_size - self.header_bytes
        return max(usable // self.entry_bytes(), 2)

    def min_entries(self, fill_factor: float = 0.4) -> int:
        """Minimum entries per non-root node (*m*), per Guttman's m <= M/2.

        The paper (and most implementations) use 40% of *M*; the value is
        clamped to ``[1, M // 2]`` so the split algorithms always succeed.
        """
        if not 0.0 < fill_factor <= 0.5:
            raise InvalidParameterError(
                f"fill_factor must be in (0, 0.5], got {fill_factor}"
            )
        m = int(self.max_entries() * fill_factor)
        return min(max(m, 1), self.max_entries() // 2)

    def pages_for(self, entry_count: int) -> int:
        """Lower bound on leaf pages needed to store *entry_count* objects."""
        if entry_count < 0:
            raise InvalidParameterError("entry_count must be >= 0")
        if entry_count == 0:
            return 0
        per_page = self.max_entries()
        return -(-entry_count // per_page)
