"""Buffer pools for the paper's buffering experiments.

The paper studies how an LRU buffer reduces the number of *disk* reads when
queries are correlated (consecutive NN queries revisit the top levels of the
R-tree).  A buffer pool is itself an :class:`AccessTracker`: logical accesses
arrive at the pool; hits are absorbed; misses evict per the policy and are
forwarded to the wrapped inner tracker, which therefore counts physical reads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidParameterError
from repro.storage.tracker import AccessTracker, CountingTracker

__all__ = ["BufferStats", "BufferPool", "LruBufferPool", "FifoBufferPool"]


@dataclass
class BufferStats:
    """Hit/miss totals for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total logical accesses seen by the pool."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical accesses served from the buffer (0 if none)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def as_dict(self) -> dict:
        """Flat counter dict (the metrics registry's export protocol)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "accesses": self.accesses,
            "hit_ratio": self.hit_ratio,
        }


class BufferPool(AccessTracker):
    """Base class for fixed-capacity page buffers.

    ``capacity`` is the number of pages the pool can hold.  A capacity of 0
    is legal and makes every access a miss (the unbuffered baseline in the
    paper's plots).  Misses are forwarded to *inner*, which defaults to a
    fresh :class:`CountingTracker` so physical reads are always countable.
    """

    def __init__(self, capacity: int, inner: Optional[AccessTracker] = None) -> None:
        if capacity < 0:
            raise InvalidParameterError(f"buffer capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.inner = inner if inner is not None else CountingTracker()
        self.stats = BufferStats()
        self._pages: "OrderedDict[int, bool]" = OrderedDict()

    def access(self, page_id: int, is_leaf: bool) -> None:
        if page_id in self._pages:
            self.stats.hits += 1
            self._on_hit(page_id)
            return
        self.stats.misses += 1
        self.inner.access(page_id, is_leaf)
        if self.capacity == 0:
            return
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        self._pages[page_id] = is_leaf

    def _on_hit(self, page_id: int) -> None:
        """Policy hook invoked when *page_id* is found in the buffer."""

    def reset(self) -> None:
        """Clear the buffer contents, the stats, and the inner tracker."""
        self.stats = BufferStats()
        self._pages.clear()
        self.inner.reset()

    def resident_pages(self) -> int:
        """Number of pages currently held."""
        return len(self._pages)

    def contains(self, page_id: int) -> bool:
        """True if *page_id* is currently buffered."""
        return page_id in self._pages


class LruBufferPool(BufferPool):
    """Least-recently-used replacement (the policy the paper evaluates)."""

    def _on_hit(self, page_id: int) -> None:
        self._pages.move_to_end(page_id)


class FifoBufferPool(BufferPool):
    """First-in-first-out replacement; a hit does not refresh recency."""
