"""Disk-page simulation: access tracking, buffer pools, page-size model.

The SIGMOD'95 paper reports its results as *R-tree pages accessed per query*.
In this reproduction every R-tree node is one page, and every node visit by
any algorithm flows through an :class:`AccessTracker`.  Wrapping the tracker
in a :class:`BufferPool` simulates the paper's buffering experiments: a
buffered access only counts as a disk read on a miss.

The physical layer lives here too: :class:`PageFile` (fixed-size pages,
fsync-backed durability), :class:`RetryPolicy` (bounded exponential
backoff for transient I/O), and :class:`FaultInjectingPageFile`
(deterministic corruption for the fault-tolerance test matrix).
"""

from repro.storage.tracker import (
    AccessStats,
    AccessTracker,
    CountingTracker,
    NullTracker,
    ShardedTracker,
)
from repro.storage.breaker import BREAKER_STATE_CODES, CircuitBreaker
from repro.storage.buffer import BufferPool, BufferStats, FifoBufferPool, LruBufferPool
from repro.storage.cost import DiskCostModel
from repro.storage.faults import FaultInjectingPageFile, FaultPlan
from repro.storage.pagefile import PageFile, PageFileError, RetryPolicy
from repro.storage.pager import PageModel
from repro.storage.replay import ReplayResult, TraceRecorder, replay

__all__ = [
    "AccessStats",
    "AccessTracker",
    "BREAKER_STATE_CODES",
    "BufferPool",
    "BufferStats",
    "CircuitBreaker",
    "CountingTracker",
    "DiskCostModel",
    "FaultInjectingPageFile",
    "FaultPlan",
    "FifoBufferPool",
    "LruBufferPool",
    "NullTracker",
    "PageFile",
    "PageFileError",
    "PageModel",
    "RetryPolicy",
    "ReplayResult",
    "ShardedTracker",
    "TraceRecorder",
    "replay",
]
