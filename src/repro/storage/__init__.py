"""Disk-page simulation: access tracking, buffer pools, page-size model.

The SIGMOD'95 paper reports its results as *R-tree pages accessed per query*.
In this reproduction every R-tree node is one page, and every node visit by
any algorithm flows through an :class:`AccessTracker`.  Wrapping the tracker
in a :class:`BufferPool` simulates the paper's buffering experiments: a
buffered access only counts as a disk read on a miss.
"""

from repro.storage.tracker import (
    AccessStats,
    AccessTracker,
    CountingTracker,
    NullTracker,
)
from repro.storage.buffer import BufferPool, BufferStats, FifoBufferPool, LruBufferPool
from repro.storage.cost import DiskCostModel
from repro.storage.pagefile import PageFile, PageFileError
from repro.storage.pager import PageModel
from repro.storage.replay import ReplayResult, TraceRecorder, replay

__all__ = [
    "AccessStats",
    "AccessTracker",
    "BufferPool",
    "BufferStats",
    "CountingTracker",
    "DiskCostModel",
    "FifoBufferPool",
    "LruBufferPool",
    "NullTracker",
    "PageFile",
    "PageFileError",
    "PageModel",
    "ReplayResult",
    "TraceRecorder",
    "replay",
]
