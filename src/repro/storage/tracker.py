"""Access trackers: the accounting hook every node visit goes through.

A tracker receives ``access(page_id, is_leaf)`` events.  The two concrete
implementations are :class:`NullTracker` (no-op, for callers that do not care
about I/O accounting) and :class:`CountingTracker` (tallies accesses split by
node kind).  Buffer pools (see :mod:`repro.storage.buffer`) are trackers too,
layered on top of an inner tracker that receives only the *misses*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["AccessTracker", "AccessStats", "NullTracker", "CountingTracker"]


class AccessTracker:
    """Interface for page-access accounting.

    Subclasses override :meth:`access`.  The default implementation ignores
    the event, so ``AccessTracker()`` itself behaves like a null tracker.
    """

    def access(self, page_id: int, is_leaf: bool) -> None:
        """Record that the page *page_id* was read.

        ``is_leaf`` tells the tracker whether the page holds leaf entries
        (actual objects) or internal entries (child pointers); the paper's
        plots distinguish the two.
        """

    def reset(self) -> None:
        """Clear any accumulated statistics."""


class NullTracker(AccessTracker):
    """Tracker that records nothing; useful as an explicit default."""


@dataclass
class AccessStats:
    """Totals accumulated by a :class:`CountingTracker`."""

    total: int = 0
    leaf: int = 0
    internal: int = 0
    unique_pages: int = 0
    per_page: Dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> "AccessStats":
        """Deep copy of the current totals (per-page map included)."""
        return AccessStats(
            total=self.total,
            leaf=self.leaf,
            internal=self.internal,
            unique_pages=self.unique_pages,
            per_page=dict(self.per_page),
        )


class CountingTracker(AccessTracker):
    """Tracker that counts every access, split by leaf/internal pages."""

    def __init__(self) -> None:
        self.stats = AccessStats()

    def access(self, page_id: int, is_leaf: bool) -> None:
        stats = self.stats
        stats.total += 1
        if is_leaf:
            stats.leaf += 1
        else:
            stats.internal += 1
        count = stats.per_page.get(page_id, 0)
        if count == 0:
            stats.unique_pages += 1
        stats.per_page[page_id] = count + 1

    def reset(self) -> None:
        self.stats = AccessStats()
