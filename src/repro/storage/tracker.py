"""Access trackers: the accounting hook every node visit goes through.

A tracker receives ``access(page_id, is_leaf)`` events.  The two concrete
implementations are :class:`NullTracker` (no-op, for callers that do not care
about I/O accounting) and :class:`CountingTracker` (tallies accesses split by
node kind).  Buffer pools (see :mod:`repro.storage.buffer`) are trackers too,
layered on top of an inner tracker that receives only the *misses*.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = [
    "AccessTracker",
    "AccessStats",
    "NullTracker",
    "CountingTracker",
    "ShardedTracker",
]


class AccessTracker:
    """Interface for page-access accounting.

    Subclasses override :meth:`access`.  The default implementation ignores
    the event, so ``AccessTracker()`` itself behaves like a null tracker.
    """

    def access(self, page_id: int, is_leaf: bool) -> None:
        """Record that the page *page_id* was read.

        ``is_leaf`` tells the tracker whether the page holds leaf entries
        (actual objects) or internal entries (child pointers); the paper's
        plots distinguish the two.
        """

    def reset(self) -> None:
        """Clear any accumulated statistics."""


class NullTracker(AccessTracker):
    """Tracker that records nothing; useful as an explicit default."""


@dataclass
class AccessStats:
    """Totals accumulated by a :class:`CountingTracker`."""

    total: int = 0
    leaf: int = 0
    internal: int = 0
    unique_pages: int = 0
    per_page: Dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> "AccessStats":
        """Deep copy of the current totals (per-page map included)."""
        return AccessStats(
            total=self.total,
            leaf=self.leaf,
            internal=self.internal,
            unique_pages=self.unique_pages,
            per_page=dict(self.per_page),
        )

    def merge(self, other: "AccessStats") -> None:
        """Accumulate *other* into this instance.

        ``unique_pages`` is recomputed from the merged per-page map, so a
        page touched by several shards is counted once.
        """
        self.total += other.total
        self.leaf += other.leaf
        self.internal += other.internal
        for page_id, count in other.per_page.items():
            self.per_page[page_id] = self.per_page.get(page_id, 0) + count
        self.unique_pages = len(self.per_page)

    def as_dict(self) -> Dict[str, int]:
        """Scalar totals only (the per-page map stays internal)."""
        return {
            "total": self.total,
            "leaf": self.leaf,
            "internal": self.internal,
            "unique_pages": self.unique_pages,
        }


class CountingTracker(AccessTracker):
    """Tracker that counts every access, split by leaf/internal pages."""

    def __init__(self) -> None:
        self.stats = AccessStats()

    def access(self, page_id: int, is_leaf: bool) -> None:
        stats = self.stats
        stats.total += 1
        if is_leaf:
            stats.leaf += 1
        else:
            stats.internal += 1
        count = stats.per_page.get(page_id, 0)
        if count == 0:
            stats.unique_pages += 1
        stats.per_page[page_id] = count + 1

    def reset(self) -> None:
        self.stats = AccessStats()


class ShardedTracker(AccessTracker):
    """A tracker that concurrent workers can share without contention.

    Each thread that records an access lazily receives its own private
    *shard* (built by ``shard_factory``; default :class:`CountingTracker`,
    but a buffer-pool factory works too).  The hot path is therefore
    lock-free — a thread only ever touches its own shard — while
    :meth:`aggregate` walks the shard list exactly once, so no access is
    ever double-counted no matter how many threads contributed.

    This is how :class:`repro.service.QueryEngine` reuses one logical
    tracker across its whole worker pool.
    """

    def __init__(
        self,
        shard_factory: Callable[[], AccessTracker] = CountingTracker,
    ) -> None:
        self._factory = shard_factory
        self._local = threading.local()
        self._lock = threading.Lock()
        self._shards: List[AccessTracker] = []

    def access(self, page_id: int, is_leaf: bool) -> None:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = self._factory()
            self._local.shard = shard
            with self._lock:
                self._shards.append(shard)
        shard.access(page_id, is_leaf)

    def shards(self) -> List[AccessTracker]:
        """All shards created so far (one per contributing thread)."""
        with self._lock:
            return list(self._shards)

    def aggregate(self) -> AccessStats:
        """Merged *logical* access totals across every shard.

        Works for counting shards directly and for buffer-pool shards by
        reading the pool's inner (physical) counter — see
        :meth:`physical_reads` for the miss-only total.
        """
        merged = AccessStats()
        for shard in self.shards():
            stats = getattr(shard, "stats", None)
            if isinstance(stats, AccessStats):
                merged.merge(stats)
            else:
                inner_stats = getattr(
                    getattr(shard, "inner", None), "stats", None
                )
                if isinstance(inner_stats, AccessStats):
                    merged.merge(inner_stats)
        return merged

    def physical_reads(self) -> int:
        """Total physical reads across shards.

        For buffer-pool shards this is the sum of their inner (miss)
        counters; for plain counting shards every access is physical.
        """
        total = 0
        for shard in self.shards():
            inner_stats = getattr(getattr(shard, "inner", None), "stats", None)
            if isinstance(inner_stats, AccessStats):
                total += inner_stats.total
                continue
            stats = getattr(shard, "stats", None)
            if isinstance(stats, AccessStats):
                total += stats.total
        return total

    def buffer_hits_and_misses(self) -> "tuple[int, int]":
        """Summed ``(hits, misses)`` over buffer-pool shards (0s otherwise)."""
        hits = 0
        misses = 0
        for shard in self.shards():
            stats = getattr(shard, "stats", None)
            if hasattr(stats, "hits") and hasattr(stats, "misses"):
                hits += stats.hits
                misses += stats.misses
        return hits, misses

    def reset(self) -> None:
        for shard in self.shards():
            shard.reset()
