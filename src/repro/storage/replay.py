"""Trace capture and buffer-policy replay, including Belady's optimal.

The buffering experiment (E3) measures LRU online.  Because every access
flows through a tracker, we can also *capture* the page-access trace of a
whole query batch and replay it under different replacement policies —
including Belady's clairvoyant OPT, which evicts the page whose next use
is farthest in the future and lower-bounds every realizable policy.  The
gap between LRU and OPT tells how much headroom smarter caching could buy
(experiment E12).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import InvalidParameterError
from repro.storage.tracker import AccessTracker

__all__ = ["TraceRecorder", "ReplayResult", "replay"]

_POLICIES = ("lru", "fifo", "optimal")


class TraceRecorder(AccessTracker):
    """Tracker that records the exact sequence of page accesses."""

    def __init__(self) -> None:
        self.trace: List[int] = []

    def access(self, page_id: int, is_leaf: bool) -> None:
        self.trace.append(page_id)

    def reset(self) -> None:
        self.trace = []


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a trace under one policy and capacity."""

    policy: str
    capacity: int
    accesses: int
    hits: int
    misses: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from the buffer."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that went to disk."""
        return 1.0 - self.hit_ratio if self.accesses else 0.0


def replay(trace: Sequence[int], capacity: int, policy: str) -> ReplayResult:
    """Replay *trace* through a buffer of *capacity* pages under *policy*.

    Policies: ``"lru"``, ``"fifo"``, and ``"optimal"`` (Belady's MIN —
    requires the whole trace up front, which is exactly what we have).
    """
    if capacity < 0:
        raise InvalidParameterError(f"capacity must be >= 0, got {capacity}")
    if policy not in _POLICIES:
        raise InvalidParameterError(
            f"policy must be one of {_POLICIES}, got {policy!r}"
        )
    if capacity == 0:
        return ReplayResult(policy, 0, len(trace), 0, len(trace))
    if policy == "optimal":
        hits, misses = _replay_optimal(trace, capacity)
    else:
        hits, misses = _replay_queue(trace, capacity, refresh=policy == "lru")
    return ReplayResult(policy, capacity, len(trace), hits, misses)


def _replay_queue(
    trace: Sequence[int], capacity: int, refresh: bool
) -> tuple:
    resident: "OrderedDict[int, None]" = OrderedDict()
    hits = misses = 0
    for page in trace:
        if page in resident:
            hits += 1
            if refresh:
                resident.move_to_end(page)
            continue
        misses += 1
        if len(resident) >= capacity:
            resident.popitem(last=False)
        resident[page] = None
    return hits, misses


def _replay_optimal(trace: Sequence[int], capacity: int) -> tuple:
    """Belady's MIN: evict the resident page reused farthest in the future.

    Next-use positions are precomputed per access; a lazy max-heap of
    (next_use, page) entries handles eviction in O(log n) amortized, with
    stale heap entries discarded on pop.
    """
    infinity = len(trace) + 1
    next_use = _next_use_positions(trace, infinity)

    resident: Dict[int, int] = {}  # page -> its current next-use position
    heap: List[tuple] = []  # (-next_use, page)
    hits = misses = 0
    for index, page in enumerate(trace):
        upcoming = next_use[index]
        if page in resident:
            hits += 1
        else:
            misses += 1
            if len(resident) >= capacity:
                # Evict the page whose next use is farthest away; skip heap
                # entries that no longer reflect the page's current state.
                while True:
                    neg_use, candidate = heapq.heappop(heap)
                    if resident.get(candidate) == -neg_use:
                        del resident[candidate]
                        break
        resident[page] = upcoming
        heapq.heappush(heap, (-upcoming, page))
    return hits, misses


def _next_use_positions(trace: Sequence[int], infinity: int) -> List[int]:
    """For each access, the position of the *next* access to the same page."""
    next_use = [infinity] * len(trace)
    last_seen: Dict[int, int] = {}
    for index in range(len(trace) - 1, -1, -1):
        page = trace[index]
        next_use[index] = last_seen.get(page, infinity)
        last_seen[page] = index
    return next_use
