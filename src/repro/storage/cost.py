"""Disk cost model: translate page counts into estimated I/O time.

The paper reports raw page-access counts; this model converts them into
milliseconds for a parameterized device, so experiments can report an
estimated end-to-end cost alongside the counts.  Two presets bracket the
interesting range: a 1995-era spinning disk (where every random page read
costs a seek) and a modern NVMe device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["DiskCostModel"]


@dataclass(frozen=True)
class DiskCostModel:
    """A simple random/sequential read cost model.

    Attributes:
        seek_ms: Cost to position before a random read (seek + rotational
            latency for spinning media; controller latency for flash).
        transfer_ms_per_kib: Sequential transfer cost per KiB.
        page_kib: Page size in KiB.
    """

    seek_ms: float = 9.0
    transfer_ms_per_kib: float = 0.01
    page_kib: float = 1.0

    def __post_init__(self) -> None:
        if self.seek_ms < 0 or self.transfer_ms_per_kib < 0:
            raise InvalidParameterError("cost components must be >= 0")
        if self.page_kib <= 0:
            raise InvalidParameterError("page_kib must be > 0")

    @classmethod
    def disk_1995(cls) -> "DiskCostModel":
        """A mid-90s spinning disk: ~9 ms average seek, ~5 MB/s transfer."""
        return cls(seek_ms=9.0, transfer_ms_per_kib=0.2, page_kib=1.0)

    @classmethod
    def nvme_modern(cls) -> "DiskCostModel":
        """A modern NVMe SSD: ~70 µs random read, multi-GB/s transfer."""
        return cls(seek_ms=0.07, transfer_ms_per_kib=0.0003, page_kib=4.0)

    def random_read_ms(self, pages: float) -> float:
        """Estimated cost of *pages* independent random page reads."""
        if pages < 0:
            raise InvalidParameterError("pages must be >= 0")
        return pages * (self.seek_ms + self.transfer_ms_per_kib * self.page_kib)

    def sequential_read_ms(self, pages: float) -> float:
        """Estimated cost of reading *pages* contiguously (one seek)."""
        if pages < 0:
            raise InvalidParameterError("pages must be >= 0")
        if pages == 0:
            return 0.0
        return self.seek_ms + pages * self.transfer_ms_per_kib * self.page_kib

    def scan_break_even_pages(self) -> float:
        """Pages of random reads whose cost equals one full sequential scan
        of the same page count — the classic index-vs-scan crossover."""
        per_random = self.seek_ms + self.transfer_ms_per_kib * self.page_kib
        per_sequential = self.transfer_ms_per_kib * self.page_kib
        if per_sequential == 0.0:
            return float("inf")
        return per_random / per_sequential
