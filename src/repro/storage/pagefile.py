"""A fixed-size-page binary file: the physical layer of the disk R-tree.

:class:`PageFile` divides a file into equal pages addressed by page id.
Page 0 is reserved for the owner's header.  Reads and writes are whole
pages; a read counter exposes the physical I/O the disk R-tree performs.

:class:`RetryPolicy` lives here too: it is the production-side answer to
transient I/O failures (retry with bounded exponential backoff), used by
:class:`repro.rtree.disk.DiskRTree` around every physical page read.
"""

from __future__ import annotations

import errno
import os
import random
import time
from typing import Callable, Optional, Union

from repro.errors import (
    InvalidParameterError,
    PageFileError,
    TransientIOError,
)

__all__ = ["PageFile", "PageFileError", "RetryPolicy"]

_MIN_PAGE_SIZE = 64

#: OS error numbers worth retrying: intermittent device errors and
#: interrupted syscalls.  Everything else (ENOENT, EACCES, ...) is
#: deterministic and retrying would only delay the inevitable.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY}
)


def _is_transient(exc: BaseException) -> bool:
    if isinstance(exc, TransientIOError):
        return True
    return (
        isinstance(exc, OSError)
        and exc.errno in _TRANSIENT_ERRNOS
    )


#: Valid backoff jitter modes.
_VALID_JITTER = ("none", "decorrelated")


class RetryPolicy:
    """Bounded backoff for transient I/O errors.

    Args:
        attempts: Total tries, including the first (``1`` disables
            retrying entirely).
        base_delay: Sleep before the first retry, in seconds; with
            ``jitter="none"`` it doubles on each subsequent retry.
        max_delay: Ceiling on any single sleep.
        sleep: Injectable sleep function (tests pass a no-op).
        jitter: ``"none"`` (default) keeps the original deterministic
            doubling schedule; ``"decorrelated"`` draws each sleep from
            ``uniform(base_delay, 3 * previous)`` capped at
            ``max_delay`` — independent retriers spread out instead of
            hammering a recovering device in lockstep.
        max_elapsed: Optional cap, in seconds, on the total time
            :meth:`run` may spend (measured from its first attempt).
            Once exceeded, the next transient failure re-raises instead
            of sleeping again, so a retry storm can never blow through a
            caller's deadline.  ``None`` (default) keeps the attempts
            count as the only bound.
        rng: Injectable ``random.Random`` for the jitter.
        clock: Injectable monotonic clock for the elapsed-time cap.

    Only :class:`~repro.errors.TransientIOError` and ``OSError`` with a
    transient errno (``EIO``, ``EAGAIN``, ``EINTR``, ``EBUSY``) are
    retried; deterministic failures propagate immediately.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.001,
        max_delay: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        jitter: str = "none",
        max_elapsed: Optional[float] = None,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if attempts < 1:
            raise InvalidParameterError(
                f"attempts must be >= 1, got {attempts}"
            )
        if base_delay < 0 or max_delay < 0:
            raise InvalidParameterError("delays must be non-negative")
        if jitter not in _VALID_JITTER:
            raise InvalidParameterError(
                f"jitter must be one of {_VALID_JITTER}, got {jitter!r}"
            )
        if max_elapsed is not None and not max_elapsed > 0:
            raise InvalidParameterError(
                f"max_elapsed must be > 0, got {max_elapsed}"
            )
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.max_elapsed = max_elapsed
        self.retries_performed = 0
        #: Retry sequences abandoned by the elapsed-time cap.
        self.deadline_abandonments = 0
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock

    def run(self, fn: Callable[[], "object"]) -> "object":
        """Call *fn*, retrying transient failures; re-raises the last one."""
        delay = self.base_delay
        started = self._clock() if self.max_elapsed is not None else 0.0
        for attempt in range(self.attempts):
            try:
                return fn()
            except Exception as exc:
                if not _is_transient(exc) or attempt == self.attempts - 1:
                    raise
                if (
                    self.max_elapsed is not None
                    and self._clock() - started >= self.max_elapsed
                ):
                    self.deadline_abandonments += 1
                    raise
                self.retries_performed += 1
                if self.jitter == "decorrelated":
                    # Decorrelated jitter (Brooker): next sleep drawn
                    # from [base, 3 * previous], capped.
                    delay = min(
                        self.max_delay,
                        self._rng.uniform(self.base_delay, delay * 3.0),
                    )
                    self._sleep(delay)
                else:
                    self._sleep(min(delay, self.max_delay))
                    delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def __repr__(self) -> str:
        extras = ""
        if self.jitter != "none":
            extras += f", jitter={self.jitter!r}"
        if self.max_elapsed is not None:
            extras += f", max_elapsed={self.max_elapsed}"
        return (
            f"RetryPolicy(attempts={self.attempts}, "
            f"base_delay={self.base_delay}, max_delay={self.max_delay}"
            f"{extras})"
        )


class PageFile:
    """A file of fixed-size pages.

    Args:
        path: File path.
        page_size: Page size in bytes (files remember theirs; required when
            creating, validated when opening).
        create: Truncate/create the file (otherwise it must exist).

    The object is a context manager; pages are addressed by integer id,
    with page 0 conventionally holding the owner's header.

    Durability contract: writes land in a userspace buffer and are only
    guaranteed on stable storage after :meth:`sync`, which flushes the
    buffer **and** calls ``os.fsync``.  :meth:`close` flushes but does not
    fsync; callers that need crash durability must ``sync()`` first (the
    disk R-tree's atomic writer does).  A crash between ``allocate`` and
    ``sync`` can leave a file whose size is not a multiple of the page
    size — such files are rejected on open rather than misread.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike"],
        page_size: int = 4096,
        create: bool = False,
    ) -> None:
        if page_size < _MIN_PAGE_SIZE:
            raise InvalidParameterError(
                f"page_size must be >= {_MIN_PAGE_SIZE}, got {page_size}"
            )
        self.path = os.fspath(path)
        self.page_size = page_size
        self.reads = 0
        self.writes = 0
        mode = "w+b" if create else "r+b"
        try:
            self._file = open(self.path, mode)
        except FileNotFoundError:
            raise PageFileError(f"page file {self.path!r} does not exist") from None
        except OSError as exc:
            # IsADirectoryError, PermissionError, ELOOP, ... — every way
            # open() can fail becomes the library's error type, chained.
            raise PageFileError(
                f"cannot open page file {self.path!r}: {exc}"
            ) from exc
        if create:
            # Materialize the header page immediately.
            self._file.write(b"\x00" * page_size)
            self._file.flush()
            self._page_count = 1
        else:
            size = os.path.getsize(self.path)
            if size == 0 or size % page_size != 0:
                self._file.close()
                raise PageFileError(
                    f"{self.path!r} has size {size}, not a multiple of the "
                    f"page size {page_size}"
                )
            self._page_count = size // page_size
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Number of pages in the file (header included).

        Tracked internally rather than via the on-disk size, which lags
        while writes sit in the userspace buffer.
        """
        return self._page_count

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def allocate(self) -> int:
        """Append a zeroed page and return its id."""
        self._check_open()
        page_id = self._page_count
        self._file.seek(0, os.SEEK_END)
        self._file.write(b"\x00" * self.page_size)
        self._page_count += 1
        return page_id

    def read_page(self, page_id: int) -> bytes:
        """Read one page; raises on out-of-range ids."""
        self._check_open()
        self._check_range(page_id)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise PageFileError(
                f"short read of page {page_id} in {self.path!r}"
            )
        self.reads += 1
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page; *data* must fit in the page size."""
        self._check_open()
        self._check_range(page_id)
        if len(data) > self.page_size:
            raise PageFileError(
                f"payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}"
            )
        self._file.seek(page_id * self.page_size)
        self._file.write(data.ljust(self.page_size, b"\x00"))
        self.writes += 1

    def sync(self) -> None:
        """Flush buffered writes and fsync them to stable storage."""
        self._check_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush and close the file; further access raises.  Idempotent."""
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise PageFileError(f"page file {self.path!r} is closed")

    def _check_range(self, page_id: int) -> None:
        if not 0 <= page_id < self.page_count:
            raise PageFileError(
                f"page {page_id} out of range [0, {self.page_count})"
            )

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PageFile(path={self.path!r}, page_size={self.page_size}, "
            f"pages={self.page_count})"
        )
