"""Deterministic fault injection for the physical storage layer.

:class:`FaultInjectingPageFile` is a drop-in :class:`PageFile` that
corrupts itself on purpose: bit flips on read, torn writes, short reads,
and transient ``EIO``-style failures, all driven by a seeded RNG and/or an
explicit schedule so test runs are exactly reproducible.

It exists so the corruption-matrix test suite can prove the claims the
v2 on-disk format makes — every single-byte flip is detected, a crash
mid-``write_tree`` never publishes a broken index, transient errors are
retried — without ever needing a real flaky disk.

Example::

    plan = FaultPlan(bit_flip_prob=0.2, seed=7)
    pages = FaultInjectingPageFile(path, page_size=4096, plan=plan)
    disk = DiskRTree(path, page_file=pages)   # reads now sometimes corrupt
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from random import Random
from typing import Dict, FrozenSet, Optional, Union

from repro.errors import (
    InvalidParameterError,
    PageFileError,
    TornWriteError,
    TransientIOError,
)
from repro.storage.pagefile import PageFile

__all__ = ["FaultInjectingPageFile", "FaultPlan"]


@dataclass
class FaultPlan:
    """What to break, how often, and in what order.

    Probabilities are evaluated per operation with a private
    ``random.Random(seed)``; schedules are deterministic and fire
    regardless of the probabilities.

    Attributes:
        bit_flip_prob: Chance a ``read_page`` returns data with one
            random bit flipped (the file itself is untouched).
        short_read_prob: Chance a ``read_page`` behaves as if the device
            returned fewer bytes than a page (raises
            :class:`PageFileError`).
        transient_error_prob: Chance a ``read_page`` raises
            :class:`TransientIOError` (``EIO``) instead of reading.
        torn_write_prob: Chance a ``write_page`` persists only a prefix
            of the page and then raises :class:`TornWriteError`, like a
            crash mid-write.
        fail_after_writes: Deterministic kill point — the N-th
            ``write_page`` call (0-based) tears: a prefix is written,
            then :class:`TornWriteError` raises.  ``None`` disables.
        transient_error_limit: Stop injecting transient errors after
            this many, so retry loops can eventually succeed.  ``None``
            means unlimited.
        flip_pages: Page ids whose every read comes back with one bit
            flipped (deterministic corruption of specific pages).
        seed: RNG seed for all probabilistic decisions.
    """

    bit_flip_prob: float = 0.0
    short_read_prob: float = 0.0
    transient_error_prob: float = 0.0
    torn_write_prob: float = 0.0
    fail_after_writes: Optional[int] = None
    transient_error_limit: Optional[int] = None
    flip_pages: FrozenSet[int] = field(default_factory=frozenset)
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "bit_flip_prob",
            "short_read_prob",
            "transient_error_prob",
            "torn_write_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1], got {value}"
                )
        self.flip_pages = frozenset(self.flip_pages)


def _flip_one_bit(data: bytes, rng: Random) -> bytes:
    corrupted = bytearray(data)
    index = rng.randrange(len(corrupted))
    corrupted[index] ^= 1 << rng.randrange(8)
    return bytes(corrupted)


class FaultInjectingPageFile(PageFile):
    """A :class:`PageFile` that injects faults per a :class:`FaultPlan`.

    Every injected fault is tallied in :attr:`faults_injected` (keyed
    ``"bit_flip"``, ``"short_read"``, ``"transient"``, ``"torn_write"``)
    so tests can assert the schedule actually fired.
    """

    def __init__(
        self,
        path: Union[str, "object"],
        page_size: int = 4096,
        create: bool = False,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(path, page_size=page_size, create=create)
        self.plan = plan or FaultPlan()
        self.faults_injected: Dict[str, int] = {
            "bit_flip": 0,
            "short_read": 0,
            "transient": 0,
            "torn_write": 0,
        }
        self._rng = Random(self.plan.seed)
        self._write_calls = 0

    # ------------------------------------------------------------------
    def _record(self, kind: str) -> None:
        self.faults_injected[kind] += 1

    def _transient_budget_left(self) -> bool:
        limit = self.plan.transient_error_limit
        return limit is None or self.faults_injected["transient"] < limit

    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> bytes:
        plan = self.plan
        if (
            plan.transient_error_prob > 0
            and self._transient_budget_left()
            and self._rng.random() < plan.transient_error_prob
        ):
            self._record("transient")
            raise TransientIOError(
                errno.EIO, f"injected transient error reading page {page_id}"
            )
        if plan.short_read_prob > 0 and self._rng.random() < plan.short_read_prob:
            self._record("short_read")
            raise PageFileError(
                f"short read of page {page_id} in {self.path!r} (injected)"
            )
        data = super().read_page(page_id)
        if page_id in plan.flip_pages or (
            plan.bit_flip_prob > 0 and self._rng.random() < plan.bit_flip_prob
        ):
            self._record("bit_flip")
            data = _flip_one_bit(data, self._rng)
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        plan = self.plan
        call_index = self._write_calls
        self._write_calls += 1
        tear = plan.fail_after_writes is not None and (
            call_index == plan.fail_after_writes
        )
        if not tear and plan.torn_write_prob > 0:
            tear = self._rng.random() < plan.torn_write_prob
        if tear:
            self._record("torn_write")
            full = data.ljust(self.page_size, b"\x00")
            prefix_len = self._rng.randrange(1, self.page_size)
            super().write_page(page_id, full[:prefix_len])
            raise TornWriteError(
                f"injected torn write of page {page_id}: only "
                f"{prefix_len}/{self.page_size} bytes persisted"
            )
        super().write_page(page_id, data)
