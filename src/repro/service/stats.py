"""Serving-side observability: latency distribution and engine counters.

The paper's evaluation counts pages per query; a serving layer must also
answer "how fast, at what tail, with what cache behavior".
:class:`LatencyRecorder` accumulates per-query latencies in fixed
logarithmic buckets (O(1) record, bounded memory regardless of traffic)
and reports the percentiles operators actually page on — p50/p95/p99.
:class:`EngineStats` is the immutable snapshot `QueryEngine.stats()`
returns.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Tuple

__all__ = ["EngineStats", "LatencyRecorder"]

#: Bucket boundaries grow by 25% per step from 1 µs; 96 buckets reach
#: well past a minute, far beyond any sane single-query latency.
_BASE_SECONDS = 1e-6
_GROWTH = 1.25
_BUCKETS = 96


class LatencyRecorder:
    """Fixed-size logarithmic histogram of query latencies.

    Thread-safe; `record` is called from every worker.  Percentiles are
    estimated at the upper edge of the containing bucket, so they are
    conservative (never under-report) with <= 25% relative error — ample
    for serving dashboards and threshold assertions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * _BUCKETS
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        if seconds < 0.0:
            seconds = 0.0
        if seconds <= _BASE_SECONDS:
            index = 0
        else:
            index = min(
                _BUCKETS - 1,
                1 + int(math.log(seconds / _BASE_SECONDS, _GROWTH)),
            )
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    def mean(self) -> float:
        """Mean latency in seconds (0.0 with no samples)."""
        with self._lock:
            return self._sum / self._total if self._total else 0.0

    def percentile(self, fraction: float) -> float:
        """Latency (seconds) below which *fraction* of samples fall.

        ``fraction`` is in [0, 1]; with no samples, returns 0.0.
        """
        with self._lock:
            if not self._total:
                return 0.0
            threshold = fraction * self._total
            seen = 0
            for index, count in enumerate(self._counts):
                seen += count
                if seen >= threshold:
                    # Upper edge of this bucket, capped at the true max.
                    edge = (
                        _BASE_SECONDS
                        if index == 0
                        else _BASE_SECONDS * _GROWTH**index
                    )
                    return min(edge, self._max)
            return self._max

    def snapshot_ms(self) -> Tuple[float, float, float, float]:
        """(p50, p95, p99, mean) in milliseconds."""
        return (
            1000.0 * self.percentile(0.50),
            1000.0 * self.percentile(0.95),
            1000.0 * self.percentile(0.99),
            1000.0 * self.mean(),
        )


@dataclass(frozen=True)
class EngineStats:
    """One immutable snapshot of a :class:`repro.service.QueryEngine`.

    Page counters are *logical* R-tree node visits (the paper's unit);
    ``physical_reads`` is what survived the per-worker buffer pools.
    Cache hits execute no search at all, so they contribute 0 pages.
    """

    #: Queries answered (hits + executed).
    queries: int
    #: Answered straight from the result cache.
    cache_hits: int
    #: Answered by running a search.
    executed: int
    #: Entries purged after a tree mutation bumped the epoch.
    cache_invalidated: int
    #: Tree epoch at snapshot time.
    epoch: int
    #: Worker threads serving the batch API.
    workers: int
    #: Median / tail latencies, milliseconds.
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    #: Logical pages per *executed* query (cache hits touch no pages).
    pages_per_query: float
    #: Physical reads after per-worker buffering, total.
    physical_reads: int
    #: Leaf objects whose distance was computed, per executed query.
    objects_per_query: float
    #: Highest number of queries simultaneously in flight observed.
    max_queue_depth: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries served from the result cache."""
        if not self.queries:
            return 0.0
        return self.cache_hits / self.queries

    def render(self) -> str:
        """Multi-line human-readable report (the CLI's output)."""
        lines = [
            f"queries            {self.queries:>12,}",
            f"  cache hits       {self.cache_hits:>12,}"
            f"  ({100.0 * self.hit_ratio:.1f}%)",
            f"  executed         {self.executed:>12,}",
            f"  invalidated      {self.cache_invalidated:>12,}",
            f"workers            {self.workers:>12}",
            f"epoch              {self.epoch:>12}",
            f"latency p50        {self.latency_p50_ms:>12.3f} ms",
            f"latency p95        {self.latency_p95_ms:>12.3f} ms",
            f"latency p99        {self.latency_p99_ms:>12.3f} ms",
            f"latency mean       {self.latency_mean_ms:>12.3f} ms",
            f"pages/query        {self.pages_per_query:>12.2f}",
            f"physical reads     {self.physical_reads:>12,}",
            f"objects/query      {self.objects_per_query:>12.2f}",
            f"max queue depth    {self.max_queue_depth:>12}",
        ]
        return "\n".join(lines)
