"""Serving-side observability: latency distribution and engine counters.

The paper's evaluation counts pages per query; a serving layer must also
answer "how fast, at what tail, with what cache behavior".
:class:`LatencyRecorder` accumulates per-query latencies in fixed
logarithmic buckets (O(1) record, bounded memory regardless of traffic)
and reports the percentiles operators actually page on — p50/p95/p99.
:class:`EngineStats` is the immutable snapshot `QueryEngine.stats()`
returns.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Tuple

from repro.errors import InvalidParameterError

__all__ = ["EngineStats", "LatencyRecorder"]

#: Bucket boundaries grow by 25% per step from 1 µs; 96 buckets reach
#: well past a minute, far beyond any sane single-query latency.
_BASE_SECONDS = 1e-6
_GROWTH = 1.25
_BUCKETS = 96


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError(
            f"percentile fraction must be in [0, 1], got {fraction}"
        )


class LatencyRecorder:
    """Fixed-size logarithmic histogram of query latencies.

    Thread-safe; `record` is called from every worker.  Percentiles are
    estimated at the upper edge of the containing bucket, so they are
    conservative (never under-report) with <= 25% relative error — ample
    for serving dashboards and threshold assertions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * _BUCKETS
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        if seconds < 0.0:
            seconds = 0.0
        if seconds <= _BASE_SECONDS:
            index = 0
        else:
            index = min(
                _BUCKETS - 1,
                1 + int(math.log(seconds / _BASE_SECONDS, _GROWTH)),
            )
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    def mean(self) -> float:
        """Mean latency in seconds (0.0 with no samples)."""
        with self._lock:
            return self._sum / self._total if self._total else 0.0

    def percentile(self, fraction: float) -> float:
        """Latency (seconds) below which *fraction* of samples fall.

        ``fraction`` must be in [0, 1] (raises
        :class:`~repro.errors.InvalidParameterError` otherwise); with no
        samples, returns 0.0.
        """
        _check_fraction(fraction)
        with self._lock:
            return self._percentile_locked(fraction)

    def _percentile_locked(self, fraction: float) -> float:
        """Percentile estimate; caller must hold ``self._lock``.

        ``seen > 0`` is required before a bucket may answer: with
        ``fraction == 0.0`` the threshold is 0 and the old ``seen >=
        threshold`` test reported the edge of bucket 0 even when that
        bucket was empty.  The answer must come from the first *occupied*
        bucket.
        """
        if not self._total:
            return 0.0
        threshold = fraction * self._total
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen > 0 and seen >= threshold:
                # Upper edge of this bucket, capped at the true max.
                edge = (
                    _BASE_SECONDS
                    if index == 0
                    else _BASE_SECONDS * _GROWTH**index
                )
                return min(edge, self._max)
        return self._max

    def snapshot_ms(self) -> Tuple[float, float, float, float]:
        """(p50, p95, p99, mean) in milliseconds.

        All four figures are computed under one lock acquisition, so the
        snapshot is internally consistent: concurrent ``record`` calls
        can never interleave between the percentiles and produce a
        nonsensical p50 > p99 reading.
        """
        with self._lock:
            mean = self._sum / self._total if self._total else 0.0
            return (
                1000.0 * self._percentile_locked(0.50),
                1000.0 * self._percentile_locked(0.95),
                1000.0 * self._percentile_locked(0.99),
                1000.0 * mean,
            )


@dataclass(frozen=True)
class EngineStats:
    """One immutable snapshot of a :class:`repro.service.QueryEngine`.

    Page counters are *logical* R-tree node visits (the paper's unit);
    ``physical_reads`` is what survived the per-worker buffer pools.
    Cache hits execute no search at all, so they contribute 0 pages.
    """

    #: Queries answered (hits + executed).
    queries: int
    #: Answered straight from the result cache.
    cache_hits: int
    #: Answered by running a search.
    executed: int
    #: Entries purged after a tree mutation bumped the epoch.
    cache_invalidated: int
    #: Tree epoch at snapshot time.
    epoch: int
    #: Worker threads serving the batch API.
    workers: int
    #: Median / tail latencies, milliseconds.
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    #: Logical pages per *executed* query (cache hits touch no pages).
    pages_per_query: float
    #: Physical reads after per-worker buffering, total.
    physical_reads: int
    #: Leaf objects whose distance was computed, per executed query.
    objects_per_query: float
    #: Highest number of queries simultaneously in flight observed.
    max_queue_depth: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries served from the result cache."""
        if not self.queries:
            return 0.0
        return self.cache_hits / self.queries

    def render(self) -> str:
        """Multi-line human-readable report (the CLI's output)."""
        lines = [
            f"queries            {self.queries:>12,}",
            f"  cache hits       {self.cache_hits:>12,}"
            f"  ({100.0 * self.hit_ratio:.1f}%)",
            f"  executed         {self.executed:>12,}",
            f"  invalidated      {self.cache_invalidated:>12,}",
            f"workers            {self.workers:>12}",
            f"epoch              {self.epoch:>12}",
            f"latency p50        {self.latency_p50_ms:>12.3f} ms",
            f"latency p95        {self.latency_p95_ms:>12.3f} ms",
            f"latency p99        {self.latency_p99_ms:>12.3f} ms",
            f"latency mean       {self.latency_mean_ms:>12.3f} ms",
            f"pages/query        {self.pages_per_query:>12.2f}",
            f"physical reads     {self.physical_reads:>12,}",
            f"objects/query      {self.objects_per_query:>12.2f}",
            f"max queue depth    {self.max_queue_depth:>12}",
        ]
        return "\n".join(lines)
