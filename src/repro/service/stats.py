"""Serving-side observability: latency distribution and engine counters.

The paper's evaluation counts pages per query; a serving layer must also
answer "how fast, at what tail, with what cache behavior".
:class:`LatencyRecorder` accumulates per-query latencies in fixed
logarithmic buckets (O(1) record, bounded memory regardless of traffic)
and reports the percentiles operators actually page on — p50/p95/p99.
:class:`EngineStats` is the immutable snapshot `QueryEngine.stats()`
returns.
"""

from __future__ import annotations

import math
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, NamedTuple

from repro.errors import InvalidParameterError

__all__ = [
    "EngineStats",
    "LatencyRecorder",
    "LatencySnapshot",
    "log_bucket_index",
    "log_bucket_edge",
]

#: Bucket boundaries grow by 25% per step from 1 µs; 96 buckets reach
#: well past a minute, far beyond any sane single-query latency.
_BASE_SECONDS = 1e-6
_GROWTH = 1.25
_BUCKETS = 96


def log_bucket_index(
    value: float,
    base: float = _BASE_SECONDS,
    growth: float = _GROWTH,
) -> int:
    """Unbounded logarithmic bucket index for *value* (>= 0).

    Bucket 0 holds everything up to *base*; bucket ``i`` (i >= 1) tops
    out at ``base * growth**i``.  Shared by :class:`LatencyRecorder` and
    :class:`repro.obs.Histogram` so both report the same edges.
    """
    if value <= base:
        return 0
    return 1 + int(math.log(value / base, growth))


def log_bucket_edge(
    index: int,
    base: float = _BASE_SECONDS,
    growth: float = _GROWTH,
) -> float:
    """Upper edge of bucket *index* in the same log-bucket scheme."""
    return base if index == 0 else base * growth**index


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError(
            f"percentile fraction must be in [0, 1], got {fraction}"
        )


class LatencySnapshot(NamedTuple):
    """One consistent read of a :class:`LatencyRecorder`, in milliseconds.

    A named tuple rather than a dict so hot-path callers can unpack it
    positionally while dashboards use the field names.
    """

    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float


class LatencyRecorder:
    """Fixed-size logarithmic histogram of query latencies.

    Thread-safe; `record` is called from every worker.  Percentiles are
    estimated at the upper edge of the containing bucket, so they are
    conservative (never under-report) with <= 25% relative error — ample
    for serving dashboards and threshold assertions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * _BUCKETS
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._overflows = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds).

        Samples beyond the last bucket edge saturate into the last bucket
        and are tallied in :attr:`overflows` — the distribution stays
        bounded but the saturation is observable instead of silent (and
        ``max`` still reports the true value).
        """
        if seconds < 0.0:
            seconds = 0.0
        index = log_bucket_index(seconds)
        overflowed = index >= _BUCKETS
        if overflowed:
            index = _BUCKETS - 1
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += seconds
            if overflowed:
                self._overflows += 1
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    @property
    def overflows(self) -> int:
        """Samples that saturated past the last bucket edge."""
        with self._lock:
            return self._overflows

    def mean(self) -> float:
        """Mean latency in seconds (0.0 with no samples)."""
        with self._lock:
            return self._sum / self._total if self._total else 0.0

    def percentile(self, fraction: float) -> float:
        """Latency (seconds) below which *fraction* of samples fall.

        ``fraction`` must be in [0, 1] (raises
        :class:`~repro.errors.InvalidParameterError` otherwise); with no
        samples, returns 0.0.
        """
        _check_fraction(fraction)
        with self._lock:
            return self._percentile_locked(fraction)

    def _percentile_locked(self, fraction: float) -> float:
        """Percentile estimate; caller must hold ``self._lock``.

        ``seen > 0`` is required before a bucket may answer: with
        ``fraction == 0.0`` the threshold is 0 and the old ``seen >=
        threshold`` test reported the edge of bucket 0 even when that
        bucket was empty.  The answer must come from the first *occupied*
        bucket.
        """
        if not self._total:
            return 0.0
        threshold = fraction * self._total
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen > 0 and seen >= threshold:
                # Upper edge of this bucket, capped at the true max.
                return min(log_bucket_edge(index), self._max)
        return self._max

    def snapshot_ms(self) -> LatencySnapshot:
        """(p50, p95, p99, mean, max) in milliseconds.

        All five figures are computed under one lock acquisition, so the
        snapshot is internally consistent: concurrent ``record`` calls
        can never interleave between the percentiles and produce a
        nonsensical p50 > p99 reading.
        """
        with self._lock:
            mean = self._sum / self._total if self._total else 0.0
            return LatencySnapshot(
                1000.0 * self._percentile_locked(0.50),
                1000.0 * self._percentile_locked(0.95),
                1000.0 * self._percentile_locked(0.99),
                1000.0 * mean,
                1000.0 * self._max,
            )

    def as_dict(self) -> Dict[str, float]:
        """Snapshot plus sample accounting, keyed for the registry."""
        snap = self.snapshot_ms()
        with self._lock:
            total = self._total
            overflows = self._overflows
        out: Dict[str, float] = dict(snap._asdict())
        out["count"] = total
        out["overflows"] = overflows
        return out


@dataclass(frozen=True)
class EngineStats:
    """One immutable snapshot of a :class:`repro.service.QueryEngine`.

    Page counters are *logical* R-tree node visits (the paper's unit);
    ``physical_reads`` is what survived the per-worker buffer pools.
    Cache hits execute no search at all, so they contribute 0 pages.
    """

    #: Queries answered (hits + executed).
    queries: int
    #: Answered straight from the result cache.
    cache_hits: int
    #: Answered by running a search.
    executed: int
    #: Entries purged after a tree mutation bumped the epoch.
    cache_invalidated: int
    #: Tree epoch at snapshot time.
    epoch: int
    #: Worker threads serving the batch API.
    workers: int
    #: Median / tail latencies, milliseconds.
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    #: Logical pages per *executed* query (cache hits touch no pages).
    pages_per_query: float
    #: Physical reads after per-worker buffering, total.
    physical_reads: int
    #: Leaf objects whose distance was computed, per executed query.
    objects_per_query: float
    #: Highest number of queries simultaneously in flight observed.
    max_queue_depth: int
    #: Queries that raised out of the serving path (the exception still
    #: propagates to the caller's future; it is also counted here so a
    #: worker-thread failure can never pass silently).  Defaulted so
    #: pre-existing snapshot constructions remain valid.
    failures: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries served from the result cache."""
        if not self.queries:
            return 0.0
        return self.cache_hits / self.queries

    def render(self) -> str:
        """Multi-line human-readable report (the CLI's output)."""
        lines = [
            f"queries            {self.queries:>12,}",
            f"  cache hits       {self.cache_hits:>12,}"
            f"  ({100.0 * self.hit_ratio:.1f}%)",
            f"  executed         {self.executed:>12,}",
            f"  invalidated      {self.cache_invalidated:>12,}",
            f"workers            {self.workers:>12}",
            f"epoch              {self.epoch:>12}",
            f"latency p50        {self.latency_p50_ms:>12.3f} ms",
            f"latency p95        {self.latency_p95_ms:>12.3f} ms",
            f"latency p99        {self.latency_p99_ms:>12.3f} ms",
            f"latency mean       {self.latency_mean_ms:>12.3f} ms",
            f"latency max        {self.latency_max_ms:>12.3f} ms",
            f"pages/query        {self.pages_per_query:>12.2f}",
            f"physical reads     {self.physical_reads:>12,}",
            f"objects/query      {self.objects_per_query:>12.2f}",
            f"max queue depth    {self.max_queue_depth:>12}",
            f"failures           {self.failures:>12,}",
        ]
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """Flat field dict plus the derived ``hit_ratio``."""
        out = asdict(self)
        out["hit_ratio"] = self.hit_ratio
        return out

    def export(self) -> Dict[str, Any]:
        """Registry-protocol alias for :meth:`as_dict`."""
        return self.as_dict()
