"""Overload-resilient serving: admission control, quotas, brownout.

:class:`~repro.service.engine.QueryEngine` answers every query it is
given; under overload that is exactly wrong — an unbounded backlog turns
a throughput problem into unbounded latency for everyone.
:class:`ResilientEngine` puts an *admission controller* in front of the
engine: a bounded queue with pluggable shed policies, per-client
token-bucket quotas, per-query work budgets, and a *brownout* controller
that trades precision for capacity (widening the Arya-style epsilon band
and tightening page budgets) as queue depth and tail latency climb,
stepping back down on recovery.

The request lifecycle is fully accounted — every submission ends in
exactly one of the terminal counters, and the chaos harness
(:mod:`repro.chaos`) certifies the conservation law

    ``submitted == rejected(+quota,+shutdown) + admitted``
    ``admitted  == served + failed + shed(+evicted,+expired,+shutdown)
    + cancelled + pending + inflight``

after every soak.  Shed requests resolve their futures with
:class:`~repro.errors.AdmissionRejected` (or
:class:`~repro.errors.QuotaExceeded`); a future is **never** left
unresolved, including across :meth:`ResilientEngine.close`.

Shed policies (chosen per engine via ``shed_policy=``):

- ``"reject-newest"`` — classic bounded queue: a full queue rejects the
  incoming request.  Fair to waiters, worst for freshness.
- ``"adaptive-lifo"`` — a full queue evicts the *oldest* waiter to admit
  the newcomer, and while the backlog exceeds half the capacity workers
  serve newest-first (LIFO).  Under overload the oldest requests are the
  ones whose callers have most likely given up; serving fresh arrivals
  first keeps goodput up (the Facebook "adaptive LIFO" observation).
- ``"expired-drop"`` — FIFO, but a full queue first drops waiters whose
  queue deadline (``queue_timeout_ms``) already passed before rejecting
  the newcomer.  All policies also drop expired entries at dequeue time
  — serving a request its caller has abandoned is pure waste.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import asdict, dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.budget import Budget
from repro.core.config import QueryConfig
from repro.core.query import NNResult, resolve_config
from repro.errors import AdmissionRejected, InvalidParameterError, QuotaExceeded
from repro.obs.spans import SpanContext
from repro.service.engine import DEFAULT_CACHE_SIZE, QueryEngine
from repro.service.options import EngineOptions
from repro.service.protocol import Engine, EngineSnapshot
from repro.storage.breaker import CircuitBreaker

if TYPE_CHECKING:  # a runtime import would cycle through repro.obs
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "BrownoutController",
    "BrownoutLevel",
    "DEFAULT_LADDER",
    "ResilienceStats",
    "ResilientEngine",
    "SHED_POLICIES",
    "Served",
    "TokenBucket",
]

#: Valid admission shed policies.
SHED_POLICIES = ("reject-newest", "adaptive-lifo", "expired-drop")


class TokenBucket:
    """A thread-safe token bucket: sustained *rate*, burst of *burst*.

    Args:
        rate: Tokens replenished per second (> 0).
        burst: Bucket capacity (>= 1); the bucket starts full.
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not rate > 0:
            raise InvalidParameterError(f"rate must be > 0, got {rate}")
        if not burst >= 1:
            raise InvalidParameterError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, burst={self.burst})"


@dataclass(frozen=True)
class BrownoutLevel:
    """One rung of the degradation ladder.

    ``epsilon`` is the *minimum* approximation slack applied at this
    level (a caller asking for more keeps more); ``max_pages`` is the
    *maximum* per-query page budget (``None`` = no tightening).  Level 0
    must be the identity (0.0, ``None``) so a healthy engine serves
    exactly what was asked.
    """

    epsilon: float
    max_pages: Optional[int]


#: Default degradation ladder: first shed precision (the epsilon band is
#: cheap accuracy currency — Maneewongvatana & Mount), then cap work.
DEFAULT_LADDER = (
    BrownoutLevel(0.0, None),
    BrownoutLevel(0.1, None),
    BrownoutLevel(0.25, 4096),
    BrownoutLevel(0.5, 1024),
    BrownoutLevel(1.0, 256),
)


class BrownoutController:
    """Steps a degradation ladder up under load, down on recovery.

    Args:
        ladder: The :class:`BrownoutLevel` rungs, mildest first; rung 0
            must be the identity.
        enter_queue_fraction: Queue occupancy (0..1) at or above which an
            observation counts as overloaded.
        exit_queue_fraction: Occupancy at or below which an observation
            counts as healthy (hysteresis band between the two).
        p99_target_ms: Optional tail-latency target; a p99 above it also
            counts as overloaded (and a healthy observation requires the
            p99 back at or under it).
        min_dwell: Seconds to sit on a rung before stepping *up* again —
            one burst must not ratchet straight to the top.
        step_down_after: Consecutive healthy observations required to
            step back *down* one rung.
        clock: Injectable monotonic clock.

    ``observe`` is called by the engine with each fresh queue/latency
    reading; ``apply`` folds the current rung into a query's config.
    Thread-safe.
    """

    def __init__(
        self,
        ladder: Sequence[BrownoutLevel] = DEFAULT_LADDER,
        enter_queue_fraction: float = 0.75,
        exit_queue_fraction: float = 0.25,
        p99_target_ms: Optional[float] = None,
        min_dwell: float = 0.25,
        step_down_after: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        ladder = tuple(ladder)
        if not ladder:
            raise InvalidParameterError("ladder must be non-empty")
        if ladder[0].epsilon != 0.0 or ladder[0].max_pages is not None:
            raise InvalidParameterError(
                "ladder[0] must be the identity BrownoutLevel(0.0, None)"
            )
        if not 0.0 <= exit_queue_fraction < enter_queue_fraction <= 1.0:
            raise InvalidParameterError(
                "need 0 <= exit_queue_fraction < enter_queue_fraction <= 1"
            )
        if step_down_after < 1:
            raise InvalidParameterError(
                f"step_down_after must be >= 1, got {step_down_after}"
            )
        self.ladder = ladder
        self.enter_queue_fraction = enter_queue_fraction
        self.exit_queue_fraction = exit_queue_fraction
        self.p99_target_ms = p99_target_ms
        self.min_dwell = min_dwell
        self.step_down_after = step_down_after
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._last_step = clock()
        self._healthy_streak = 0
        self.step_ups = 0
        self.step_downs = 0

    @property
    def level(self) -> int:
        """Current rung index (0 = healthy / identity)."""
        return self._level

    def observe(self, queue_fraction: float, p99_ms: float) -> int:
        """Feed one load reading; returns the (possibly new) rung."""
        with self._lock:
            over_p99 = (
                self.p99_target_ms is not None and p99_ms > self.p99_target_ms
            )
            overloaded = queue_fraction >= self.enter_queue_fraction or over_p99
            healthy = (
                queue_fraction <= self.exit_queue_fraction and not over_p99
            )
            now = self._clock()
            if overloaded:
                self._healthy_streak = 0
                if (
                    self._level < len(self.ladder) - 1
                    and now - self._last_step >= self.min_dwell
                ):
                    self._level += 1
                    self._last_step = now
                    self.step_ups += 1
            elif healthy:
                self._healthy_streak += 1
                if (
                    self._healthy_streak >= self.step_down_after
                    and self._level > 0
                ):
                    self._level -= 1
                    self._last_step = now
                    self._healthy_streak = 0
                    self.step_downs += 1
            else:
                # In the hysteresis band: hold the rung, reset the streak.
                self._healthy_streak = 0
            return self._level

    def apply(self, cfg: QueryConfig) -> QueryConfig:
        """Fold the current rung into *cfg*.

        Epsilon is widened to at least the rung's (never narrowed); the
        page budget is tightened to at most the rung's (never loosened),
        preserving any caller deadline.  Because epsilon and budget are
        both part of :meth:`QueryConfig.cache_key`, a browned-out answer
        occupies its own cache tier automatically.
        """
        rung = self.ladder[self._level]
        if rung.epsilon == 0.0 and rung.max_pages is None:
            return cfg
        changes: Dict[str, Any] = {}
        if rung.epsilon > cfg.epsilon:
            changes["epsilon"] = rung.epsilon
        if rung.max_pages is not None:
            budget = cfg.budget
            if budget is None:
                changes["budget"] = Budget(max_pages=rung.max_pages)
            elif budget.max_pages is None or budget.max_pages > rung.max_pages:
                changes["budget"] = replace(budget, max_pages=rung.max_pages)
        return cfg.replace(**changes) if changes else cfg


@dataclass(frozen=True)
class Served:
    """A successfully served admission-controlled query.

    Carries the *effective* config so callers (and the chaos oracle)
    know which epsilon band / budget the answer was computed under when
    brownout degraded it below what was requested.
    """

    result: NNResult
    config: QueryConfig
    requested: QueryConfig
    wait_ms: float
    service_ms: float
    brownout_level: int

    @property
    def degraded_by_brownout(self) -> bool:
        """True if brownout changed the effective config."""
        return self.config is not self.requested and self.config != self.requested


@dataclass(frozen=True)
class ResilienceStats:
    """One consistent snapshot of a :class:`ResilientEngine`.

    The two conservation laws in the module docstring hold for every
    snapshot taken under the admission lock (the harness asserts them
    after each soak).
    """

    submitted: int
    admitted: int
    rejected_queue_full: int
    rejected_quota: int
    rejected_shutdown: int
    served: int
    failed: int
    shed_evicted: int
    shed_expired: int
    shed_shutdown: int
    cancelled: int
    pending: int
    inflight: int
    truncated_served: int
    deadline_misses: int
    queue_capacity: int
    max_queue_depth: int
    brownout_level: int
    breaker_state: int

    @property
    def conserved(self) -> bool:
        """Whether every submission is accounted for exactly once."""
        return (
            self.submitted
            == self.admitted
            + self.rejected_queue_full
            + self.rejected_quota
            + self.rejected_shutdown
        ) and (
            self.admitted
            == self.served
            + self.failed
            + self.shed_evicted
            + self.shed_expired
            + self.shed_shutdown
            + self.cancelled
            + self.pending
            + self.inflight
        )

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["conserved"] = int(self.conserved)
        return out

    def export(self) -> Dict[str, Any]:
        """Registry-protocol alias for :meth:`as_dict`."""
        return self.as_dict()

    def render(self) -> str:
        lines = [
            f"submitted          {self.submitted:>12,}",
            f"  admitted         {self.admitted:>12,}",
            f"  rejected full    {self.rejected_queue_full:>12,}",
            f"  rejected quota   {self.rejected_quota:>12,}",
            f"  rejected closed  {self.rejected_shutdown:>12,}",
            f"served             {self.served:>12,}",
            f"  truncated        {self.truncated_served:>12,}",
            f"  deadline misses  {self.deadline_misses:>12,}",
            f"failed             {self.failed:>12,}",
            f"shed evicted       {self.shed_evicted:>12,}",
            f"shed expired       {self.shed_expired:>12,}",
            f"shed at shutdown   {self.shed_shutdown:>12,}",
            f"cancelled          {self.cancelled:>12,}",
            f"pending/inflight   {self.pending:>7,} /{self.inflight:>3,}",
            f"queue depth max    {self.max_queue_depth:>12,}"
            f"  (capacity {self.queue_capacity})",
            f"brownout level     {self.brownout_level:>12}",
            f"breaker state      {self.breaker_state:>12}",
            f"conserved          {str(self.conserved):>12}",
        ]
        return "\n".join(lines)


@dataclass
class _Request:
    """One queued admission-controlled query."""

    point: Tuple[float, ...]
    config: QueryConfig
    future: "Future[Served]"
    enqueued_at: float
    expires_at: Optional[float]
    client: Optional[str] = None
    span_ctx: Optional[SpanContext] = None
    # deque.remove uses __eq__; identity is the only sane equality here.
    __hash__ = object.__hash__
    __eq__ = object.__eq__


class ResilientEngine:
    """Admission-controlled serving over any backend :class:`Engine`.

    Args:
        tree: The index to serve — builds an inner :class:`QueryEngine`
            over it.  Mutually exclusive with *engine*.
        engine: An already-constructed backend implementing the
            :class:`~repro.service.protocol.Engine` protocol (a
            :class:`QueryEngine`, a
            :class:`~repro.shard.ShardedQueryEngine`, anything
            shape-compatible).  The wrapper takes ownership: its
            :meth:`close` closes the backend.  No ``isinstance``
            special-casing — only the protocol surface is used.
        config: Default :class:`QueryConfig`; per-submit overrides apply.
        workers: Serving worker threads (the bounded queue feeds them).
        queue_capacity: Maximum waiting requests before shedding.
        shed_policy: One of :data:`SHED_POLICIES`.
        default_budget: :class:`Budget` applied to submissions whose
            config carries none — the per-query deadline floor of the
            deployment.
        queue_timeout_ms: Queue-wait deadline; entries that wait longer
            are dropped (``"expired-drop"`` sheds them on overflow too).
        quota_rate / quota_burst: Per-client token-bucket quota (both or
            neither); clients are named by the ``client=`` submit arg.
        brownout: Optional :class:`BrownoutController` consulted per
            served query and fed queue/latency observations.
        breaker: Optional :class:`~repro.storage.breaker.CircuitBreaker`
            whose state is exported with the stats (wire the same
            instance into the :class:`~repro.rtree.disk.DiskRTree`).
        options: :class:`~repro.service.options.EngineOptions` for the
            inner engine built from *tree* (its ``workers`` field is
            forced to 1 — see below).  Only valid with *tree*.
        cache_size / packed / buffer_pages / slow_query_ms / slow_log:
            Legacy spellings of the same inner-engine options; override
            matching *options* fields.  Only valid with *tree*.
        clock: Injectable monotonic clock (tests).

    A *tree*-built inner engine runs with ``workers=1`` — meaning *no*
    second thread pool; this class's workers call into it directly, and
    its read-write lock keeps concurrent serving safe.  (A passed-in
    *engine* keeps whatever concurrency it was built with — a sharded
    backend's worker processes are the point of wrapping it.)  A context
    manager; :meth:`close` is idempotent and resolves every remaining
    future.
    """

    def __init__(
        self,
        tree: Any = None,
        config: Optional[QueryConfig] = None,
        workers: int = 4,
        queue_capacity: int = 64,
        shed_policy: str = "reject-newest",
        default_budget: Optional[Budget] = None,
        queue_timeout_ms: Optional[float] = None,
        quota_rate: Optional[float] = None,
        quota_burst: Optional[float] = None,
        brownout: Optional[BrownoutController] = None,
        breaker: Optional[CircuitBreaker] = None,
        cache_size: Optional[int] = None,
        buffer_pages: Optional[int] = None,
        packed: Optional[bool] = None,
        slow_query_ms: Optional[float] = None,
        slow_log: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        engine: Optional[Engine] = None,
        options: Optional[EngineOptions] = None,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise InvalidParameterError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if shed_policy not in SHED_POLICIES:
            raise InvalidParameterError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if queue_timeout_ms is not None and not queue_timeout_ms > 0:
            raise InvalidParameterError(
                f"queue_timeout_ms must be > 0, got {queue_timeout_ms}"
            )
        if (quota_rate is None) != (quota_burst is None):
            raise InvalidParameterError(
                "quota_rate and quota_burst must be set together"
            )
        if (tree is None) == (engine is None):
            raise InvalidParameterError(
                "pass exactly one of tree= or engine="
            )
        if engine is not None:
            engine_knobs = (
                options, cache_size, buffer_pages, packed,
                slow_query_ms, slow_log,
            )
            if any(knob is not None for knob in engine_knobs):
                raise InvalidParameterError(
                    "engine= carries its own execution options; drop "
                    "options=/cache_size=/buffer_pages=/packed=/"
                    "slow_query_ms=/slow_log="
                )
            self.engine: Engine = engine
        else:
            inner = (
                options if options is not None else EngineOptions()
            ).merged(
                cache_size=cache_size,
                buffer_pages=buffer_pages,
                packed=packed,
                slow_query_ms=slow_query_ms,
                slow_log=slow_log,
            ).merged(workers=1)
            self.engine = QueryEngine(tree, config=config, options=inner)
        self._default_config = config
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.shed_policy = shed_policy
        self.default_budget = default_budget
        self.queue_timeout_ms = queue_timeout_ms
        self.brownout = brownout
        self.breaker = breaker
        self._quota_rate = quota_rate
        self._quota_burst = quota_burst
        self._buckets: Dict[str, TokenBucket] = {}
        self._clock = clock
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: Deque[_Request] = deque()
        self._closing = False
        # Counters (under self._lock).
        self._submitted = 0
        self._admitted = 0
        self._rejected_queue_full = 0
        self._rejected_quota = 0
        self._rejected_shutdown = 0
        self._served = 0
        self._failed = 0
        self._shed_evicted = 0
        self._shed_expired = 0
        self._shed_shutdown = 0
        self._cancelled = 0
        self._inflight = 0
        self._truncated_served = 0
        self._deadline_misses = 0
        self._max_queue_depth = 0
        # Recent wall-clock service latencies (ms) feeding the brownout
        # controller's p99 reading; bounded, lock-protected.
        self._recent_ms: Deque[float] = deque(maxlen=128)
        # Exported signal histograms (seconds; obs log-bucket scheme).
        # Imported here, not at module top: repro.obs.registry itself
        # imports repro.service at load time (shared bucket scheme).
        from repro.obs.registry import Histogram

        self.wait_times = Histogram("resilience_wait")
        self.service_times = Histogram("resilience_service")
        self.deadline_miss_overshoot = Histogram("resilience_deadline_miss")
        # Does the backend's query() accept a span context?  Checked once
        # here (inspect is too slow for the per-request path); duck-typed
        # so protocol-shaped test doubles without the kwarg still work.
        import inspect

        try:
            self._inner_takes_span = (
                "span_ctx"
                in inspect.signature(self.engine.query).parameters
            )
        except (TypeError, ValueError):
            self._inner_takes_span = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-resilient-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        config: Optional[QueryConfig] = None,
        budget: Optional[Budget] = None,
        client: Optional[str] = None,
        span_ctx: Optional[SpanContext] = None,
    ) -> "Future[Served]":
        """Submit one query through admission control.

        Returns a :class:`~concurrent.futures.Future` that resolves to a
        :class:`Served` record, or raises (from ``.result()``) an
        :class:`~repro.errors.AdmissionRejected` /
        :class:`~repro.errors.QuotaExceeded` if shed, or the underlying
        query error if execution failed.  Shedding *never* raises out of
        ``submit`` itself — backpressure is delivered through the
        future, so producers and the admission path stay decoupled.

        A sampled *span_ctx* rides the request: serving records
        ``resilience.queue`` (true admission-queue wait) and
        ``resilience.serve`` spans, and the context is forwarded to the
        backend when its ``query`` accepts one — so one trace crosses
        the admission layer into the engine (and, for a sharded
        backend, its worker processes).
        """
        future: "Future[Served]" = Future()
        cfg = self._effective_config(k, config)
        if budget is not None:
            cfg = cfg.replace(budget=budget)
        elif cfg.budget is None and self.default_budget is not None:
            cfg = cfg.replace(budget=self.default_budget)
        now = self._clock()
        request = _Request(
            point=tuple(float(c) for c in point),
            config=cfg,
            future=future,
            enqueued_at=now,
            expires_at=(
                now + self.queue_timeout_ms / 1000.0
                if self.queue_timeout_ms is not None
                else None
            ),
            client=client,
            span_ctx=(
                span_ctx
                if span_ctx is not None and span_ctx.sampled
                else None
            ),
        )
        with self._work:
            self._submitted += 1
            if self._closing:
                self._rejected_shutdown += 1
                future.set_exception(
                    AdmissionRejected(
                        "engine is shutting down", reason="shutdown"
                    )
                )
                return future
            if not self._check_quota_locked(client):
                self._rejected_quota += 1
                future.set_exception(
                    QuotaExceeded(f"client {client!r} exceeded its quota")
                )
                return future
            if len(self._queue) >= self.queue_capacity:
                if not self._make_room_locked(now):
                    self._rejected_queue_full += 1
                    future.set_exception(
                        AdmissionRejected(
                            f"admission queue full "
                            f"(capacity {self.queue_capacity})",
                            reason="queue_full",
                        )
                    )
                    self._observe_brownout_locked()
                    return future
            self._admitted += 1
            self._queue.append(request)
            if len(self._queue) > self._max_queue_depth:
                self._max_queue_depth = len(self._queue)
            self._work.notify()
        return future

    def query(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        config: Optional[QueryConfig] = None,
        budget: Optional[Budget] = None,
        client: Optional[str] = None,
        timeout: Optional[float] = None,
        span_ctx: Optional[SpanContext] = None,
    ) -> Served:
        """Synchronous :meth:`submit` — blocks for the served record."""
        return self.submit(
            point, k=k, config=config, budget=budget, client=client,
            span_ctx=span_ctx,
        ).result(timeout)

    def _effective_config(
        self, k: Optional[int], config: Optional[QueryConfig]
    ) -> QueryConfig:
        """Resolve a per-submit config against the serving defaults.

        Deliberately local — programming against the backend through the
        public :class:`Engine` protocol only, never its private helpers.
        A backend that exposes a ``config`` default (all in-tree engines
        do) contributes it when neither the submit nor this wrapper set
        one.
        """
        base = config
        if base is None:
            base = self._default_config
        if base is None:
            base = getattr(self.engine, "config", None)
        return resolve_config(base if base is not None else QueryConfig(), k=k)

    # ------------------------------------------------------------------
    # Admission internals (callers hold self._lock)
    # ------------------------------------------------------------------
    def _check_quota_locked(self, client: Optional[str]) -> bool:
        if self._quota_rate is None:
            return True
        name = client if client is not None else ""
        bucket = self._buckets.get(name)
        if bucket is None:
            bucket = TokenBucket(
                self._quota_rate, self._quota_burst, clock=self._clock
            )
            self._buckets[name] = bucket
        return bucket.try_acquire()

    def _reject_locked(self, request: "_Request", exc: Exception) -> bool:
        """Resolve *request*'s future with *exc*, tolerating a client cancel.

        A client may cancel its future at any moment between enqueue and
        whichever terminal path reaches the request first (shed, expiry,
        shutdown flush).  A cancelled future refuses ``set_exception``
        with :class:`~concurrent.futures.InvalidStateError`; that race
        must neither crash the shedding path nor lose the request from
        the accounting.  Returns ``True`` when the rejection landed (the
        caller bumps its shed/shutdown counter) and ``False`` when the
        client got there first (counted under ``cancelled`` here, keeping
        the conservation law true).  Callers hold ``self._lock``.
        """
        if not request.future.cancelled():
            try:
                request.future.set_exception(exc)
                return True
            except InvalidStateError:
                pass  # cancelled between the check and the set
        self._cancelled += 1
        return False

    def _make_room_locked(self, now: float) -> bool:
        """Try to free one queue slot per the shed policy."""
        if self.shed_policy == "adaptive-lifo":
            # Evict the oldest waiter in favor of the newcomer.
            victim = self._queue.popleft()
            if self._reject_locked(
                victim,
                AdmissionRejected(
                    "evicted by a newer request under overload "
                    "(adaptive-lifo)",
                    reason="queue_full",
                ),
            ):
                self._shed_evicted += 1
            return True
        if self.shed_policy == "expired-drop":
            freed = False
            while self._queue and (
                self._queue[0].expires_at is not None
                and now >= self._queue[0].expires_at
            ):
                expired = self._queue.popleft()
                if self._reject_locked(
                    expired,
                    AdmissionRejected(
                        "queue deadline expired before execution",
                        reason="expired",
                    ),
                ):
                    self._shed_expired += 1
                freed = True
            return freed
        return False  # reject-newest

    def _dequeue(self) -> Optional[_Request]:
        """Block for the next runnable request; ``None`` means shut down."""
        with self._work:
            while True:
                while not self._queue and not self._closing:
                    self._work.wait()
                if not self._queue:
                    return None  # closing and drained
                now = self._clock()
                # Every policy drops expired waiters at dequeue: serving
                # a request its caller abandoned is pure waste.
                request = self._pop_locked()
                if (
                    request.expires_at is not None
                    and now >= request.expires_at
                ):
                    if self._reject_locked(
                        request,
                        AdmissionRejected(
                            "queue deadline expired before execution",
                            reason="expired",
                        ),
                    ):
                        self._shed_expired += 1
                    continue
                if not request.future.set_running_or_notify_cancel():
                    self._cancelled += 1
                    continue
                self._inflight += 1
                return request

    def _pop_locked(self) -> _Request:
        if (
            self.shed_policy == "adaptive-lifo"
            and len(self._queue) > self.queue_capacity // 2
        ):
            return self._queue.pop()  # newest-first while backlogged
        return self._queue.popleft()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            request = self._dequeue()
            if request is None:
                return
            self._serve(request)

    def _serve(self, request: _Request) -> None:
        started = self._clock()
        wait_s = max(0.0, started - request.enqueued_at)
        requested = request.config
        brownout = self.brownout
        effective = brownout.apply(requested) if brownout is not None else requested
        level = brownout.level if brownout is not None else 0
        ctx = request.span_ctx
        started_wall = time.time() if ctx is not None else 0.0
        if ctx is not None:
            # The queue span is backdated from the measured wait — the
            # submit path never touches the wall clock for unsampled
            # (or absent) contexts.
            ctx.add(
                "resilience.queue", started_wall - wait_s, wait_s * 1000.0,
                attrs={"policy": self.shed_policy},
            )
            serve_span = ctx.start(
                "resilience.serve", brownout=level,
                degraded=int(effective is not requested),
            )
        else:
            serve_span = None
        try:
            if ctx is not None and self._inner_takes_span:
                result = self.engine.query(
                    request.point, config=effective, span_ctx=ctx
                )
            else:
                result = self.engine.query(request.point, config=effective)
        except BaseException as exc:
            if serve_span is not None:
                serve_span.end(error=type(exc).__name__)
            with self._lock:
                self._failed += 1
                self._inflight -= 1
            request.future.set_exception(exc)
        else:
            service_s = max(0.0, self._clock() - started)
            if serve_span is not None:
                serve_span.end(truncated=int(result.stats.truncated))
            with self._lock:
                self._served += 1
                self._inflight -= 1
                if result.stats.truncated:
                    self._truncated_served += 1
                    if result.stats.truncation_reason == "deadline":
                        self._deadline_misses += 1
                self._recent_ms.append(service_s * 1000.0)
            self.wait_times.observe(wait_s)
            self.service_times.observe(service_s)
            if (
                result.stats.truncation_reason == "deadline"
                and effective.budget is not None
                and effective.budget.deadline_ms is not None
            ):
                overshoot_s = max(
                    0.0,
                    service_s - effective.budget.deadline_ms / 1000.0,
                )
                self.deadline_miss_overshoot.observe(overshoot_s)
            request.future.set_result(
                Served(
                    result=result,
                    config=effective,
                    requested=requested,
                    wait_ms=wait_s * 1000.0,
                    service_ms=service_s * 1000.0,
                    brownout_level=level,
                )
            )
        finally:
            with self._lock:
                self._observe_brownout_locked()

    def _observe_brownout_locked(self) -> None:
        if self.brownout is None:
            return
        fraction = len(self._queue) / self.queue_capacity
        recent = sorted(self._recent_ms)
        p99 = recent[int(0.99 * (len(recent) - 1))] if recent else 0.0
        self.brownout.observe(fraction, p99)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ResilienceStats:
        """One consistent (conservation-law-true) snapshot."""
        with self._lock:
            return ResilienceStats(
                submitted=self._submitted,
                admitted=self._admitted,
                rejected_queue_full=self._rejected_queue_full,
                rejected_quota=self._rejected_quota,
                rejected_shutdown=self._rejected_shutdown,
                served=self._served,
                failed=self._failed,
                shed_evicted=self._shed_evicted,
                shed_expired=self._shed_expired,
                shed_shutdown=self._shed_shutdown,
                cancelled=self._cancelled,
                pending=len(self._queue),
                inflight=self._inflight,
                truncated_served=self._truncated_served,
                deadline_misses=self._deadline_misses,
                queue_capacity=self.queue_capacity,
                max_queue_depth=self._max_queue_depth,
                brownout_level=(
                    self.brownout.level if self.brownout is not None else 0
                ),
                breaker_state=(
                    self.breaker.state_code()
                    if self.breaker is not None
                    else 0
                ),
            )

    def snapshot(self) -> EngineSnapshot:
        """The backend's snapshot, tagged with the admission layer.

        ``backend`` composes as ``"resilient+<inner>"`` so a wrapped
        sharded engine reports ``"resilient+sharded"``; epoch and size
        pass through from the backend.
        """
        inner = self.engine.snapshot()
        detail = dict(inner.detail)
        detail.update(
            admission_workers=self.workers,
            queue_capacity=self.queue_capacity,
            shed_policy=self.shed_policy,
        )
        return EngineSnapshot(
            backend=f"resilient+{inner.backend}",
            epoch=inner.epoch,
            size=inner.size,
            detail=detail,
        )

    @property
    def draining(self) -> bool:
        """True once :meth:`close` began: new submissions are rejected."""
        with self._lock:
            return self._closing

    def liveness(self) -> Dict[str, Any]:
        """Readiness hook for front doors (``/readyz``-style probes).

        Composes the backend's own :meth:`liveness` (when it has one)
        with the admission layer's drain state: an engine that started
        closing is not ready even while its backend still drains the
        backlog, so load balancers stop routing to it first.
        """
        inner_hook = getattr(self.engine, "liveness", None)
        inner: Dict[str, Any] = (
            inner_hook() if callable(inner_hook) else {"ready": True}
        )
        with self._lock:
            draining = self._closing
            queue_depth = len(self._queue)
        out = dict(inner)
        out["ready"] = bool(inner.get("ready", True)) and not draining
        out["draining"] = draining
        out["queue_depth"] = queue_depth
        return out

    def register_metrics(
        self, registry: MetricsRegistry, prefix: str = "resilience"
    ) -> None:
        """Wire every resilience signal into a metrics registry.

        Registers the counter snapshot (shed counts, brownout level,
        breaker state gauge — all numeric, so the Prometheus exporter
        picks them up), the queue-wait and service-time histograms, and
        the deadline-miss overshoot histogram.  When the backend has a
        ``register_metrics`` hook of its own (the sharded engine's adds
        per-shard depth/request/page gauges), it is forwarded the same
        registry; otherwise the backend's ``stats()`` snapshot is
        registered under ``"engine"``.
        """
        registry.register(prefix, lambda: self.stats().as_dict())
        registry.register(f"{prefix}.wait", self.wait_times)
        registry.register(f"{prefix}.service", self.service_times)
        registry.register(
            f"{prefix}.deadline_miss", self.deadline_miss_overshoot
        )
        inner_hook = getattr(self.engine, "register_metrics", None)
        if callable(inner_hook):
            inner_hook(registry)
        else:
            inner_stats = getattr(self.engine, "stats", None)
            if callable(inner_stats):
                registry.register(
                    "engine", lambda: self.engine.stats().as_dict()
                )

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain workers, resolve every remaining future.  Idempotent.

        Workers finish the backlog (new submissions are rejected with
        reason ``"shutdown"`` the moment closing begins).  With a
        *timeout*, waits at most that long for the drain; whatever is
        still queued afterwards is flushed with shutdown rejections so
        no future is ever left pending.  Returns whether every worker
        exited.

        The join budget is split into equal per-thread slices, each
        additionally clamped to the remaining overall budget.  A wedged
        worker can therefore burn only its *own* slice — it never eats
        the budget of later joins, so the threads behind it still get
        their fair chance to exit and the honest answer (``False`` with
        a survivor) arrives within roughly ``timeout / workers`` when
        only one thread is stuck, never later than ``timeout``.
        """
        with self._work:
            self._closing = True
            self._work.notify_all()
        if timeout is None:
            for t in self._threads:
                t.join()
        else:
            slice_s = timeout / max(1, len(self._threads))
            deadline = time.monotonic() + timeout
            for t in self._threads:
                t.join(min(slice_s, max(0.0, deadline - time.monotonic())))
        drained = all(not t.is_alive() for t in self._threads)
        with self._work:
            while self._queue:
                request = self._queue.popleft()
                if self._reject_locked(
                    request,
                    AdmissionRejected(
                        "engine closed before execution", reason="shutdown"
                    ),
                ):
                    self._shed_shutdown += 1
        if drained:
            self.engine.close()
        return drained

    def __enter__(self) -> "ResilientEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ResilientEngine(workers={self.workers}, "
            f"queue={self.queue_capacity}, policy={self.shed_policy!r})"
        )
