"""The serving layer: concurrent, cached k-NN query execution.

Everything below :mod:`repro.core` answers *one* query; this package makes
the reproduction behave like a service.  :class:`QueryEngine` executes
batches across a worker pool over a read-only tree snapshot, caches
results keyed by ``(point, QueryConfig, tree epoch)`` so repeated queries
on an unchanged index cost nothing, and aggregates serving statistics
(latency percentiles, cache hit rate, pages per query, queue depth) into
:class:`EngineStats`.

:class:`ResilientEngine` (see :mod:`repro.service.resilience`) stacks
admission control, per-client quotas, and brownout degradation on top —
the overload story ``docs/RESILIENCE.md`` documents end to end.

Every serving backend — :class:`QueryEngine`, :class:`ResilientEngine`,
and the multi-process :class:`~repro.shard.ShardedQueryEngine` —
implements the formal :class:`Engine` protocol
(:mod:`repro.service.protocol`): ``query`` / ``submit`` / ``stats`` /
``snapshot`` / ``close``.  Construction knobs are bundled in
:class:`EngineOptions` (:mod:`repro.service.options`), shared by every
engine constructor and by :func:`repro.core.batch.nearest_batch`.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.engine import QueryEngine
from repro.service.locks import ReadWriteLock
from repro.service.options import DEFAULT_CACHE_SIZE, EngineOptions
from repro.service.protocol import Engine, EngineSnapshot
from repro.service.resilience import (
    BrownoutController,
    BrownoutLevel,
    DEFAULT_LADDER,
    ResilienceStats,
    ResilientEngine,
    SHED_POLICIES,
    Served,
    TokenBucket,
)
from repro.service.stats import EngineStats, LatencyRecorder

__all__ = [
    "BrownoutController",
    "BrownoutLevel",
    "CacheStats",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_LADDER",
    "Engine",
    "EngineOptions",
    "EngineSnapshot",
    "EngineStats",
    "LatencyRecorder",
    "QueryEngine",
    "ReadWriteLock",
    "ResilienceStats",
    "ResilientEngine",
    "ResultCache",
    "SHED_POLICIES",
    "Served",
    "TokenBucket",
]
