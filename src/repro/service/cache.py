"""Thread-safe LRU result cache for the query engine.

The cache maps ``(point, QueryConfig key, tree epoch)`` to finished
:class:`~repro.core.query.NNResult` objects.  Keying on the *epoch* makes
invalidation free: a mutation bumps the tree's epoch, so every existing
entry simply stops matching.  The engine additionally calls
:meth:`ResultCache.invalidate_epoch` when it observes a new epoch, purging
the dead entries in one sweep instead of waiting for LRU pressure.

Cached values are returned by reference and must be treated as immutable
by callers — the engine hands the same ``NNResult`` to every hit.

Result-identity contract: the ``QueryConfig`` component of the key (see
:meth:`QueryConfig.cache_key`) includes the *effective* epsilon and
budget tier, so a brownout-widened approximate answer can never be
served to a caller that asked for the exact one, and a caller without a
budget can never receive an answer computed under someone else's.  The
engine additionally refuses to ``put`` truncated results at all — where
a deadline-budgeted search stopped depends on wall-clock luck, so a
partial answer is never allowed to outlive the query that produced it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.errors import InvalidParameterError

__all__ = ["CacheStats", "ResultCache"]

#: Private miss sentinel: ``_entries.get(key)`` returning ``None`` must not
#: be confused with a legitimately cached ``None`` (or any falsy) value.
_MISS = object()


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries purged because the tree epoch moved on.
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        """Flat counter dict (the metrics registry's export protocol)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "lookups": self.lookups,
            "hit_ratio": self.hit_ratio,
        }


class ResultCache:
    """Bounded LRU cache of query results, safe under concurrent access.

    ``capacity`` is the number of results held; 0 disables caching (every
    lookup misses, nothing is stored), which the engine uses to preserve
    exact legacy page accounting in :func:`repro.core.batch.nearest_batch`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise InvalidParameterError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Optional[Any]:
        """The cached value for *key*, refreshing recency; *default* on miss.

        A cached value is returned even when it is falsy (``None``, an
        empty result, 0): only a genuinely absent key misses.  Callers
        that may legitimately cache ``None`` should pass a private object
        as *default* and compare with ``is``.
        """
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value*; evicts the least recently used entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = value

    def invalidate_epoch(self, epoch: int) -> int:
        """Drop every entry not belonging to *epoch*; returns the count.

        Keys are the engine's ``(point, config_key, epoch)`` tuples — the
        epoch is the last element.  Keys that are not non-empty tuples
        carry no epoch at all, so they can never match the current one:
        they are dropped (and counted) too, instead of surviving every
        sweep forever.
        """
        with self._lock:
            stale = [
                key for key in self._entries
                if not (isinstance(key, tuple) and key) or key[-1] != epoch
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidated += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"ResultCache(capacity={self.capacity}, size={len(self)}, "
            f"hit_ratio={self.stats.hit_ratio:.2f})"
        )
