"""The formal ``Engine`` protocol every serving backend implements.

Three engines serve k-NN queries today — :class:`~repro.service.engine.
QueryEngine` (thread pool over one tree), :class:`~repro.service.
resilience.ResilientEngine` (admission control wrapped around any
backend), and :class:`~repro.shard.engine.ShardedQueryEngine`
(multi-process scatter-gather over shared-memory shards).  They grew up
separately; this module writes down the contract they share so callers
— and wrappers like ``ResilientEngine`` — program against the
*protocol*, never against a concrete class:

- ``query(point, k=None, config=None) -> NNResult`` — synchronous
  answer, cache-first.
- ``submit(point, k=None, config=None) -> Future[NNResult]`` —
  asynchronous answer; the future never hangs (it resolves with a
  result or an exception even across shutdown).
- ``stats()`` — an immutable snapshot of serving counters.  The
  concrete type varies by engine (:class:`~repro.service.stats.
  EngineStats`, ``ResilienceStats``, ``ShardedStats``); all of them
  render and export.
- ``snapshot() -> EngineSnapshot`` — what index state is being served:
  backend name, tree epoch, item count, and backend-specific detail.
  The epoch is the cache-invalidation token the serving layer already
  uses (:meth:`repro.rtree.tree.RTree.snapshot`); a sharded engine
  reports its publish epoch.
- ``close()`` — idempotent shutdown that drains or fails in-flight
  work, releases every OS resource (threads, processes, shared-memory
  segments), and makes subsequent ``query`` calls raise.

``Engine`` is a :func:`typing.runtime_checkable` protocol, so
``isinstance(obj, Engine)`` verifies the *shape* — which is exactly how
``ResilientEngine`` accepts arbitrary backends without special-casing
any concrete engine class.  See docs/API.md (§ The Engine protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.config import QueryConfig

__all__ = ["Engine", "EngineSnapshot"]


@dataclass(frozen=True)
class EngineSnapshot:
    """What an engine is serving right now.

    ``backend`` names the serving strategy (``"thread"``, ``"sharded"``,
    ``"resilient+<inner>"``); ``epoch`` is the index mutation epoch the
    answers reflect; ``size`` the item count.  ``detail`` carries
    backend-specific facts (shard count, segment names, worker states)
    without widening the protocol.
    """

    backend: str
    epoch: int
    size: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Compact one-line rendering."""
        extra = ""
        if self.detail:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
            extra = f" ({parts})"
        return f"{self.backend} epoch={self.epoch} size={self.size}{extra}"


@runtime_checkable
class Engine(Protocol):
    """Structural contract shared by every serving engine.

    See the module docstring for the semantic contract each method
    carries; ``runtime_checkable`` verifies only the method shape.
    """

    def query(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        config: Optional[QueryConfig] = None,
    ) -> Any:
        ...  # pragma: no cover - protocol signature only

    def submit(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        config: Optional[QueryConfig] = None,
    ) -> Any:
        ...  # pragma: no cover - protocol signature only

    def stats(self) -> Any:
        ...  # pragma: no cover - protocol signature only

    def snapshot(self) -> EngineSnapshot:
        ...  # pragma: no cover - protocol signature only

    def close(self) -> None:
        ...  # pragma: no cover - protocol signature only
