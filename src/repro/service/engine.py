"""The query engine: concurrent, cached batch serving over one index.

`QueryEngine` turns the library's one-shot :func:`repro.core.query.nearest`
call into a serving layer:

- **Concurrency** — batches fan out across a thread worker pool; every
  query runs under the read side of a read-write lock, and engine-mediated
  mutations (:meth:`QueryEngine.insert` / :meth:`QueryEngine.delete`) take
  the write side, so a query always sees a consistent tree state.
- **Result caching** — finished results are cached under
  ``(point, QueryConfig, tree epoch)``.  A mutation bumps the tree's
  epoch, instantly invalidating every cached entry; a cache hit returns
  without executing any search — zero page accesses.
- **Duplicate coalescing** — within a batch, identical query points (with
  caching enabled) execute once and share the result, the dominant win on
  clustered real-world workloads (Maneewongvatana & Mount's observation).
- **Observability** — :meth:`QueryEngine.stats` snapshots latency
  percentiles, cache hit rate, pages per query and queue depth into an
  :class:`~repro.service.stats.EngineStats`.

Example::

    from repro import QueryConfig, QueryEngine

    with QueryEngine(tree, config=QueryConfig(k=4), workers=4) as engine:
        results = engine.query_batch(points)
        print(engine.stats().render())

Thread-safety contract: all ``QueryEngine`` methods may be called from any
thread.  Mutating the tree *directly* (``tree.insert``) while queries are
in flight is not synchronized — route mutations through the engine, or
stop querying while mutating.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import Future, ThreadPoolExecutor
from threading import Lock, Thread
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import QueryConfig
from repro.core.query import NNResult, _run_query, resolve_config
from repro.errors import InvalidParameterError
from repro.obs.forensics import SlowQueryLog, SlowQueryRecord
from repro.obs.spans import SpanContext
from repro.obs.trace import Trace
from repro.packed.batch import run_packed_batch
from repro.packed.kernels import run_packed_query
from repro.service.cache import ResultCache
from repro.service.locks import ReadWriteLock
from repro.service.options import DEFAULT_CACHE_SIZE, EngineOptions
from repro.service.protocol import EngineSnapshot
from repro.service.stats import EngineStats, LatencyRecorder
from repro.storage.buffer import LruBufferPool
from repro.storage.tracker import AccessTracker, CountingTracker, ShardedTracker

__all__ = ["QueryEngine", "DEFAULT_CACHE_SIZE"]

#: Miss sentinel for cache probes: an ``NNResult`` is never ``None``, but
#: probing with a private object keeps the hit test correct even for
#: falsy cached values (e.g. an empty result, which has ``len() == 0``).
_CACHE_MISS = object()


class QueryEngine:
    """Thread-safe k-NN serving over a read-only tree snapshot.

    Args:
        tree: The index to serve — an in-memory
            :class:`~repro.rtree.tree.RTree` or a read-only
            :class:`~repro.rtree.disk.DiskRTree`.
        config: Default :class:`QueryConfig` for every query; per-call
            ``k=`` / ``config=`` override it.
        workers: Worker threads for :meth:`query_batch`.  ``1`` executes
            in the calling thread (no pool), preserving strictly
            sequential semantics.
        cache_size: Result-cache capacity; ``0`` disables caching *and*
            duplicate coalescing (every query executes).
        buffer_pages: Per-worker LRU page-buffer capacity; ``0`` means
            plain counting (every logical access is a physical read).
            Workers never share a pool, so page accounting needs no locks
            and is never double-counted
            (:class:`~repro.storage.tracker.ShardedTracker`).
        packed: Serve queries through the tree's
            :class:`~repro.packed.PackedTree` compile (see
            :mod:`repro.packed`) instead of the object-graph kernels.
            Results, stats and page accounting are identical; latency is
            typically ~3x lower.  The compile is epoch-keyed: the first
            query after a mutation rebuilds it (under the read lock),
            subsequent queries share it.  Queries whose config carries an
            ``object_distance_sq`` hook fall back to the object kernels
            automatically — exact object distance needs payloads on the
            hot path.
        slow_query_ms: Slow-query threshold in milliseconds.  When set,
            every *executed* query is traced (tail sampling) and queries
            at or above the threshold are preserved — full trace included
            — in :attr:`slow_queries`, a bounded
            :class:`~repro.obs.SlowQueryLog` ring buffer.  ``None`` (the
            default) disables forensics entirely; cache hits execute no
            search and are never logged.
        slow_log: Ring-buffer capacity of :attr:`slow_queries` (only
            meaningful with *slow_query_ms*).
        options: An :class:`~repro.service.options.EngineOptions` bundle
            carrying all of the above execution knobs at once.  Explicit
            keyword arguments override matching option fields, so the
            legacy spellings keep working unchanged.

    The engine itself never copies the tree: it relies on the tree's
    mutation epoch (see :meth:`~repro.rtree.tree.RTree.snapshot`) for
    cache invalidation and on its read-write lock for isolation.
    """

    def __init__(
        self,
        tree: Any,
        config: Optional[QueryConfig] = None,
        workers: Optional[int] = None,
        cache_size: Optional[int] = None,
        buffer_pages: Optional[int] = None,
        packed: Optional[bool] = None,
        slow_query_ms: Optional[float] = None,
        slow_log: Optional[int] = None,
        options: Optional[EngineOptions] = None,
    ) -> None:
        opts = (options if options is not None else EngineOptions()).merged(
            workers=workers,
            cache_size=cache_size,
            buffer_pages=buffer_pages,
            packed=packed,
            slow_query_ms=slow_query_ms,
            slow_log=slow_log,
        )
        if opts.packed and not hasattr(tree, "packed"):
            raise InvalidParameterError(
                f"packed=True needs a tree with a .packed() compile; "
                f"{type(tree).__name__} has none"
            )
        self.tree = tree
        self.options = opts
        self.packed = opts.packed
        self.config = config if config is not None else QueryConfig()
        self.workers = opts.workers
        self.cache = ResultCache(opts.cache_size)
        if opts.buffer_pages > 0:
            pages = opts.buffer_pages
            shard_factory: Callable[[], AccessTracker] = (
                lambda: LruBufferPool(pages)
            )
        else:
            shard_factory = CountingTracker
        self.tracker = ShardedTracker(shard_factory)
        self._rwlock = ReadWriteLock()
        self._latency = LatencyRecorder()
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=opts.workers, thread_name_prefix="repro-engine"
            )
            if opts.workers > 1
            else None
        )
        self._closed = False
        # Monotonic per-request ids; itertools.count is atomic under the
        # GIL, so workers can draw ids without the stats lock.
        self._request_ids = itertools.count(1)
        self.slow_query_ms = opts.slow_query_ms
        #: Ring buffer of slow-query forensics (``None`` unless enabled).
        self.slow_queries: Optional[SlowQueryLog] = (
            SlowQueryLog(opts.slow_log)
            if opts.slow_query_ms is not None
            else None
        )
        self._stats_lock = Lock()
        self._queries = 0
        self._cache_hits = 0
        self._executed = 0
        self._failures = 0
        self._pages_total = 0
        self._objects_total = 0
        self._inflight = 0
        self._max_queue_depth = 0
        self._last_epoch = self._tree_epoch()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        config: Optional[QueryConfig] = None,
        trace: Optional[Trace] = None,
        span_ctx: Optional[SpanContext] = None,
    ) -> NNResult:
        """Answer one k-NN query (cache-first, then search).

        *config* overrides the engine default for this call; *k*
        overrides either.  Cache hits return the stored
        :class:`~repro.core.query.NNResult` — treat results as
        immutable.  Pass a :class:`~repro.obs.Trace` via *trace* to
        capture this query's event stream (the engine stamps it with the
        request id and records the cache verdict; a cache hit executes no
        search, so the trace then holds only the ``cache`` event).

        *span_ctx* is the request-scoped trace context (a sampled one
        records ``engine.query``/``kernel`` spans — wall-clock stages,
        not kernel events; the two layers compose).  ``None`` costs one
        ``is None`` test on the hot path.
        """
        self._ensure_open()
        cfg = self._effective_config(k, config)
        return self._serve(point, cfg, trace, span_ctx)

    def submit(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        config: Optional[QueryConfig] = None,
        span_ctx: Optional[SpanContext] = None,
    ) -> "Future[NNResult]":
        """Asynchronous :meth:`query`: a future that never hangs.

        With ``workers > 1`` the query runs on the pool; with one worker
        it executes inline and the returned future is already resolved.
        Part of the :class:`~repro.service.protocol.Engine` contract.
        """
        self._ensure_open()
        cfg = self._effective_config(k, config)
        executor = self._executor
        if executor is not None:
            return executor.submit(self._serve, point, cfg, None, span_ctx)
        future: "Future[NNResult]" = Future()
        try:
            future.set_result(self._serve(point, cfg, None, span_ctx))
        except BaseException as exc:  # delivered through the future
            future.set_exception(exc)
        return future

    def query_batch(
        self,
        points: Sequence[Sequence[float]],
        k: Optional[int] = None,
        config: Optional[QueryConfig] = None,
        span_ctxs: Optional[Sequence[Optional[SpanContext]]] = None,
    ) -> List[NNResult]:
        """Answer a batch of queries, one result per point, in order.

        With ``workers > 1`` queries run on the pool; identical points
        are coalesced into a single execution when caching is enabled
        (the duplicates count as cache hits).  Results are byte-identical
        to a sequential :func:`repro.core.query.nearest` loop over the
        same tree state.

        *span_ctxs* (aligned with *points*) threads per-request trace
        contexts through the batch; a request coalesced onto another
        point's execution records a single ``engine.query`` span with
        ``cache=coalesced``.
        """
        if not points:
            raise InvalidParameterError("points must be non-empty")
        if span_ctxs is not None and len(span_ctxs) != len(points):
            raise InvalidParameterError(
                f"span_ctxs must align with points: "
                f"{len(span_ctxs)} contexts for {len(points)} points"
            )
        self._ensure_open()
        cfg = self._effective_config(k, config)
        ctxs: Sequence[Optional[SpanContext]] = (
            span_ctxs if span_ctxs is not None else [None] * len(points)
        )
        # Snapshot the executor once: a concurrent shutdown() may null
        # the attribute between the check and the submits.
        executor = self._executor
        if executor is None:
            if (
                self.packed
                and len(points) >= 2
                and cfg.algorithm == "best-first"
                and cfg.budget is None
                and cfg.object_distance_sq is None
                and self.slow_queries is None
            ):
                # Same-config window on a packed single-worker engine:
                # one shared slab traversal (repro.packed.batch) under
                # one read-lock acquisition.  Results and counters are
                # identical to the sequential loop below; per-query
                # latency is recorded as the batch mean.
                return self._serve_batched(points, cfg, span_ctxs)
            return [
                self._serve(p, cfg, None, ctx)
                for p, ctx in zip(points, ctxs)
            ]

        if self.cache.capacity == 0:
            # No caching, no coalescing: every occurrence executes, in
            # the legacy one-search-per-point accounting.
            submitted = [
                executor.submit(self._serve, p, cfg, None, ctx)
                for p, ctx in zip(points, ctxs)
            ]
            return [future.result() for future in submitted]

        # Coalesce duplicates: the first occurrence of each point runs,
        # later occurrences share its future (and count as cache hits).
        primary: Dict[Tuple[float, ...], Any] = {}
        slots: List[Tuple[Tuple[float, ...], bool, Optional[SpanContext]]] = []
        for p, ctx in zip(points, ctxs):
            key = _point_key(p)
            if key not in primary:
                # The first occurrence's span context rides the execution.
                primary[key] = executor.submit(self._serve, p, cfg, None, ctx)
                slots.append((key, False, None))
            else:
                slots.append((key, True, ctx))
        results: List[NNResult] = []
        for key, coalesced, ctx in slots:
            start_s = time.time() if ctx is not None else 0.0
            result = primary[key].result()
            if coalesced:
                self._count_coalesced_hit()
                if ctx is not None and ctx.sampled:
                    ctx.add(
                        "engine.query", start_s,
                        (time.time() - start_s) * 1000.0,
                        attrs={"cache": "coalesced"},
                    )
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Mutations (engine-mediated, exclusive)
    # ------------------------------------------------------------------
    def insert(self, rect: Any, payload: Any = None) -> None:
        """Insert into the underlying tree under the write lock.

        The tree bumps its epoch, so every cached result is invalidated.
        """
        self._require_mutable("insert")
        with self._rwlock.write():
            self.tree.insert(rect, payload)

    def delete(self, rect: Any, payload: Any = None) -> bool:
        """Delete from the underlying tree under the write lock."""
        self._require_mutable("delete")
        with self._rwlock.write():
            return self.tree.delete(rect, payload)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """An immutable :class:`EngineStats` snapshot."""
        p50, p95, p99, mean, max_ms = self._latency.snapshot_ms()
        with self._stats_lock:
            executed = self._executed
            return EngineStats(
                queries=self._queries,
                cache_hits=self._cache_hits,
                executed=executed,
                cache_invalidated=self.cache.stats.invalidated,
                epoch=self._tree_epoch(),
                workers=self.workers,
                latency_p50_ms=p50,
                latency_p95_ms=p95,
                latency_p99_ms=p99,
                latency_mean_ms=mean,
                latency_max_ms=max_ms,
                pages_per_query=(
                    self._pages_total / executed if executed else 0.0
                ),
                physical_reads=self.tracker.physical_reads(),
                objects_per_query=(
                    self._objects_total / executed if executed else 0.0
                ),
                max_queue_depth=self._max_queue_depth,
                failures=self._failures,
            )

    def snapshot(self) -> EngineSnapshot:
        """What this engine is serving (the Engine-protocol view)."""
        try:
            size = len(self.tree)
        except TypeError:  # trees without __len__ (test doubles)
            size = 0
        return EngineSnapshot(
            backend="thread",
            epoch=self._tree_epoch(),
            size=size,
            detail={
                "workers": self.workers,
                "packed": self.packed,
                "cache_capacity": self.cache.capacity,
            },
        )

    def liveness(self) -> Dict[str, Any]:
        """Readiness hook for front doors (``/readyz``-style probes).

        ``ready`` is the load-balancer verdict: ``True`` while the
        engine accepts queries, ``False`` once shutdown began.  The
        other fields are diagnostic context for the probe body.
        """
        return {
            "ready": not self._closed,
            "backend": "thread",
            "epoch": self._tree_epoch(),
            "workers": self.workers,
        }

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting queries and drain in-flight work.  Idempotent.

        New :meth:`query` / :meth:`query_batch` calls fail immediately
        once shutdown begins; work already submitted to the pool drains
        to completion (queued futures resolve — never a hang).  With
        ``timeout=None`` this blocks until the pool is fully drained and
        returns ``True``.  With a timeout, it waits at most that many
        seconds and returns whether the drain completed; an unfinished
        drain keeps running in the background and a later ``shutdown()``
        can be used to wait again.
        """
        self._closed = True
        executor = self._executor
        if executor is None:
            return True
        if timeout is None:
            executor.shutdown(wait=True)
            self._executor = None
            return True
        # Bounded drain: ThreadPoolExecutor.shutdown has no timeout of
        # its own, so park the blocking wait on a helper thread and join
        # that with the deadline.
        waiter = Thread(
            target=executor.shutdown,
            kwargs={"wait": True},
            name="repro-engine-drain",
            daemon=True,
        )
        waiter.start()
        waiter.join(timeout)
        drained = not waiter.is_alive()
        if drained:
            self._executor = None
        return drained

    def close(self) -> None:
        """Shut the worker pool down (full drain).  Idempotent."""
        self.shutdown()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryEngine(tree={self.tree!r}, workers={self.workers}, "
            f"cache={self.cache.capacity}, config={self.config.describe()!r})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tree_epoch(self) -> int:
        return getattr(self.tree, "epoch", 0)

    def _effective_config(
        self, k: Optional[int], config: Optional[QueryConfig]
    ) -> QueryConfig:
        base = config if config is not None else self.config
        return resolve_config(base, k=k)

    def _ensure_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("QueryEngine is closed")

    def _require_mutable(self, operation: str) -> None:
        if not hasattr(self.tree, operation):
            raise InvalidParameterError(
                f"{operation} requires a mutable tree; "
                f"{type(self.tree).__name__} is read-only"
            )

    def _serve(
        self,
        point: Sequence[float],
        cfg: QueryConfig,
        trace: Optional[Trace] = None,
        span_ctx: Optional[SpanContext] = None,
    ) -> NNResult:
        """One query: read lock, cache probe, search, cache fill.

        With slow-query forensics enabled, every executed query runs with
        a trace (the caller's, or a tail-sampling one created here); if
        the final latency crosses the threshold, the trace and headline
        stats are preserved in :attr:`slow_queries`.

        Deliberately no ``_ensure_open`` here: the open check lives in
        the public entry points, so work already queued on the pool when
        :meth:`shutdown` begins still drains to a real answer instead of
        failing spuriously.
        """
        start = time.perf_counter()
        self._enter_flight()
        request_id = next(self._request_ids)
        if trace is not None:
            trace.request_id = request_id
        if span_ctx is not None and not span_ctx.sampled:
            span_ctx = None
        serve_span = (
            span_ctx.start("engine.query", backend="thread")
            if span_ctx is not None
            else None
        )
        record_trace: Optional[Trace] = None
        executed: Optional[NNResult] = None
        try:
            with self._rwlock.read():
                epoch = self._observe_epoch()
                use_cache = self.cache.capacity > 0
                key = (_point_key(point), cfg.cache_key(), epoch)
                if use_cache:
                    cached = self.cache.get(key, _CACHE_MISS)
                    if cached is not _CACHE_MISS:
                        self._count_hit()
                        if trace is not None:
                            trace.cache("hit")
                        if serve_span is not None:
                            serve_span.annotate(cache="hit", epoch=epoch)
                        return cached
                if trace is not None:
                    trace.cache("miss")
                    record_trace = trace
                elif self.slow_queries is not None:
                    record_trace = Trace(request_id=request_id)
                if serve_span is not None:
                    kernel_t0 = time.perf_counter()
                    kernel_s = time.time()
                if self.packed and cfg.object_distance_sq is None:
                    # tree.packed() is epoch-keyed: first query after a
                    # mutation recompiles (under this read lock, so the
                    # tree is stable), later queries share the compile.
                    result = run_packed_query(
                        self.tree.packed(), point, cfg, self.tracker,
                        record_trace,
                    )
                else:
                    result = _run_query(
                        self.tree, point, cfg, self.tracker, record_trace
                    )
                if serve_span is not None:
                    stats = result.stats
                    span_ctx.add(
                        "kernel", kernel_s,
                        (time.perf_counter() - kernel_t0) * 1000.0,
                        parent=serve_span.id,
                        attrs={
                            "pages": stats.nodes_accessed,
                            "objects": stats.objects_examined,
                            "p1": stats.pruning.p1_pruned,
                            "p3": stats.pruning.p3_pruned,
                            "truncated": int(stats.truncated),
                        },
                    )
                    serve_span.annotate(
                        cache="miss", epoch=epoch,
                        pages=stats.nodes_accessed,
                    )
                if use_cache and not result.stats.truncated:
                    # Truncated results are never cached: where the
                    # search stopped depends on wall-clock luck (for
                    # deadline budgets), and a partial answer must not
                    # outlive the overload that produced it.  The cache
                    # key's budget component already isolates tiers;
                    # this keeps even same-budget callers fresh.
                    self.cache.put(key, result)
                self._count_executed(result)
                executed = result
                return result
        except BaseException as exc:
            # Surface worker failures in the stats (the future still
            # carries the exception to its caller — never a hang).
            with self._stats_lock:
                self._failures += 1
            if serve_span is not None:
                serve_span.annotate(error=type(exc).__name__)
            raise
        finally:
            if serve_span is not None:
                serve_span.end()
            elapsed = time.perf_counter() - start
            self._latency.record(elapsed)
            self._exit_flight()
            if (
                executed is not None
                and self.slow_queries is not None
                and elapsed * 1000.0 >= self.slow_query_ms
            ):
                self.slow_queries.add(
                    SlowQueryRecord(
                        request_id=request_id,
                        latency_ms=elapsed * 1000.0,
                        config=cfg.describe(),
                        stats=executed.stats.as_dict(),
                        trace=record_trace,
                    )
                )

    def _serve_batched(
        self,
        points: Sequence[Sequence[float]],
        cfg: QueryConfig,
        span_ctxs: Optional[Sequence[Optional[SpanContext]]] = None,
    ) -> List[NNResult]:
        """One batched traversal for a whole same-config window.

        The batched mirror of a sequential :meth:`_serve` loop: one read
        lock, per-point cache probes, then a single
        :func:`run_packed_batch` traversal for every miss.  With caching
        enabled, later occurrences of a point already executed in this
        window fill from the first occurrence and count as hits —
        exactly what the sequential loop's probe-after-fill would do.
        Counters (queries / hits / executed / pages) match the
        sequential loop; per-query latency is recorded as the batch
        mean, since the traversals genuinely overlap.  Each sampled
        span context receives one ``engine.batch`` span — the window
        shares a traversal, so per-point kernel spans would be fiction.
        """
        start = time.perf_counter()
        start_s = time.time() if span_ctxs is not None else 0.0
        n = len(points)
        self._enter_flight()
        try:
            with self._rwlock.read():
                epoch = self._observe_epoch()
                use_cache = self.cache.capacity > 0
                results: List[Optional[NNResult]] = [None] * n
                misses: List[int] = []
                miss_keys: List[Any] = []
                dups: List[Tuple[int, int]] = []  # (follower, first)
                if use_cache:
                    ckey = cfg.cache_key()
                    first_of: Dict[Any, int] = {}
                    for i, p in enumerate(points):
                        key = (_point_key(p), ckey, epoch)
                        cached = self.cache.get(key, _CACHE_MISS)
                        if cached is not _CACHE_MISS:
                            self._count_hit()
                            results[i] = cached
                            continue
                        j = first_of.get(key)
                        if j is None:
                            first_of[key] = i
                            misses.append(i)
                            miss_keys.append(key)
                        else:
                            dups.append((i, j))
                else:
                    misses = list(range(n))
                    miss_keys = [None] * n
                if misses:
                    executed = run_packed_batch(
                        self.tree.packed(),
                        [points[i] for i in misses],
                        cfg,
                        self.tracker,
                    )
                    for i, key, result in zip(misses, miss_keys, executed):
                        results[i] = result
                        if use_cache and not result.stats.truncated:
                            self.cache.put(key, result)
                        self._count_executed(result)
                for i, j in dups:
                    results[i] = results[j]
                    self._count_coalesced_hit()
                if span_ctxs is not None:
                    missed = set(misses)
                    batch_ms = (time.perf_counter() - start) * 1000.0
                    for i, ctx in enumerate(span_ctxs):
                        if ctx is not None and ctx.sampled:
                            ctx.add(
                                "engine.batch", start_s, batch_ms,
                                attrs={
                                    "window": n,
                                    "cache": (
                                        "miss" if i in missed else "hit"
                                    ),
                                    "epoch": epoch,
                                },
                            )
                return results  # type: ignore[return-value]
        except BaseException:
            with self._stats_lock:
                self._failures += 1
            raise
        finally:
            elapsed = time.perf_counter() - start
            per_query = elapsed / n if n else 0.0
            for _ in range(n):
                self._latency.record(per_query)
            self._exit_flight()

    def _observe_epoch(self) -> int:
        """Current tree epoch; purge cache entries from older epochs."""
        epoch = self._tree_epoch()
        if epoch != self._last_epoch:
            with self._stats_lock:
                changed = epoch != self._last_epoch
                self._last_epoch = epoch
            if changed and self.cache.capacity > 0:
                self.cache.invalidate_epoch(epoch)
        return epoch

    def _enter_flight(self) -> None:
        with self._stats_lock:
            self._inflight += 1
            if self._inflight > self._max_queue_depth:
                self._max_queue_depth = self._inflight

    def _exit_flight(self) -> None:
        with self._stats_lock:
            self._inflight -= 1

    def _count_hit(self) -> None:
        with self._stats_lock:
            self._queries += 1
            self._cache_hits += 1

    def _count_coalesced_hit(self) -> None:
        # A batch duplicate that shared another occurrence's execution:
        # it was answered without a search, which is what "hit" means.
        self._count_hit()

    def _count_executed(self, result: NNResult) -> None:
        with self._stats_lock:
            self._queries += 1
            self._executed += 1
            self._pages_total += result.stats.nodes_accessed
            self._objects_total += result.stats.objects_examined


def _point_key(point: Sequence[float]) -> Tuple[float, ...]:
    """Hashable, type-normalized form of a query point."""
    return tuple(float(c) for c in point)
