"""``EngineOptions``: the one engine-construction surface.

``QueryEngine`` grew constructor knobs (workers, cache size, buffer
pages, packed routing, forensics), and then :func:`repro.core.batch.
nearest_batch` grew a *second*, drifting copy of the same knobs as loose
keyword arguments.  ``EngineOptions`` is the single dataclass both — and
``ResilientEngine`` and ``ShardedQueryEngine`` — construct from, so a
new knob is added once, validated once, and defaulted once.

Two default profiles exist because two call shapes exist:

- :meth:`EngineOptions` (the bare constructor) is the *serving* profile:
  ``workers=4``, result cache on (:data:`DEFAULT_CACHE_SIZE`), no page
  buffer — what ``QueryEngine()`` has always defaulted to.
- :meth:`EngineOptions.batch_defaults` is the *legacy batch* profile:
  ``workers=1``, cache off, ``buffer_pages=64`` — the historical
  sequential ``nearest_batch`` semantics, preserved exactly.

``merged(**overrides)`` applies explicit per-call keyword arguments on
top (``None`` = not passed), which is how the legacy keyword spellings
of both constructors keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.errors import InvalidParameterError

__all__ = ["EngineOptions", "DEFAULT_CACHE_SIZE"]

#: Result-cache capacity unless the caller chooses otherwise.
DEFAULT_CACHE_SIZE = 4096


@dataclass(frozen=True)
class EngineOptions:
    """How an engine executes — pool size, caching, buffering, routing.

    Orthogonal to :class:`~repro.core.config.QueryConfig`, which says
    what a *query* means; options say how the *engine* runs it.

    Args:
        workers: Worker threads (``QueryEngine``) or the client-side
            submit pool (``ShardedQueryEngine``); ``1`` = run in the
            calling thread.
        cache_size: Result-cache capacity; ``0`` disables caching and
            duplicate coalescing.
        buffer_pages: Per-worker LRU page-buffer capacity (``0`` = plain
            counting).  Only meaningful for disk-backed trees.
        packed: Route queries through the tree's
            :class:`~repro.packed.PackedTree` compile (sharded engines
            are always packed — the slabs *are* the shards).
        slow_query_ms: Slow-query forensics threshold (``None`` = off).
        slow_log: Forensics ring-buffer capacity.
    """

    workers: int = 4
    cache_size: int = DEFAULT_CACHE_SIZE
    buffer_pages: int = 0
    packed: bool = False
    slow_query_ms: Optional[float] = None
    slow_log: int = 64

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise InvalidParameterError(
                f"workers must be an int >= 1, got {self.workers!r}"
            )
        if self.cache_size < 0:
            raise InvalidParameterError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )
        if self.buffer_pages < 0:
            raise InvalidParameterError(
                f"buffer_pages must be >= 0, got {self.buffer_pages}"
            )
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise InvalidParameterError(
                f"slow_query_ms must be >= 0, got {self.slow_query_ms}"
            )
        if self.slow_log < 1:
            raise InvalidParameterError(
                f"slow_log must be >= 1, got {self.slow_log}"
            )

    @classmethod
    def batch_defaults(cls) -> "EngineOptions":
        """The historical :func:`~repro.core.batch.nearest_batch` profile.

        Sequential, uncached, with the batch's shared 64-page LRU buffer
        — one search per point, legacy page accounting preserved.
        """
        return cls(workers=1, cache_size=0, buffer_pages=64)

    def merged(self, **overrides: Any) -> "EngineOptions":
        """A copy with every non-``None`` override applied (revalidated).

        ``None`` means "not passed, keep this options object's value" —
        the same convention :meth:`QueryConfig.with_overrides` uses, and
        what lets legacy keyword arguments coexist with ``options=``.
        """
        changes = {
            name: value
            for name, value in overrides.items()
            if value is not None
        }
        if not changes:
            return self
        return replace(self, **changes)
