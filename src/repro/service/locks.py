"""A small writer-preferring read-write lock for the serving layer.

Queries against a tree snapshot are pure reads and may proceed in
parallel; mutations (insert/delete through the engine) must be exclusive.
The standard library offers no reader-writer lock, so this module
implements the classic condition-variable construction:

- any number of readers hold the lock together;
- a writer waits for readers to drain, and *blocks new readers* while
  waiting (writer preference), so a steady query stream cannot starve
  mutations indefinitely.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers XOR one exclusive writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False

    # -- reader side ---------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side ---------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # -- context managers ----------------------------------------------
    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
